"""Deterministic named random streams.

Every stochastic component in the simulator (mobility of node 7, the
channel between nodes 3 and 12, MAC backoff of node 40, ...) draws from its
own named substream.  Substreams are derived from a master seed by hashing
the stream name, so:

* runs are reproducible given the master seed;
* adding a new consumer of randomness does not perturb existing streams
  (unlike sharing one ``random.Random``);
* two streams with different names are statistically independent for all
  practical purposes (SHA-256 of ``(seed, name)``).

Besides the stateful :class:`random.Random` substreams, this module hosts
the *counter-based* substream primitives the vectorized banks build on
(:class:`repro.channel.bank.FadingBank`, :class:`repro.mac.bank.BackoffBank`):
a splitmix64 finalizer plus :func:`derive_key` / :func:`derive_key_array`,
which map an entity index onto a 64-bit stream key.  Draw ``k`` of entity
``i`` is then the pure function ``splitmix64(key_i + k * SPLITMIX_GAMMA)``
— reproducible per seed and independent of how draws are batched.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np

__all__ = [
    "CounterRandom",
    "RandomStreams",
    "derive_seed",
    "derive_key",
    "derive_key_array",
    "splitmix64",
    "splitmix64_array",
    "SPLITMIX_GAMMA",
]

#: Mask for 64-bit wrapping arithmetic on Python ints.
_M64 = (1 << 64) - 1
#: splitmix64 sequence increment (Weyl constant).
SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB

# uint64 copies so vectorized ops never leave uint64.
_U_GAMMA = np.uint64(SPLITMIX_GAMMA)
_U_MIX_1 = np.uint64(_MIX_1)
_U_MIX_2 = np.uint64(_MIX_2)


def splitmix64(z: int) -> int:
    """splitmix64 finalizer on a Python int (wraps modulo 2**64)."""
    z &= _M64
    z = ((z ^ (z >> 30)) * _MIX_1) & _M64
    z = ((z ^ (z >> 27)) * _MIX_2) & _M64
    return z ^ (z >> 31)


def splitmix64_array(z: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer, vectorized over uint64 arrays."""
    z = (z ^ (z >> np.uint64(30))) * _U_MIX_1
    z = (z ^ (z >> np.uint64(27))) * _U_MIX_2
    return z ^ (z >> np.uint64(31))


def derive_key(seed: int, index: int) -> int:
    """64-bit counter-stream key for entity ``index`` under ``seed``.

    The ``index + 1`` offset keeps entity 0 from collapsing onto the raw
    seed; double mixing decorrelates consecutive indices.
    """
    return splitmix64(splitmix64((seed + SPLITMIX_GAMMA * (index + 1)) & _M64))


def derive_key_array(seed: int, indices: np.ndarray) -> np.ndarray:
    """Vectorized :func:`derive_key` over an integer index array."""
    z = np.uint64(seed & _M64) + _U_GAMMA * (indices.astype(np.uint64) + np.uint64(1))
    return splitmix64_array(splitmix64_array(z))


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit substream seed from ``(master_seed, name)``.

    Deterministic across processes and Python versions (uses SHA-256, not
    ``hash()``).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class CounterRandom:
    """Stateful view over a counter-based substream.

    Exposes the tiny slice of the ``random.Random`` API the mobility models
    consume (``random()`` / ``uniform()``), but sources every draw from the
    pure counter function ``splitmix64(key + k * SPLITMIX_GAMMA)`` — the
    exact convention :class:`repro.mac.bank.BackoffBank` and
    :class:`repro.mobility.bank.MobilityBank` use.  Draw ``k`` is converted
    to a float in ``[0, 1)`` from the top 53 bits, and ``uniform(a, b)``
    applies the same affine map as ``random.Random.uniform``, so a scalar
    model driven by a ``CounterRandom`` produces *bitwise* the same
    trajectory as a bank row sharing its key.  That equivalence is what the
    scalar-vs-batched differential tests in ``tests/test_mobility_bank.py``
    pin down.
    """

    __slots__ = ("_key", "_counter")

    def __init__(self, key: int) -> None:
        self._key = key & _M64
        self._counter = 0

    @property
    def counter(self) -> int:
        """Number of draws consumed so far."""
        return self._counter

    def random(self) -> float:
        """Next uniform float in ``[0, 1)`` (top 53 bits of splitmix64)."""
        z = splitmix64((self._key + self._counter * SPLITMIX_GAMMA) & _M64)
        self._counter += 1
        return (z >> 11) * 2.0**-53

    def uniform(self, a: float, b: float) -> float:
        """``a + (b - a) * random()`` — bit-compatible with ``random.Random``."""
        return a + (b - a) * self.random()


class RandomStreams:
    """A factory of named, independent ``random.Random`` substreams.

    Example:
        >>> streams = RandomStreams(seed=42)
        >>> mob = streams.stream("mobility/7")
        >>> chan = streams.stream("channel/3-12")
        >>> streams.stream("mobility/7") is mob   # memoised
        True
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the (memoised) substream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self._seed, name))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child factory whose streams are namespaced by ``name``.

        Useful for giving each trial of an experiment its own independent
        universe: ``streams.spawn(f"trial/{i}")``.
        """
        return RandomStreams(derive_seed(self._seed, f"spawn:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStreams(seed={self._seed}, streams={len(self._streams)})"
