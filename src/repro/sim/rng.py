"""Deterministic named random streams.

Every stochastic component in the simulator (mobility of node 7, the
channel between nodes 3 and 12, MAC backoff of node 40, ...) draws from its
own named substream.  Substreams are derived from a master seed by hashing
the stream name, so:

* runs are reproducible given the master seed;
* adding a new consumer of randomness does not perturb existing streams
  (unlike sharing one ``random.Random``);
* two streams with different names are statistically independent for all
  practical purposes (SHA-256 of ``(seed, name)``).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit substream seed from ``(master_seed, name)``.

    Deterministic across processes and Python versions (uses SHA-256, not
    ``hash()``).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of named, independent ``random.Random`` substreams.

    Example:
        >>> streams = RandomStreams(seed=42)
        >>> mob = streams.stream("mobility/7")
        >>> chan = streams.stream("channel/3-12")
        >>> streams.stream("mobility/7") is mob   # memoised
        True
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the (memoised) substream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self._seed, name))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child factory whose streams are namespaced by ``name``.

        Useful for giving each trial of an experiment its own independent
        universe: ``streams.spawn(f"trial/{i}")``.
        """
        return RandomStreams(derive_seed(self._seed, f"spawn:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStreams(seed={self._seed}, streams={len(self._streams)})"
