"""Event handles for the discrete-event kernel.

An :class:`EventHandle` is returned by :meth:`repro.sim.engine.Simulator.schedule`
and allows the caller to cancel the event before it fires.  Cancellation is
lazy: the heap entry stays in the queue but is skipped when popped, which
keeps cancellation O(1).
"""

from __future__ import annotations

from typing import Any, Callable, Tuple


class EventHandle:
    """A scheduled callback that can be cancelled before it fires.

    Attributes:
        time: absolute simulation time at which the event fires.
        seq: monotone tie-break sequence number assigned by the simulator.
    """

    __slots__ = ("time", "seq", "_fn", "_args", "_cancelled", "_fired")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self._fn = fn
        self._args = args
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the event callback has run."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still queued and will run."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> bool:
        """Cancel the event.

        Returns True if the event was pending and is now cancelled, False if
        it had already fired or was already cancelled.  Cancelling twice is
        harmless (idempotent), which simplifies protocol timer management.
        """
        if self._cancelled or self._fired:
            return False
        self._cancelled = True
        self._fn = _noop  # release references early
        self._args = ()
        return True

    def _fire(self) -> None:
        """Run the callback (kernel-internal)."""
        if self._cancelled:
            return
        self._fired = True
        fn, args = self._fn, self._args
        self._fn = _noop
        self._args = ()
        fn(*args)

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    """Placeholder callback installed after cancellation/firing."""
