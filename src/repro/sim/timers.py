"""Periodic timers and bulk one-shot timers built on the event kernel.

Protocols use :class:`PeriodicTimer` for beacons (ABR), CSI checking
broadcasts (RICA), link monitoring (link state) and route-expiry sweeps.
The timer supports optional start jitter so that 50 nodes' beacons do not
fire in lock-step (which would be both unrealistic and maximally
collision-prone on the common channel).

:class:`TimerWheel` is the bulk arm/cancel primitive behind the batched
MAC/ARQ backend: one-shot timers are bucketed by (optionally quantized)
target instant, so a storm of per-frame ACK deadlines costs one engine
event per distinct instant instead of one heap push/pop per frame.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import EventHandle

__all__ = ["PeriodicTimer", "TimerWheel"]


class PeriodicTimer:
    """Repeatedly invoke a callback every ``interval`` seconds.

    The callback may call :meth:`stop` (directly or indirectly) to end the
    series; it may also call :meth:`reschedule` to change the interval from
    the next tick on.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
    ) -> None:
        """Create (but do not start) a periodic timer.

        Args:
            sim: the simulator to schedule on.
            interval: seconds between invocations; must be positive.
            fn: callback invoked with ``*args`` at every tick.
            start_delay: delay before the first tick; defaults to
                ``interval``.
        """
        if interval <= 0:
            raise SimulationError(f"PeriodicTimer interval must be positive, got {interval!r}")
        self._sim = sim
        self._interval = interval
        self._fn = fn
        self._args = args
        self._start_delay = interval if start_delay is None else start_delay
        self._handle: Optional[EventHandle] = None
        self._running = False
        self.ticks = 0

    @property
    def running(self) -> bool:
        """True while the timer is armed."""
        return self._running

    @property
    def interval(self) -> float:
        """Current tick interval in seconds."""
        return self._interval

    def start(self) -> "PeriodicTimer":
        """Arm the timer.  Restarting a running timer resets its phase."""
        self.cancel()
        self._running = True
        self._handle = self._sim.schedule(self._start_delay, self._tick)
        return self

    def cancel(self) -> None:
        """Disarm the timer; safe to call when not running."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    stop = cancel

    def reschedule(self, interval: float) -> None:
        """Change the interval, taking effect at the next arming."""
        if interval <= 0:
            raise SimulationError(f"PeriodicTimer interval must be positive, got {interval!r}")
        self._interval = interval

    def _tick(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        # Re-arm before invoking so the callback can cancel or reschedule us.
        self._handle = self._sim.schedule(self._interval, self._tick)
        self._fn(*self._args)


class _WheelEntry:
    """One armed timer: callback plus a liveness flag for lazy cancel."""

    __slots__ = ("fn", "args", "live")

    def __init__(self, fn: Callable[..., Any], args: Tuple[Any, ...]) -> None:
        self.fn = fn
        self.args = args
        self.live = True


class TimerWheel:
    """Bulk one-shot timers, coalesced onto shared engine instants.

    ``arm(delay, fn, *args)`` buckets the callback by its target instant —
    rounded *up* to the next multiple of ``quantum_s`` when a quantum is
    set (a timer may fire late by less than one quantum, never early) —
    and schedules one engine event per distinct bucket.  Entries in a
    bucket fire in arm order, matching the ``(time, seq)`` order separate
    ``Simulator.schedule`` calls would have produced.  ``cancel`` is lazy:
    the entry is flagged dead and skipped when its bucket fires, the
    trade that makes cancel O(1) with no heap surgery.

    Fired entries are credited to :meth:`Simulator.record_batch`, so the
    engine's event-kind mix still shows e.g. ``DataLink._complete`` per
    frame even though the wheel fired the whole bucket as one event.
    """

    def __init__(self, sim: Simulator, quantum_s: float = 0.0) -> None:
        if quantum_s < 0:
            raise SimulationError(f"TimerWheel quantum must be >= 0, got {quantum_s!r}")
        self._sim = sim
        self._quantum = float(quantum_s)
        self._buckets: Dict[float, List[_WheelEntry]] = {}
        #: Diagnostics: timers armed / cancelled / buckets fired.
        self.armed = 0
        self.cancelled = 0
        self.buckets_fired = 0

    @property
    def pending(self) -> int:
        """Armed-and-live timers across all buckets."""
        return sum(1 for bucket in self._buckets.values() for e in bucket if e.live)

    def align(self, time: float) -> float:
        """``time`` rounded up onto the wheel's instant grid."""
        q = self._quantum
        if q <= 0.0:
            return time
        # The epsilon forgives float noise from delay arithmetic: an
        # instant already (numerically) on the grid stays put instead of
        # slipping a whole quantum late.
        return math.ceil(time / q - 1e-9) * q

    def arm(self, delay: float, fn: Callable[..., Any], *args: Any) -> _WheelEntry:
        """Arm ``fn(*args)`` to fire ``delay`` seconds from now.

        Returns a token accepted by :meth:`cancel`.
        """
        if not (delay >= 0.0):  # also rejects NaN
            raise SimulationError(f"cannot arm timer with delay {delay!r}")
        now = self._sim.now
        when = self.align(now + delay)
        if when < now:  # grid rounding must never land in the past
            when = now
        entry = _WheelEntry(fn, args)
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [entry]
            self._sim.schedule_at(when, self._fire, when)
        else:
            bucket.append(entry)
        self.armed += 1
        return entry

    def cancel(self, token: _WheelEntry) -> None:
        """Disarm a timer returned by :meth:`arm` (idempotent)."""
        if token.live:
            token.live = False
            self.cancelled += 1

    def _fire(self, when: float) -> None:
        # Pop before firing: callbacks may arm new timers at this same
        # instant, which must open a fresh bucket (and engine event) rather
        # than append to one already being drained.
        bucket = self._buckets.pop(when)
        self.buckets_fired += 1
        # The bucket event is plumbing — only the entries it resolves
        # count, keeping the logical total scalar-equivalent.
        self._sim.absorb_current_event()
        record = self._sim.record_batch
        for entry in bucket:
            if entry.live:
                entry.live = False
                record(entry.fn, 1)
                entry.fn(*entry.args)
