"""Periodic timers built on the event kernel.

Protocols use :class:`PeriodicTimer` for beacons (ABR), CSI checking
broadcasts (RICA), link monitoring (link state) and route-expiry sweeps.
The timer supports optional start jitter so that 50 nodes' beacons do not
fire in lock-step (which would be both unrealistic and maximally
collision-prone on the common channel).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import EventHandle

__all__ = ["PeriodicTimer"]


class PeriodicTimer:
    """Repeatedly invoke a callback every ``interval`` seconds.

    The callback may call :meth:`stop` (directly or indirectly) to end the
    series; it may also call :meth:`reschedule` to change the interval from
    the next tick on.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
    ) -> None:
        """Create (but do not start) a periodic timer.

        Args:
            sim: the simulator to schedule on.
            interval: seconds between invocations; must be positive.
            fn: callback invoked with ``*args`` at every tick.
            start_delay: delay before the first tick; defaults to
                ``interval``.
        """
        if interval <= 0:
            raise SimulationError(f"PeriodicTimer interval must be positive, got {interval!r}")
        self._sim = sim
        self._interval = interval
        self._fn = fn
        self._args = args
        self._start_delay = interval if start_delay is None else start_delay
        self._handle: Optional[EventHandle] = None
        self._running = False
        self.ticks = 0

    @property
    def running(self) -> bool:
        """True while the timer is armed."""
        return self._running

    @property
    def interval(self) -> float:
        """Current tick interval in seconds."""
        return self._interval

    def start(self) -> "PeriodicTimer":
        """Arm the timer.  Restarting a running timer resets its phase."""
        self.cancel()
        self._running = True
        self._handle = self._sim.schedule(self._start_delay, self._tick)
        return self

    def cancel(self) -> None:
        """Disarm the timer; safe to call when not running."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    stop = cancel

    def reschedule(self, interval: float) -> None:
        """Change the interval, taking effect at the next arming."""
        if interval <= 0:
            raise SimulationError(f"PeriodicTimer interval must be positive, got {interval!r}")
        self._interval = interval

    def _tick(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        # Re-arm before invoking so the callback can cancel or reschedule us.
        self._handle = self._sim.schedule(self._interval, self._tick)
        self._fn(*self._args)
