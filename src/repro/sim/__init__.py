"""Discrete-event simulation kernel.

The kernel is intentionally small and dependency-free: a binary-heap event
queue (:class:`~repro.sim.engine.Simulator`), cancellable event handles
(:class:`~repro.sim.events.EventHandle`), deterministic named random
streams (:class:`~repro.sim.rng.RandomStreams`) and convenience periodic
timers (:class:`~repro.sim.timers.PeriodicTimer`).

All simulated time is in **seconds** (floats).  Determinism contract: two
runs with the same master seed and the same sequence of ``schedule`` calls
produce identical event orderings, because ties in time are broken by a
monotone sequence number.
"""

from repro.sim.engine import Simulator
from repro.sim.events import EventHandle
from repro.sim.rng import RandomStreams
from repro.sim.timers import PeriodicTimer

__all__ = ["Simulator", "EventHandle", "RandomStreams", "PeriodicTimer"]
