"""The discrete-event simulator.

A :class:`Simulator` owns a binary-heap event queue and the simulation
clock.  Components schedule callbacks with :meth:`Simulator.schedule`
(relative delay) or :meth:`Simulator.schedule_at` (absolute time) and the
kernel fires them in ``(time, sequence)`` order, so same-time events run in
the order they were scheduled — a property several protocol state machines
rely on and the test suite pins down.

The :meth:`Simulator.run` loop drains contiguous *same-timestamp* batches
in one sweep: the clock is written and the ``until`` bound checked once
per distinct timestamp rather than once per event, which matters during
flood storms where one transmission completion fans out into dozens of
receptions at the same instant.  Firing order is byte-identical to the
one-event-at-a-time loop (the ``(time, seq)`` contract is unchanged; see
``tests/test_engine.py`` and the differential pipeline tests).

Per-event-kind counters (:attr:`Simulator.event_kind_counts`, keyed by the
callback's qualified name) make the event mix observable, so a flood storm
shows up as a spike of ``CsmaMac._complete`` / ``CsmaMac._attempt``
entries instead of an opaque events-processed total.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.sim.events import EventHandle

__all__ = ["Simulator"]


class Simulator:
    """Event-driven simulation kernel.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(1.5, fired.append, "a")
        >>> _ = sim.schedule(0.5, fired.append, "b")
        >>> sim.run(until=10.0)
        >>> fired
        ['b', 'a']
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[EventHandle] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0
        # Fired-event tally keyed by the callback's underlying function
        # object (identity hash — cheaper per event than string keys);
        # resolved to qualified names on read via event_kind_counts.
        self._kind_counts: Dict[Any, int] = {}
        # Logical callbacks credited by batch dispatchers (record_batch):
        # work that fired inside one coalesced event but would have been an
        # event of its own under scalar scheduling.
        self._batched_fired = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (for diagnostics and tests)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of queue entries, including lazily-cancelled ones."""
        return len(self._queue)

    @property
    def event_kind_counts(self) -> Dict[str, int]:
        """Fired-event tally by callback qualified name (diagnostic).

        Lets experiments see *what* a run spent its events on — a flood
        storm shows up as a spike of MAC completion/attempt entries.
        Aggregated lazily from function-object keys, so the per-event cost
        in the run loop is one identity-keyed dict update.  Includes
        logical callbacks credited through :meth:`record_batch`, so the
        event mix stays comparable between scalar and batched backends.
        """
        counts: Dict[str, int] = {}
        for fn, n in self._kind_counts.items():
            if isinstance(fn, str):
                kind = fn
            else:
                kind = getattr(fn, "__qualname__", None) or type(fn).__name__
            counts[kind] = counts.get(kind, 0) + n
        return counts

    @property
    def logical_events_processed(self) -> int:
        """Fired events plus batch-credited logical callbacks.

        The backend-independent measure of work done: a contention round
        that resolves 30 MAC attempts in one event counts as 1 fired event
        and 30 logical callbacks, so throughput comparisons against scalar
        scheduling (one event per attempt) stay apples-to-apples.
        """
        return self._events_processed + self._batched_fired

    def record_batch(self, kind: Any, n: int) -> None:
        """Credit ``n`` logical callback firings to ``kind``.

        The batch-fire hook for coalescing dispatchers (the MAC contention
        scheduler, the data link's timer wheel): one physical event that
        resolves a whole batch reports the batch size here, keeping
        :attr:`event_kind_counts` and :attr:`logical_events_processed`
        comparable across backends.  ``kind`` is a function (tallied by its
        qualified name) or a pre-resolved name string.
        """
        if n <= 0:
            return
        key = getattr(kind, "__func__", kind)
        kinds = self._kind_counts
        kinds[key] = kinds.get(key, 0) + n
        self._batched_fired += n

    def absorb_current_event(self) -> None:
        """Exclude the currently-firing container event from the logical total.

        A batch dispatcher's own event (a contention round, a timer-wheel
        bucket) is pure plumbing: under scalar scheduling it would not
        exist — only the callbacks it resolves would.  Dispatchers call
        this once per firing (after crediting their batch through
        :meth:`record_batch`) so a singleton batch counts as exactly one
        logical event, not two, and :attr:`logical_events_processed` stays
        an honest scalar-equivalent measure.
        """
        self._batched_fired -= 1

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Args:
            delay: non-negative delay in seconds.  A delay of 0 runs the
                callback after all events already scheduled for the current
                instant.
            fn: the callback.
            *args: positional arguments passed to the callback.

        Returns:
            An :class:`EventHandle` that can cancel the event.

        Raises:
            SimulationError: if ``delay`` is negative or not a number.
        """
        if not (delay >= 0.0):  # also rejects NaN
            raise SimulationError(f"cannot schedule event with delay {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if not (time >= self._now):  # also rejects NaN
            raise SimulationError(
                f"cannot schedule event at t={time!r} (now={self._now!r}): time is in the past"
            )
        self._seq += 1
        handle = EventHandle(time, self._seq, fn, args)
        heapq.heappush(self._queue, handle)
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` passes, or ``stop()``.

        Args:
            until: if given, stop once the next event would fire strictly
                after this time; the clock is then advanced to ``until`` so
                that ``sim.now == until`` holds after the call.
            max_events: optional safety valve; raise SimulationError as
                soon as a ``max_events + 1``-th event *would* fire —
                checked before firing, so at most ``max_events`` events
                ever run (guards against runaway loops in tests).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        queue = self._queue
        kinds = self._kind_counts
        try:
            while queue:
                head = queue[0]
                if head.cancelled:
                    heapq.heappop(queue)
                    continue
                if until is not None and head.time > until:
                    break
                if self._stopped:
                    break
                if max_events is not None and fired >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
                # Same-timestamp batch: advance the clock and check the
                # ``until`` bound once, then drain every contiguous event
                # at this instant with one heap pop each.  Events a batch
                # member schedules at the *same* instant land behind the
                # batch in ``(time, seq)`` order and are picked up by the
                # next sweep — identical to the one-at-a-time loop.  Every
                # max_events probe happens before the clock moves or the
                # next event pops, so on SimulationError ``now`` still
                # points at the last *fired* event.
                batch_time = head.time
                self._now = batch_time
                while True:
                    heapq.heappop(queue)
                    fn = head._fn
                    key = getattr(fn, "__func__", fn)
                    kinds[key] = kinds.get(key, 0) + 1
                    head._fire()
                    self._events_processed += 1
                    fired += 1
                    if self._stopped:
                        break
                    # Sweep cancelled entries at this instant, then either
                    # continue the batch or fall back to the outer loop.
                    while queue and queue[0].time == batch_time and queue[0].cancelled:
                        heapq.heappop(queue)
                    if not queue or queue[0].time != batch_time:
                        break
                    if max_events is not None and fired >= max_events:
                        raise SimulationError(f"exceeded max_events={max_events}")
                    head = queue[0]
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Fire exactly one pending event.

        Returns False without firing if the queue is empty or
        :meth:`stop` has been requested (``run()`` clears the stop flag
        when it next starts).  Uses the same lazy-cancel sweep as
        :meth:`peek_time`, so ``step()`` and ``run()`` always agree on
        which event is next.
        """
        if self._stopped:
            return False
        if self.peek_time() is None:
            return False
        head = heapq.heappop(self._queue)
        self._now = head.time
        fn = head._fn
        key = getattr(fn, "__func__", fn)
        kinds = self._kind_counts
        kinds[key] = kinds.get(key, 0) + 1
        head._fire()
        self._events_processed += 1
        return True

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def peek_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self._now:.6f}, pending={len(self._queue)})"
