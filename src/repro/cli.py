"""Command-line interface.

Examples::

    # One run with explicit parameters
    python -m repro run --protocol rica --mean-speed 36 --rate 10 \\
        --duration 30 --trials 2 --seed 1

    # Regenerate a paper figure (scaled down by default)
    python -m repro figure fig2a
    python -m repro figure fig3b --paper-scale

    # A full scenario grid, fanned out over 4 worker processes
    python -m repro campaign --protocols rica aodv --speeds 0 36 72 \\
        --rates 10 20 --duration 30 --trials 2 --jobs 4 --out campaign.json

    # What exists
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.channel.model import CHANNEL_BACKENDS
from repro.experiments.backend import RetryPolicy
from repro.experiments.campaign import CampaignSpec, run_campaign, save_results
from repro.experiments.figures import figure_spec, list_figures, run_figure
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweep import run_trials
from repro.mac.csma import MAC_BACKENDS, MacConfig
from repro.faults import FaultConfig, NodeChurnConfig
from repro.mobility.bank import MOBILITY_BACKENDS
from repro.routing.registry import available_protocols

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of RICA (ICDCS 2002): channel-adaptive ad hoc routing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one scenario and print its metrics")
    run_p.add_argument("--protocol", default="rica", choices=available_protocols())
    run_p.add_argument("--mean-speed", type=float, default=36.0, help="mean speed, km/h")
    run_p.add_argument("--rate", type=float, default=10.0, help="packets/s per flow")
    run_p.add_argument("--duration", type=float, default=30.0, help="simulated seconds")
    run_p.add_argument("--trials", type=int, default=1)
    run_p.add_argument("--nodes", type=int, default=50)
    run_p.add_argument("--flows", type=int, default=10)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument(
        "--channel-backend", default="vectorized", choices=list(CHANNEL_BACKENDS),
        help="fading backend (scalar = per-pair Python processes)",
    )
    run_p.add_argument(
        "--rreq-aggregation", type=float, default=0.0, metavar="SECONDS",
        help="RREQ-aggregation jitter window in seconds "
        "(0 = the paper's immediate-relay flooding)",
    )
    run_p.add_argument(
        "--mac-backend", default="scalar", choices=list(MAC_BACKENDS),
        help="MAC attempt scheduler (scalar = per-event reference; batched = "
        "BackoffBank + slot-aligned contention rounds + bulk ACK timers)",
    )
    run_p.add_argument(
        "--mac-slot-align", type=float, default=0.0, metavar="SECONDS",
        help="contention-slot width for the batched MAC backend "
        "(0 = the paper's continuous, unslotted timing)",
    )
    run_p.add_argument(
        "--mobility-backend", default="scalar", choices=list(MOBILITY_BACKENDS),
        help="mobility backend (scalar = per-node Python models, the "
        "reference; batched = MobilityBank segment arrays, one masked "
        "lerp per topology snapshot)",
    )
    run_p.add_argument(
        "--node-churn", type=float, default=0.0, metavar="RATE",
        help="deterministic node churn: per-node crash rate in crashes/s "
        "(0 = no faults; seed-derived, reproducible)",
    )
    run_p.add_argument(
        "--mean-downtime", type=float, default=5.0, metavar="SECONDS",
        help="mean down-time of a crashed node before it recovers "
        "(with --node-churn)",
    )

    fig_p = sub.add_parser("figure", help="regenerate a paper figure")
    fig_p.add_argument("figure_id", choices=list_figures())
    fig_p.add_argument("--paper-scale", action="store_true", help="500 s x 25 trials x 7 speeds")
    fig_p.add_argument("--duration", type=float, default=None)
    fig_p.add_argument("--trials", type=int, default=None)
    fig_p.add_argument("--seed", type=int, default=1)
    fig_p.add_argument("--protocols", nargs="*", default=None, choices=available_protocols())
    fig_p.add_argument("--plot", action="store_true", help="render an ASCII chart too")

    camp_p = sub.add_parser(
        "campaign",
        help="run a (protocol x speed x rate) grid, optionally in parallel",
    )
    camp_p.add_argument("--name", default="campaign")
    camp_p.add_argument(
        "--protocols", nargs="+", default=None, choices=available_protocols(),
        help="protocols to sweep (default: all)",
    )
    camp_p.add_argument(
        "--speeds", nargs="+", type=float, default=[0.0, 36.0, 72.0],
        help="mean speeds, km/h",
    )
    camp_p.add_argument(
        "--rates", nargs="+", type=float, default=[10.0],
        help="per-flow packet rates, packets/s",
    )
    camp_p.add_argument("--duration", type=float, default=30.0, help="simulated seconds")
    camp_p.add_argument("--trials", type=int, default=1)
    camp_p.add_argument("--nodes", type=int, default=50)
    camp_p.add_argument("--flows", type=int, default=10)
    camp_p.add_argument("--seed", type=int, default=1)
    camp_p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for grid cells (1 = serial; results are "
        "identical to serial for any N)",
    )
    camp_p.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock bound per grid cell; hung cells are killed and "
        "retried (process-pool backend)",
    )
    camp_p.add_argument(
        "--max-retries", type=int, default=0,
        help="extra attempts per cell after the first (exponential "
        "backoff); with retries the campaign returns partial results "
        "plus a failure report instead of aborting",
    )
    camp_p.add_argument("--out", default=None, help="write results JSON here")

    sub.add_parser("list", help="list protocols and figures")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    faults = None
    if args.node_churn > 0:
        faults = FaultConfig(
            churn=NodeChurnConfig(
                crash_rate_per_s=args.node_churn,
                mean_downtime_s=args.mean_downtime,
            )
        )
    config = ScenarioConfig(
        protocol=args.protocol,
        mean_speed_kmh=args.mean_speed,
        rate_pps=args.rate,
        duration_s=args.duration,
        n_nodes=args.nodes,
        n_flows=args.flows,
        seed=args.seed,
        channel_backend=args.channel_backend,
        rreq_aggregation_s=args.rreq_aggregation,
        mac_backend=args.mac_backend,
        mac=MacConfig(slot_align_s=args.mac_slot_align),
        mobility_backend=args.mobility_backend,
        faults=faults,
    )
    agg = run_trials(config, args.trials)
    rows = [
        ["avg end-to-end delay (ms)", agg.avg_delay_ms],
        ["delivery (%)", agg.delivery_pct],
        ["routing overhead (kbps)", agg.overhead_kbps],
        ["avg link throughput (kbps)", agg.avg_link_throughput_kbps],
        ["avg hops", agg.avg_hops],
    ]
    title = (
        f"{args.protocol} @ {args.mean_speed:.0f} km/h, {args.rate:.0f} pkt/s, "
        f"{args.duration:.0f}s x {args.trials} trial(s)"
    )
    if faults is not None:
        title += f", churn {args.node_churn:g}/s"
    print(format_table(["metric", "value"], rows, title))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    spec = figure_spec(args.figure_id)
    print(f"# {spec.figure_id}: {spec.title}")
    print(f"# paper expectation: {spec.paper_expectation}")
    result = run_figure(
        args.figure_id,
        duration_s=args.duration,
        trials=args.trials,
        seed=args.seed,
        paper_scale=args.paper_scale,
        protocols=args.protocols or None,
    )
    print(result.format_table())
    if args.plot:
        print()
        print(_render_plot(result))
    return 0


def _render_plot(result) -> str:
    """ASCII chart matching the figure's kind."""
    from repro.analysis.plot import bar_chart, line_plot

    spec = result.spec
    if spec.kind == "speed_sweep":
        series = {
            proto: [getattr(agg, spec.metric) for agg in result.per_protocol[proto]]
            for proto in spec.protocols
        }
        return line_plot(
            series, result.speeds_kmh, title=spec.title, y_label=spec.metric
        )
    if spec.kind == "bar":
        values = {
            proto: getattr(result.per_protocol[proto][0], spec.metric)
            for proto in spec.protocols
        }
        return bar_chart(values, title=spec.title)
    # timeseries
    longest = max(len(result.series(p)) for p in spec.protocols)
    xs = [i * 4.0 for i in range(longest)]
    series = {
        proto: (result.series(proto) + [0.0] * longest)[:longest]
        for proto in spec.protocols
    }
    return line_plot(series, xs, title=spec.title, y_label="kbps per 4 s bin")


def _cmd_campaign(args: argparse.Namespace) -> int:
    spec = CampaignSpec(
        name=args.name,
        base=ScenarioConfig(
            duration_s=args.duration,
            n_nodes=args.nodes,
            n_flows=args.flows,
            seed=args.seed,
        ),
        protocols=args.protocols or available_protocols(),
        mean_speeds_kmh=args.speeds,
        rates_pps=args.rates,
        trials=args.trials,
    )
    print(
        f"# campaign {spec.name!r}: {spec.cells} cells x {spec.trials} trial(s), "
        f"{args.duration:.0f}s each, jobs={args.jobs}"
    )
    policy = None
    if args.max_retries > 0 or args.cell_timeout is not None:
        policy = RetryPolicy(
            max_retries=args.max_retries, cell_timeout_s=args.cell_timeout
        )
    result = run_campaign(
        spec,
        progress=lambda key: print(f"  done {key}"),
        jobs=args.jobs,
        policy=policy,
    )
    rows = [
        [key, agg.avg_delay_ms, agg.delivery_pct, agg.overhead_kbps]
        for key, agg in result.cells.items()
    ]
    print(format_table(["cell", "delay (ms)", "delivery (%)", "overhead (kbps)"], rows))
    if result.failures:
        fail_rows = [
            [key, info["kind"], info["attempts"], info["error"]]
            for key, info in result.failures.items()
        ]
        print(format_table(["failed cell", "kind", "attempts", "error"], fail_rows))
        print(f"# {len(result.failures)} cell(s) failed after retries; results are partial")
    if args.out:
        save_results(result, args.out)
        print(f"# wrote {args.out}")
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("protocols:")
    for name in available_protocols():
        print(f"  {name}")
    print("figures:")
    for fid in list_figures():
        spec = figure_spec(fid)
        print(f"  {fid}: {spec.title}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "figure": _cmd_figure,
        "campaign": _cmd_campaign,
        "list": _cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
