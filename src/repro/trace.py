"""Structured event tracing for protocol debugging.

A :class:`Tracer` collects timestamped, categorised events from the
routing protocols (discoveries, route switches, link failures, REERs) into
a bounded ring buffer and supports live subscription and post-hoc queries.
Enable it per scenario with ``ScenarioConfig(enable_trace=True)`` and read
``scenario.tracer`` after the run:

    scenario = build_scenario(ScenarioConfig(enable_trace=True, ...))
    scenario.run()
    for event in scenario.tracer.query(category="route_switch"):
        print(event)

Tracing is off by default: the hot paths pay a single ``is None`` check.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, List, Optional

from repro.errors import ConfigurationError

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded protocol event."""

    time: float
    category: str
    node: int
    fields: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"t={self.time:9.4f}s node={self.node:3d} {self.category}" + (
            f" [{extra}]" if extra else ""
        )


class Tracer:
    """Bounded in-memory event log with subscriptions and queries."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"tracer capacity must be positive, got {capacity}")
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._subscribers: List[Callable[[TraceEvent], None]] = []
        self.counts: Counter = Counter()

    def __len__(self) -> int:
        return len(self._events)

    def emit(self, time: float, category: str, node: int, **fields: object) -> TraceEvent:
        """Record an event (and fan it out to live subscribers)."""
        event = TraceEvent(time, category, node, fields)
        self._events.append(event)
        self.counts[category] += 1
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, fn: Callable[[TraceEvent], None]) -> Callable[[], None]:
        """Register a live callback; returns an unsubscribe function."""
        self._subscribers.append(fn)

        def unsubscribe() -> None:
            if fn in self._subscribers:
                self._subscribers.remove(fn)

        return unsubscribe

    def query(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        since: float = 0.0,
        until: Optional[float] = None,
    ) -> Iterator[TraceEvent]:
        """Iterate recorded events, oldest first, with optional filters."""
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if node is not None and event.node != node:
                continue
            if event.time < since:
                continue
            if until is not None and event.time > until:
                continue
            yield event

    def last(self, category: Optional[str] = None) -> Optional[TraceEvent]:
        """The most recent (matching) event, or None."""
        for event in reversed(self._events):
            if category is None or event.category == category:
                return event
        return None

    def summary(self) -> str:
        """Per-category counts, one line each."""
        lines = [f"{count:7d}  {category}" for category, count in self.counts.most_common()]
        return "\n".join(lines) if lines else "(no events)"

    def clear(self) -> None:
        """Forget everything recorded so far."""
        self._events.clear()
        self.counts.clear()
