"""Dependency-free ASCII plots for terminal figure rendering.

The paper's figures are line charts (metric vs speed, throughput vs time)
and bar charts (route quality).  These renderers draw them in a terminal,
so ``python -m repro figure fig2a --plot`` shows the curve shapes without
matplotlib.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ConfigurationError

__all__ = ["line_plot", "bar_chart"]

_MARKERS = "ox+*#@%&"


def line_plot(
    series: Dict[str, Sequence[float]],
    xs: Sequence[float],
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render one or more series as an ASCII line chart.

    Args:
        series: label -> y values (all same length as ``xs``).
        xs: shared x coordinates.
        width/height: plot area size in characters.
        title: optional heading line.
        y_label: y-axis caption appended to the legend.
    """
    if not series:
        raise ConfigurationError("line_plot needs at least one series")
    for label, ys in series.items():
        if len(ys) != len(xs):
            raise ConfigurationError(f"series {label!r} length != xs length")
    if len(xs) < 2:
        raise ConfigurationError("line_plot needs at least two x points")

    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float):
        col = int((x - x_min) / (x_max - x_min) * (width - 1))
        row = int((y - y_min) / (y_max - y_min) * (height - 1))
        return height - 1 - row, col

    for idx, (label, ys) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        # Interpolate between data points for a connected look.
        for i in range(len(xs) - 1):
            steps = max(
                2,
                abs(cell(xs[i + 1], ys[i + 1])[1] - cell(xs[i], ys[i])[1]) + 1,
            )
            for s in range(steps + 1):
                frac = s / steps
                x = xs[i] + (xs[i + 1] - xs[i]) * frac
                y = ys[i] + (ys[i + 1] - ys[i]) * frac
                row, col = cell(x, y)
                grid[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_max:9.1f} |"
        elif i == height - 1:
            label = f"{y_min:9.1f} |"
        else:
            label = " " * 9 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(" " * 10 + f"{x_min:<10.1f}" + " " * max(0, width - 20) + f"{x_max:>10.1f}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}" for i, label in enumerate(series)
    )
    lines.append(f"legend: {legend}" + (f"   (y: {y_label})" if y_label else ""))
    return "\n".join(lines)


def bar_chart(
    values: Dict[str, float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Render labelled horizontal bars."""
    if not values:
        raise ConfigurationError("bar_chart needs at least one value")
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(k) for k in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in values.items():
        bar = "#" * max(1, int(value / peak * width)) if value > 0 else ""
        lines.append(f"{label.rjust(label_width)} | {bar} {value:.1f}{unit}")
    return "\n".join(lines)
