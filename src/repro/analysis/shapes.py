"""Shape checks: codified qualitative claims about experiment results.

The paper's conclusions are *orderings and trends* ("RICA outperforms...",
"delay increases with the mobile speed", "ABR outperforms AODV in low
mobility but AODV outperforms ABR in high mobility").  This module turns
those sentences into checkable predicates used by the benchmark harness
and recorded in EXPERIMENTS.md, so "the shape holds" is a computation, not
an eyeball judgement.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "ordering_holds",
    "trend_slope",
    "is_increasing",
    "is_decreasing",
    "crossover_point",
    "ratio",
    "ShapeCheck",
    "evaluate_checks",
]


def ordering_holds(
    values: Dict[str, float], ordering: Sequence[str], tolerance: float = 0.0
) -> bool:
    """True if ``values`` respects ``ordering`` from smallest to largest.

    ``tolerance`` is a fraction: adjacent pairs may violate the order by up
    to ``tolerance * larger_value`` (orderings between near-equal protocols
    are noisy at benchmark scale).
    """
    for smaller, larger in zip(ordering, ordering[1:]):
        a, b = values[smaller], values[larger]
        if a > b + tolerance * max(abs(a), abs(b)):
            return False
    return True


def trend_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``ys`` over ``xs``."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ConfigurationError("trend_slope needs two same-length series")
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    denom = sum((x - mx) ** 2 for x in xs)
    if denom == 0:
        return 0.0
    return sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / denom


def is_increasing(xs: Sequence[float], ys: Sequence[float], min_slope: float = 0.0) -> bool:
    """True if the least-squares trend of the series rises."""
    return trend_slope(xs, ys) > min_slope


def is_decreasing(xs: Sequence[float], ys: Sequence[float], max_slope: float = 0.0) -> bool:
    """True if the least-squares trend of the series falls."""
    return trend_slope(xs, ys) < max_slope


def crossover_point(
    xs: Sequence[float], a: Sequence[float], b: Sequence[float]
) -> float:
    """The x at which series ``a`` overtakes series ``b`` (linear
    interpolation), or ``nan`` if they never cross.

    Used for the paper's ABR/AODV delay crossover: ABR is better at low
    mobility, AODV at high mobility.
    """
    for i in range(len(xs) - 1):
        d0 = a[i] - b[i]
        d1 = a[i + 1] - b[i + 1]
        if d0 == 0:
            return xs[i]
        if d0 * d1 < 0:
            frac = abs(d0) / (abs(d0) + abs(d1))
            return xs[i] + frac * (xs[i + 1] - xs[i])
    return float("nan")


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio (inf for zero denominators)."""
    if denominator == 0:
        return float("inf")
    return numerator / denominator


class ShapeCheck:
    """One named, checkable claim with an explanation."""

    def __init__(self, name: str, passed: bool, detail: str = "") -> None:
        self.name = name
        self.passed = bool(passed)
        self.detail = detail

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}" + (f" — {self.detail}" if self.detail else "")


def evaluate_checks(checks: Sequence[ShapeCheck]) -> Tuple[int, int, List[str]]:
    """Summarise checks: (passed, total, lines)."""
    lines = []
    passed = 0
    for check in checks:
        mark = "PASS" if check.passed else "FAIL"
        passed += check.passed
        suffix = f" — {check.detail}" if check.detail else ""
        lines.append(f"[{mark}] {check.name}{suffix}")
    return passed, len(checks), lines
