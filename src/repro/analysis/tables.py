"""ASCII rendering of result tables and time series.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output consistent across the CLI, the
examples and the benchmarks.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width ASCII table.

    Floats are shown with one decimal; other values via ``str``.
    """
    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.1f}"
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, text in enumerate(row):
            widths[i] = max(widths[i], len(text))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(text.rjust(w) for text, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    label: str,
    times: Sequence[float],
    values: Sequence[float],
    max_points: int = 20,
) -> str:
    """Render a time series as ``t=...: value`` lines, downsampled."""
    n = len(values)
    if n == 0:
        return f"{label}: (empty)"
    step = max(1, n // max_points)
    lines = [label]
    for i in range(0, n, step):
        lines.append(f"  t={times[i]:7.1f}s  {values[i]:8.1f}")
    return "\n".join(lines)
