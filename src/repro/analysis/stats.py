"""Trial statistics.

The paper repeats every simulation 25 times and reports the average
(Section III-A).  :func:`aggregate_reports` produces the across-trial
means (and dispersion) of every derived metric, including the element-wise
mean of the Figure 6 throughput time series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.metrics.report import MetricsReport

__all__ = [
    "mean",
    "std",
    "sem",
    "confidence_interval_95",
    "AggregateMetrics",
    "aggregate_reports",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def std(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1); 0.0 for fewer than two values."""
    values = list(values)
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (n - 1))


def sem(values: Sequence[float]) -> float:
    """Standard error of the mean."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    return std(values) / math.sqrt(len(values))


def confidence_interval_95(values: Sequence[float]) -> Tuple[float, float]:
    """Normal-approximation 95% confidence interval for the mean."""
    values = list(values)
    m = mean(values)
    half = 1.96 * sem(values)
    return (m - half, m + half)


@dataclass(frozen=True)
class AggregateMetrics:
    """Across-trial means (and standard deviations) of the paper metrics."""

    trials: int
    avg_delay_ms: float
    delivery_pct: float
    overhead_kbps: float
    avg_link_throughput_kbps: float
    avg_hops: float
    avg_delay_ms_std: float = 0.0
    delivery_pct_std: float = 0.0
    overhead_kbps_std: float = 0.0
    avg_link_throughput_kbps_std: float = 0.0
    avg_hops_std: float = 0.0
    throughput_series_kbps: List[float] = field(default_factory=list)
    generated: float = 0.0
    delivered: float = 0.0
    drops: Dict[str, float] = field(default_factory=dict)


def aggregate_reports(reports: Sequence[MetricsReport]) -> AggregateMetrics:
    """Average a set of per-trial reports into one aggregate."""
    if not reports:
        raise ConfigurationError("aggregate_reports needs at least one report")
    delays = [r.avg_delay_ms for r in reports]
    deliveries = [r.delivery_pct for r in reports]
    overheads = [r.overhead_kbps for r in reports]
    link_tps = [r.avg_link_throughput_kbps for r in reports]
    hops = [r.avg_hops for r in reports]
    series_len = max(len(r.throughput_series_kbps) for r in reports)
    series = []
    for i in range(series_len):
        vals = [
            r.throughput_series_kbps[i]
            for r in reports
            if i < len(r.throughput_series_kbps)
        ]
        series.append(mean(vals))
    drop_keys = set()
    for r in reports:
        drop_keys.update(r.drops)
    drops = {k: mean([r.drops.get(k, 0) for r in reports]) for k in sorted(drop_keys)}
    return AggregateMetrics(
        trials=len(reports),
        avg_delay_ms=mean(delays),
        delivery_pct=mean(deliveries),
        overhead_kbps=mean(overheads),
        avg_link_throughput_kbps=mean(link_tps),
        avg_hops=mean(hops),
        avg_delay_ms_std=std(delays),
        delivery_pct_std=std(deliveries),
        overhead_kbps_std=std(overheads),
        avg_link_throughput_kbps_std=std(link_tps),
        avg_hops_std=std(hops),
        throughput_series_kbps=series,
        generated=mean([r.generated for r in reports]),
        delivered=mean([r.delivered for r in reports]),
        drops=drops,
    )
