"""Statistical aggregation across trials and ASCII table/series rendering."""

from repro.analysis.stats import (
    AggregateMetrics,
    aggregate_reports,
    mean,
    std,
    sem,
    confidence_interval_95,
)
from repro.analysis.tables import format_table, format_series
from repro.analysis.plot import line_plot, bar_chart
from repro.analysis.shapes import (
    ShapeCheck,
    crossover_point,
    evaluate_checks,
    is_decreasing,
    is_increasing,
    ordering_holds,
    trend_slope,
)

__all__ = [
    "AggregateMetrics",
    "aggregate_reports",
    "mean",
    "std",
    "sem",
    "confidence_interval_95",
    "format_table",
    "format_series",
    "line_plot",
    "bar_chart",
    "ShapeCheck",
    "crossover_point",
    "evaluate_checks",
    "is_decreasing",
    "is_increasing",
    "ordering_holds",
    "trend_slope",
]
