"""Per-destination next-hop routing tables.

Every on-demand protocol in the paper keeps, per destination, a single
next-hop entry plus bookkeeping (hop count, CSI distance, validity,
last-use time).  RICA's 1-second disuse expiry (Section II-C: the original
route "automatically expires" when unused for the timeout period) is
implemented by :meth:`RoutingTable.get_valid`'s ``max_idle`` check —
expiry is lazy, so no timer per route is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["RouteEntry", "RoutingTable"]


@dataclass
class RouteEntry:
    """One next-hop route toward a destination."""

    next_hop: int
    hops: float = 0.0
    csi_distance: float = 0.0
    valid: bool = True
    established_at: float = 0.0
    last_used: float = 0.0

    def touch(self, now: float) -> None:
        """Record a use of this route (data forwarded through it)."""
        self.last_used = now


class RoutingTable:
    """Destination → :class:`RouteEntry` map with lazy idle expiry."""

    def __init__(self) -> None:
        self._entries: Dict[int, RouteEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, dest: int) -> bool:
        return dest in self._entries

    def entry(self, dest: int) -> Optional[RouteEntry]:
        """Raw entry for ``dest`` (may be invalid); None if absent."""
        return self._entries.get(dest)

    def get_valid(
        self, dest: int, now: float, max_idle: Optional[float] = None
    ) -> Optional[RouteEntry]:
        """Valid entry for ``dest``, applying the idle-expiry rule.

        Args:
            dest: destination id.
            now: current time.
            max_idle: if set and the route has been idle longer than this
                since its last use (or establishment), it is invalidated
                and None is returned (RICA's 1 s rule).
        """
        entry = self._entries.get(dest)
        if entry is None or not entry.valid:
            return None
        if max_idle is not None:
            reference = max(entry.last_used, entry.established_at)
            if now - reference > max_idle:
                entry.valid = False
                return None
        return entry

    def set_route(
        self,
        dest: int,
        next_hop: int,
        now: float,
        hops: float = 0.0,
        csi_distance: float = 0.0,
    ) -> RouteEntry:
        """Install (or replace) the route toward ``dest``."""
        entry = RouteEntry(
            next_hop=next_hop,
            hops=hops,
            csi_distance=csi_distance,
            valid=True,
            established_at=now,
            last_used=now,
        )
        self._entries[dest] = entry
        return entry

    def invalidate(self, dest: int) -> bool:
        """Mark the route toward ``dest`` invalid.  Returns True if it was valid."""
        entry = self._entries.get(dest)
        if entry is not None and entry.valid:
            entry.valid = False
            return True
        return False

    def invalidate_via(self, next_hop: int) -> List[int]:
        """Invalidate every valid route using ``next_hop``; return the dests."""
        affected = []
        for dest, entry in self._entries.items():
            if entry.valid and entry.next_hop == next_hop:
                entry.valid = False
                affected.append(dest)
        return affected

    def valid_destinations(self, now: float, max_idle: Optional[float] = None) -> List[int]:
        """Destinations currently reachable through this table."""
        return [d for d in list(self._entries) if self.get_valid(d, now, max_idle) is not None]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        valid = sum(1 for e in self._entries.values() if e.valid)
        return f"RoutingTable(entries={len(self._entries)}, valid={valid})"
