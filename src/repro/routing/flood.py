"""Duplicate suppression for flooded packets.

The paper's history table: "Any intermediate terminal receiving this RREQ
first checks whether it has seen this packet before by looking up its
history table ... If yes, this packet is discarded."  :class:`FloodCache`
implements that check for any hashable flood key, with size-bounded
pruning so long runs do not grow memory without bound.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

__all__ = ["FloodCache"]


class FloodCache:
    """A bounded set of already-seen flood keys (insertion-ordered)."""

    def __init__(self, max_entries: int = 4096) -> None:
        self._seen: "OrderedDict[Hashable, None]" = OrderedDict()
        self._max_entries = max(max_entries, 16)

    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._seen

    def check_and_add(self, key: Hashable) -> bool:
        """Return True if ``key`` is new (and record it), False if seen."""
        if key in self._seen:
            return False
        self._seen[key] = None
        if len(self._seen) > self._max_entries:
            # Drop the oldest quarter in one go (amortised O(1) per add).
            for _ in range(self._max_entries // 4):
                self._seen.popitem(last=False)
        return True

    def clear(self) -> None:
        """Forget all recorded keys."""
        self._seen.clear()
