"""Protocol registry: build any of the paper's five protocols by name."""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.errors import ConfigurationError
from repro.metrics.collector import MetricsCollector
from repro.net.network import Network
from repro.net.node import Node
from repro.routing.base import ProtocolConfig, RoutingProtocol

__all__ = ["create_protocol", "available_protocols", "protocol_class"]


def _registry() -> Dict[str, Type[RoutingProtocol]]:
    # Imported lazily to avoid import cycles (core imports routing.base).
    from repro.core.rica import RicaProtocol
    from repro.routing.abr import AbrProtocol
    from repro.routing.aodv import AodvProtocol
    from repro.routing.bgca import BgcaProtocol
    from repro.routing.link_state import LinkStateProtocol

    return {
        "rica": RicaProtocol,
        "bgca": BgcaProtocol,
        "abr": AbrProtocol,
        "aodv": AodvProtocol,
        "link_state": LinkStateProtocol,
    }


def available_protocols() -> list:
    """Names of all implemented protocols (paper order)."""
    return ["rica", "bgca", "abr", "aodv", "link_state"]


def protocol_class(name: str) -> Type[RoutingProtocol]:
    """The protocol class registered under ``name``."""
    try:
        return _registry()[name]
    except KeyError:
        known = ", ".join(sorted(_registry()))
        raise ConfigurationError(f"unknown protocol {name!r}; known: {known}") from None


def create_protocol(
    name: str,
    node: Node,
    network: Network,
    metrics: MetricsCollector,
    config: Optional[ProtocolConfig] = None,
) -> RoutingProtocol:
    """Instantiate protocol ``name`` on ``node`` (and attach it)."""
    cls = protocol_class(name)
    return cls(node, network, metrics, config)
