"""AODV — ad hoc on-demand distance vector routing (paper baseline).

The paper's rendition of AODV (Sections I and III): pure on-demand, plain
hop counts, channel-state oblivious.  The destination "responds only the
first RREQ and chooses the path this RREQ has gone through although this
route is usually not the shortest one or some links in the route may be
congested" — so the reply window is zero.  On a link break, the upstream
node reports a route error toward the source, which then performs a full
re-discovery; packets queued on the broken link are lost ("usually in AODV
a great portion of data packets is dropped due to link break").
"""

from __future__ import annotations

from typing import List

from repro.metrics.collector import DropReason
from repro.net.packet import DataPacket
from repro.routing.base import OnDemandProtocol

__all__ = ["AodvProtocol"]


class AodvProtocol(OnDemandProtocol):
    """AODV as characterised in the paper."""

    name = "aodv"
    uses_csi = False
    reply_wait_s = 0.0  # destination answers the first RREQ immediately

    def handle_link_failure(
        self, next_hop: int, packet: DataPacket, queued: List[DataPacket]
    ) -> None:
        """Break: invalidate routes via the lost neighbour, REER upstream."""
        affected = self.invalidate_routes_via(next_hop)
        for pkt in [packet] + queued:
            if pkt.src == self.node.id:
                # Source-side break: hold the packets and rediscover.
                self.pending.hold(pkt, self.sim.now)
            else:
                self.drop_data(pkt, DropReason.LINK_FAILURE)
        flows_reported = set()
        for pkt in [packet] + queued:
            flow = (pkt.src, pkt.dst)
            if pkt.src != self.node.id and flow not in flows_reported:
                flows_reported.add(flow)
                self.send_reer(pkt.src, pkt.dst)
        for dest in affected:
            if self.pending.pending_count(dest) > 0:
                self.start_discovery(dest)

    def on_route_broken(self, dest: int) -> None:
        """The source received a REER: full re-discovery (paper behaviour)."""
        self.metrics.record_event("aodv_rediscovery")
        self.start_discovery(dest)
