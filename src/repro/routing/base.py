"""Routing protocol contract and the shared on-demand machinery.

Two layers live here:

* :class:`RoutingProtocol` — the contract every protocol satisfies, plus
  the data-plane plumbing all five share: next-hop forwarding with a hop
  limit, local delivery, upstream tracking per flow (who last sent us data
  for flow ``(src, dst)``, needed to unicast REERs back toward the source),
  and control-packet dispatch.

* :class:`OnDemandProtocol` — everything the four on-demand protocols
  (AODV, RICA, BGCA, ABR) share: source-side discovery state with retries,
  RREQ flooding with duplicate suppression and accumulator updates,
  destination-side reply collection windows, reverse-pointer bookkeeping
  for returning RREPs, pending-packet buffers, and the REER chain with the
  paper's staleness rule ("if the terminal unicasting the REER is not its
  downstream terminal, it ignores this REER").

Protocols differ in a small set of overridable policy points: the route
selection metric (:meth:`OnDemandProtocol.request_metric`), the reply wait
window, what happens on link failure, and any periodic machinery (beacons,
CSI checking, link monitoring).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import RoutingError
from repro.metrics.collector import DropReason, MetricsCollector
from repro.net.network import Network
from repro.net.node import Node
from repro.net.packet import DataPacket, Packet
from repro.routing.flood import FloodCache
from repro.routing.packets import (
    ControlPacket,
    RouteError,
    RouteReply,
    RouteRequest,
)
from repro.routing.pending import PendingBuffers
from repro.routing.table import RoutingTable

__all__ = ["RoutingProtocol", "OnDemandProtocol", "ProtocolConfig"]


@dataclass
class ProtocolConfig:
    """Tunables shared by all protocols (paper values where available)."""

    #: Destination-side collection window for RREQ candidates (s).  The
    #: paper gives 40 ms for the source-side CSI wait; we mirror it here.
    reply_wait_s: float = 0.04
    #: Source-side wait after the first CSI checking packet (paper: 40 ms).
    source_wait_s: float = 0.04
    #: Discovery attempt timeout before a retry (s).
    discovery_timeout_s: float = 0.5
    #: Full-discovery attempts before giving up and dropping pending data.
    max_discovery_retries: int = 2
    #: Idle lifetime of a route entry; None disables idle expiry.
    route_idle_timeout_s: Optional[float] = None
    #: Hop limit on data packets (loop guard).
    data_hop_limit: int = 64
    #: Source-side pending buffer capacity (packets per destination).
    pending_capacity: int = 50
    #: Maximum residence in pending buffers (paper's 3 s rule).
    pending_residence_s: float = 3.0
    #: Lifetime of reverse pointers awaiting an RREP (s).
    reverse_lifetime_s: float = 2.0
    #: Whether later duplicate RREQ/CSI copies with a strictly better metric
    #: may refine a node's reverse/downstream pointer (DESIGN.md note 2).
    refine_pointers: bool = True
    #: RREQ-aggregation jitter window (s).  0 (the default) preserves the
    #: paper's behaviour: every terminal relays the first copy of a flood
    #: immediately.  > 0 holds the relay for a uniform random fraction of
    #: the window, coalescing duplicate copies heard meanwhile into the one
    #: pending transmission (best accumulators win) and suppressing it
    #: entirely once ``rreq_suppress_copies`` duplicates were heard — the
    #: route-request aggregation idea of Mirzazad-Barijough &
    #: Garcia-Luna-Aceves, which trades a few ms of discovery latency for
    #: a large cut in flood-storm control transmissions.
    rreq_aggregation_s: float = 0.0
    #: Duplicate copies heard during the jitter window at which the pending
    #: relay is suppressed (neighbours have already covered this area).
    rreq_suppress_copies: int = 2
    #: Per-flow offered load in bps, keyed by (src, dst) — BGCA's bandwidth
    #: guard needs it; filled in by the experiment builder.
    flow_rates_bps: Dict[Tuple[int, int], float] = field(default_factory=dict)


class RoutingProtocol:
    """Base class: data-plane plumbing + control dispatch."""

    #: Protocol name as used in the paper's figures and the CLI.
    name = "abstract"

    def __init__(
        self,
        node: Node,
        network: Network,
        metrics: MetricsCollector,
        config: Optional[ProtocolConfig] = None,
    ) -> None:
        self.node = node
        self.network = network
        self.sim = network.sim
        self.channel = network.channel
        self.metrics = metrics
        self.config = config or ProtocolConfig()
        self.rng = network.streams.stream(f"routing/{node.id}")
        self.table = RoutingTable()
        self.flood_cache = FloodCache()
        self.pending = PendingBuffers(
            metrics,
            capacity=self.config.pending_capacity,
            max_residence_s=self.config.pending_residence_s,
        )
        #: Per-flow upstream neighbour (who last handed us data for (src, dst)).
        self.flow_upstream: Dict[Tuple[int, int], int] = {}
        #: Optional structured tracer (see repro.trace); None = off.
        self.tracer = None
        node.attach_routing(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm periodic machinery (beacons, monitors...).  Default: none."""

    def stop(self) -> None:
        """Cancel periodic machinery.  Default: none."""

    # ------------------------------------------------------------------
    # Traffic entry point
    # ------------------------------------------------------------------
    def handle_app_packet(self, packet: DataPacket) -> None:
        """The local application generated ``packet`` (already counted)."""
        self.dispatch_data(packet)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def handle_data(self, packet: DataPacket, from_id: int) -> None:
        """A data packet arrived over the data channel from ``from_id``."""
        self.flow_upstream[(packet.src, packet.dst)] = from_id
        if packet.dst == self.node.id:
            self.deliver_local(packet)
            self.on_data_at_destination(packet, from_id)
            return
        self.on_data_in_transit(packet, from_id)
        self.dispatch_data(packet)

    def dispatch_data(self, packet: DataPacket) -> None:
        """Forward ``packet`` along the current route, or invoke no-route."""
        now = self.sim.now
        entry = self.table.get_valid(packet.dst, now, self.config.route_idle_timeout_s)
        if entry is None:
            self.on_no_route(packet)
            return
        entry.touch(now)
        self.send_data(packet, entry.next_hop)

    def send_data(self, packet: DataPacket, next_hop: int) -> None:
        """Hand ``packet`` to the data link, enforcing the hop limit."""
        if packet.hops_traversed >= self.config.data_hop_limit:
            self.metrics.record_event("hop_limit_exceeded")
            self.drop_data(packet, DropReason.HOP_LIMIT)
            return
        self.node.send_data(packet, next_hop)

    def deliver_local(self, packet: DataPacket) -> None:
        """``packet`` reached its destination terminal."""
        self.metrics.record_delivered(packet, self.sim.now)

    def drop_data(self, packet: DataPacket, reason: DropReason) -> None:
        """Discard ``packet`` and account for it."""
        self.metrics.record_dropped(packet, reason)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_no_route(self, packet: DataPacket) -> None:
        """No valid route for ``packet``.  Default: drop."""
        self.drop_data(packet, DropReason.NO_ROUTE)

    def on_data_at_destination(self, packet: DataPacket, from_id: int) -> None:
        """Hook: a packet was just delivered here (RICA tracks activity)."""

    def on_data_in_transit(self, packet: DataPacket, from_id: int) -> None:
        """Hook: forwarding a packet for someone else."""

    def overhear(self, packet: ControlPacket, from_id: int) -> None:
        """Hook: a unicast control packet addressed to someone else."""

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def handle_control(self, packet: Packet, from_id: int) -> None:
        """Dispatch a received routing packet by its kind."""
        if not isinstance(packet, ControlPacket):
            raise RoutingError(f"non-control packet on common channel: {packet!r}")
        if packet.unicast_to is not None and packet.unicast_to != self.node.id:
            self.overhear(packet, from_id)
            return
        handler = getattr(self, f"on_{packet.kind}", None)
        if handler is not None:
            handler(packet, from_id)

    def broadcast_control(self, packet: ControlPacket) -> bool:
        """Send a routing packet on the common channel."""
        return self.node.send_control(packet)

    def trace(self, category: str, **fields: object) -> None:
        """Emit a structured trace event (no-op when tracing is off)."""
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, category, self.node.id, **fields)

    # ------------------------------------------------------------------
    # Link failures
    # ------------------------------------------------------------------
    def invalidate_routes_via(self, next_hop: int) -> List[int]:
        """Invalidate every route through ``next_hop``, marking each break.

        All protocols funnel next-hop invalidation through here so the
        collector can time break-to-repair latency: the matching repair is
        recorded by :meth:`note_route_repaired` when a fresh usable route
        to the same destination is installed at this node.
        """
        affected = self.table.invalidate_via(next_hop)
        now = self.sim.now
        for dest in affected:
            self.metrics.record_route_broken(self.node.id, dest, now)
        return affected

    def note_route_repaired(self, dest: int) -> None:
        """A usable route toward ``dest`` (re)appeared at this node."""
        self.metrics.record_route_repaired(self.node.id, dest, self.sim.now)

    def handle_link_failure(
        self, next_hop: int, packet: DataPacket, queued: List[DataPacket]
    ) -> None:
        """The data link gave up on ``next_hop``.  Default: drop everything."""
        self.invalidate_routes_via(next_hop)
        for pkt in [packet] + queued:
            self.drop_data(pkt, DropReason.LINK_FAILURE)

    # ------------------------------------------------------------------
    # REER helpers (shared by every protocol that uses them)
    # ------------------------------------------------------------------
    def send_reer(self, flow_src: int, flow_dst: int) -> None:
        """Unicast a route error toward the flow's source."""
        if self.node.id == flow_src:
            return
        upstream = self.flow_upstream.get((flow_src, flow_dst))
        if upstream is None:
            return
        reer = RouteError(
            self.sim.now, flow_src, flow_dst, reporter=self.node.id, unicast_to=upstream
        )
        self.broadcast_control(reer)

    def on_reer(self, reer: RouteError, from_id: int) -> None:
        """Paper Section II-D: accept only REERs from our true downstream."""
        entry = self.table.entry(reer.flow_dst)
        if entry is None or not entry.valid or entry.next_hop != from_id:
            self.metrics.record_event("reer_ignored_stale")
            return
        self.table.invalidate(reer.flow_dst)
        self.metrics.record_route_broken(self.node.id, reer.flow_dst, self.sim.now)
        self.trace("reer_accepted", flow_src=reer.flow_src, flow_dst=reer.flow_dst)
        if self.node.id == reer.flow_src:
            self.on_route_broken(reer.flow_dst)
            return
        # Relay the error toward the source.
        upstream = self.flow_upstream.get((reer.flow_src, reer.flow_dst))
        if upstream is not None:
            relay = RouteError(
                self.sim.now,
                reer.flow_src,
                reer.flow_dst,
                reporter=reer.reporter,
                unicast_to=upstream,
            )
            self.broadcast_control(relay)

    def on_route_broken(self, dest: int) -> None:
        """Hook: the source learned its route to ``dest`` is gone."""


class _Discovery:
    """Source-side state for one in-flight route discovery."""

    __slots__ = ("bcast_id", "attempts", "timer")

    def __init__(self, bcast_id: int, attempts: int, timer) -> None:
        self.bcast_id = bcast_id
        self.attempts = attempts
        self.timer = timer


class _ReplyCollector:
    """Destination-side candidate collection for one RREQ flood."""

    __slots__ = ("candidates", "timer")

    def __init__(self) -> None:
        self.candidates: List[Tuple[tuple, int, int, float]] = []
        self.timer = None


class _PendingRelay:
    """A relay held back by the RREQ-aggregation jitter window.

    Tracks the best copy seen so far (by the protocol's request metric)
    plus how many duplicate copies arrived while waiting — the suppression
    signal: every duplicate heard is a neighbour's relay already covering
    this terminal's area.
    """

    __slots__ = ("rreq", "from_id", "hops", "csi", "bottleneck", "metric", "copies")

    def __init__(
        self,
        rreq: RouteRequest,
        from_id: int,
        hops: int,
        csi: float,
        bottleneck: float,
        metric: tuple,
    ) -> None:
        self.rreq = rreq
        self.from_id = from_id
        self.hops = hops
        self.csi = csi
        self.bottleneck = bottleneck
        self.metric = metric
        self.copies = 0  # duplicates heard after the first copy


class OnDemandProtocol(RoutingProtocol):
    """Shared machinery of the on-demand family (AODV, RICA, BGCA, ABR)."""

    #: Whether RREQ accumulators include CSI hop distance (RICA/BGCA).
    uses_csi = False
    #: Destination waits this long collecting RREQ copies; 0 replies to the
    #: first copy immediately (AODV's documented behaviour in the paper).
    reply_wait_s: Optional[float] = None  # None -> config.reply_wait_s
    #: Whether later duplicate copies may refine reverse pointers.  Safe
    #: only for *additive* request metrics (hop count, CSI distance), where
    #: refinement is a Bellman relaxation and provably acyclic; protocols
    #: with non-monotone metrics (ABR's stability fraction) must keep the
    #: first-copy tree, which is acyclic by arrival causality.
    refinement_safe = True
    #: Safety valve: a reply relayed through more hops than this is stuck
    #: in a pointer anomaly and is discarded.
    MAX_REPLY_HOPS = 64

    def __init__(self, node, network, metrics, config=None) -> None:
        super().__init__(node, network, metrics, config)
        self._discoveries: Dict[int, _Discovery] = {}
        self._next_bcast_id = 0
        self._collectors: Dict[Tuple[int, int], _ReplyCollector] = {}
        self._replied = FloodCache()  # floods we already answered
        #: (origin, bcast_id) -> (upstream_neighbor, metric, stored_at)
        self._reverse: Dict[Tuple[int, int], Tuple[int, tuple, float]] = {}
        #: flood_key -> relay held back by the aggregation jitter window.
        self._pending_relays: Dict[tuple, _PendingRelay] = {}

    # ------------------------------------------------------------------
    # Policy points
    # ------------------------------------------------------------------
    def request_metric(
        self, rreq: RouteRequest, hops: int, csi: float, bottleneck_bw: float
    ) -> tuple:
        """Sortable badness of an RREQ copy (smaller wins).

        ``hops``/``csi``/``bottleneck_bw`` are the accumulators *including*
        the link the copy arrived on.  Default: plain hop count (AODV).
        """
        return (hops,)

    def make_rreq(self, dest: int, bcast_id: int) -> RouteRequest:
        """Build the discovery packet (protocols add fields/TTL here)."""
        return RouteRequest(self.sim.now, self.node.id, dest, bcast_id)

    def on_discovery_failed(self, dest: int) -> None:
        """All discovery attempts exhausted.  Default: drop pending data."""
        self.pending.drop_all(dest, DropReason.NO_ROUTE)

    def on_route_established(self, dest: int) -> None:
        """A route to ``dest`` appeared; flush pending data onto it."""
        for pkt in self.pending.release(dest, self.sim.now):
            self.dispatch_data(pkt)

    # ------------------------------------------------------------------
    # Source side
    # ------------------------------------------------------------------
    def on_no_route(self, packet: DataPacket) -> None:
        if packet.src == self.node.id:
            self.pending.hold(packet, self.sim.now)
            self.start_discovery(packet.dst)
        else:
            # Mid-route outage: drop and tell the source.
            self.drop_data(packet, DropReason.NO_ROUTE)
            self.send_reer(packet.src, packet.dst)

    def next_bcast_id(self) -> int:
        """Fresh broadcast id (paper: incremented per generated flood)."""
        self._next_bcast_id += 1
        return self._next_bcast_id

    def start_discovery(self, dest: int) -> None:
        """Kick off (or continue) a route discovery toward ``dest``."""
        if dest in self._discoveries:
            return
        self._launch_discovery(dest, attempts=0)

    def _launch_discovery(self, dest: int, attempts: int) -> None:
        bcast_id = self.next_bcast_id()
        rreq = self.make_rreq(dest, bcast_id)
        self.flood_cache.check_and_add(rreq.flood_key)  # don't accept our own flood
        self.broadcast_control(rreq)
        timer = self.sim.schedule(
            self.config.discovery_timeout_s, self._discovery_timeout, dest
        )
        self._discoveries[dest] = _Discovery(bcast_id, attempts, timer)
        self.metrics.record_event("discovery_started")
        self.trace("discovery", dest=dest, attempt=attempts, bcast_id=bcast_id)

    def _discovery_timeout(self, dest: int) -> None:
        disc = self._discoveries.get(dest)
        if disc is None:
            return
        if self.table.get_valid(dest, self.sim.now, self.config.route_idle_timeout_s):
            del self._discoveries[dest]
            return
        if disc.attempts + 1 <= self.config.max_discovery_retries:
            del self._discoveries[dest]
            self._launch_discovery(dest, attempts=disc.attempts + 1)
            return
        del self._discoveries[dest]
        self.metrics.record_event("discovery_failed")
        self.on_discovery_failed(dest)

    def _discovery_succeeded(self, dest: int) -> None:
        disc = self._discoveries.pop(dest, None)
        if disc is not None and disc.timer is not None:
            disc.timer.cancel()
        self.on_route_established(dest)

    # ------------------------------------------------------------------
    # RREQ flood processing
    # ------------------------------------------------------------------
    def on_rreq(self, rreq: RouteRequest, from_id: int) -> None:
        if rreq.origin == self.node.id:
            return
        now = self.sim.now
        if self.uses_csi:
            # One channel sample serves both the CSI distance and the
            # bottleneck-bandwidth accumulator (memoised class lookups).
            link_csi, arrival_bw = self.channel.link_metrics(from_id, self.node.id, now)
        else:
            link_csi = 1.0
            arrival_bw = float("inf")
        hops_here = rreq.hops + 1
        csi_here = rreq.csi_distance + link_csi
        bottleneck = min(rreq.min_bw_bps, arrival_bw)
        metric = self.request_metric(rreq, hops_here, csi_here, bottleneck)
        key = rreq.flood_key
        is_new = self.flood_cache.check_and_add(key)
        if is_new:
            self._reverse[key[1], key[3]] = (from_id, metric, now)
            self._prune_reverse(now)
        elif self.config.refine_pointers and self.refinement_safe:
            stored = self._reverse.get((key[1], key[3]))
            if stored is not None and metric < stored[1]:
                self._reverse[key[1], key[3]] = (from_id, metric, now)
        if self.node.id == rreq.target:
            self._collect_candidate(rreq, from_id, hops_here, csi_here, metric)
            return
        window = self.config.rreq_aggregation_s
        if window <= 0:
            # Paper-faithful: relay the first copy immediately, discard
            # duplicates.
            if not is_new:
                return
            self._relay_rreq(rreq, from_id, hops_here, csi_here, bottleneck)
            return
        self._aggregate_rreq(
            key, is_new, rreq, from_id, hops_here, csi_here, bottleneck, metric, window
        )

    def _aggregate_rreq(
        self,
        key: tuple,
        is_new: bool,
        rreq: RouteRequest,
        from_id: int,
        hops_here: int,
        csi_here: float,
        bottleneck: float,
        metric: tuple,
        window: float,
    ) -> None:
        """Hold, coalesce or suppress this copy's relay (aggregation on).

        The first copy schedules the relay after a uniform random jitter in
        ``(0, window)``; duplicates arriving before the flush are folded
        into the pending relay (for additive metrics the best accumulators
        win, mirroring the reverse-pointer refinement rule) and counted as
        evidence that neighbours already re-broadcast nearby.
        """
        if is_new:
            pending = _PendingRelay(rreq, from_id, hops_here, csi_here, bottleneck, metric)
            self._pending_relays[key] = pending
            self.sim.schedule(self.rng.uniform(0.0, window), self._flush_relay, key)
            return
        pending = self._pending_relays.get(key)
        if pending is None:
            return  # already flushed (or suppressed): a plain duplicate
        pending.copies += 1
        if self.refinement_safe and metric < pending.metric:
            pending.rreq = rreq
            pending.from_id = from_id
            pending.hops = hops_here
            pending.csi = csi_here
            pending.bottleneck = bottleneck
            pending.metric = metric

    def _flush_relay(self, key: tuple) -> None:
        """The jitter window closed: transmit the coalesced relay, or drop
        it if enough duplicate copies proved the area already covered."""
        pending = self._pending_relays.pop(key, None)
        if pending is None:
            return
        if pending.copies >= self.config.rreq_suppress_copies:
            self.metrics.record_event("rreq_suppressed")
            return
        if pending.copies:
            self.metrics.record_event("rreq_coalesced")
        self._relay_rreq(
            pending.rreq, pending.from_id, pending.hops, pending.csi, pending.bottleneck
        )

    def _relay_rreq(
        self,
        rreq: RouteRequest,
        from_id: int,
        hops_here: int,
        csi_here: float,
        bottleneck: float,
    ) -> None:
        if rreq.ttl is not None and rreq.ttl <= 1:
            return  # scope exhausted
        clone = rreq.relay_copy(self.sim.now)
        clone.hops = hops_here
        clone.csi_distance = csi_here
        clone.min_bw_bps = bottleneck
        if rreq.ttl is not None:
            clone.ttl = rreq.ttl - 1
        self.augment_relayed_rreq(clone, from_id)
        self.broadcast_control(clone)

    def augment_relayed_rreq(self, clone: RouteRequest, from_id: int) -> None:
        """Hook: ABR adds associativity/load accumulators here."""

    # ------------------------------------------------------------------
    # Destination side: collect candidates, reply to the best
    # ------------------------------------------------------------------
    def _collect_candidate(
        self, rreq: RouteRequest, from_id: int, hops: int, csi: float, metric: tuple
    ) -> None:
        wait = self.reply_wait_s if self.reply_wait_s is not None else self.config.reply_wait_s
        ckey = (rreq.query_kind, rreq.origin, rreq.bcast_id)
        if ckey in self._replied:
            return  # this flood was already answered; late copies are ignored
        collector = self._collectors.get(ckey)
        if collector is None:
            collector = _ReplyCollector()
            self._collectors[ckey] = collector
            if wait > 0:
                collector.timer = self.sim.schedule(
                    wait, self._reply_window_closed, ckey, rreq
                )
        collector.candidates.append((metric, from_id, hops, csi))
        if wait <= 0:
            self._reply_window_closed(ckey, rreq)

    def _reply_window_closed(self, ckey: tuple, rreq: RouteRequest) -> None:
        collector = self._collectors.pop(ckey, None)
        if collector is None or not collector.candidates:
            return
        self._replied.check_and_add(ckey)
        metric, from_id, hops, csi = min(collector.candidates, key=lambda c: c[0])
        reply = RouteReply(
            self.sim.now,
            origin=rreq.origin,
            target=self.node.id,
            bcast_id=rreq.bcast_id,
            unicast_to=from_id,
            query_kind=rreq.query_kind,
            required_bw_bps=rreq.required_bw_bps,
        )
        self.on_reply_sent(rreq, hops, csi)
        self.broadcast_control(reply)

    def on_reply_sent(self, rreq: RouteRequest, hops: int, csi: float) -> None:
        """Hook: RICA starts its CSI-checking machinery here."""

    # ------------------------------------------------------------------
    # RREP relay back toward the origin
    # ------------------------------------------------------------------
    def on_rrep(self, rrep: RouteReply, from_id: int) -> None:
        now = self.sim.now
        if rrep.hops >= self.MAX_REPLY_HOPS:
            self.metrics.record_event("rrep_hop_guard")
            return
        link_csi = (
            self.channel.csi_hop_distance(from_id, self.node.id, now) if self.uses_csi else 1.0
        )
        hops_here = rrep.hops + 1
        csi_here = rrep.csi_distance + link_csi
        self.table.set_route(
            rrep.target, next_hop=from_id, now=now, hops=hops_here, csi_distance=csi_here
        )
        self.note_route_repaired(rrep.target)
        if self.node.id == rrep.origin:
            self.metrics.record_event("route_established")
            self.trace(
                "route_established",
                dest=rrep.target,
                next_hop=from_id,
                hops=hops_here,
                csi=round(csi_here, 2),
            )
            self.on_reply_reached_origin(rrep)
            self._discovery_succeeded(rrep.target)
            return
        pointer = self._reverse.get((rrep.origin, rrep.bcast_id))
        if pointer is None:
            self.metrics.record_event("rrep_lost_no_reverse")
            return
        clone = rrep.relay_copy(now)
        clone.hops = hops_here
        clone.csi_distance = csi_here
        clone.unicast_to = pointer[0]
        self.broadcast_control(clone)

    def on_reply_reached_origin(self, rrep: RouteReply) -> None:
        """Hook: the requester received the reply (BGCA finishes LQs here)."""

    # ------------------------------------------------------------------
    def _prune_reverse(self, now: float) -> None:
        if len(self._reverse) <= 2048:
            return
        lifetime = self.config.reverse_lifetime_s
        self._reverse = {
            k: v for k, v in self._reverse.items() if now - v[2] <= lifetime
        }
