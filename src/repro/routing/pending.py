"""Source-side pending buffers: data waiting for route discovery.

When a source (or a node running a localized query) has packets for a
destination it currently has no route to, the packets wait here.  The
buffers enforce the same 3-second maximum residence as the data-plane
queues, and a bounded capacity; drops are reported to metrics with
dedicated reasons so loss attribution stays faithful to the paper's
discussion (congestion loss vs. route-outage loss).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.metrics.collector import DropReason, MetricsCollector
from repro.net.packet import DataPacket
from repro.net.queue import DropTailQueue, QueueDrop

__all__ = ["PendingBuffers"]


class PendingBuffers:
    """Per-destination holding buffers for route-less data packets."""

    def __init__(
        self,
        metrics: MetricsCollector,
        capacity: int = 50,
        max_residence_s: float = 3.0,
    ) -> None:
        self._metrics = metrics
        self._capacity = capacity
        self._max_residence = max_residence_s
        self._buffers: Dict[int, DropTailQueue] = {}

    def _buffer_for(self, dest: int) -> DropTailQueue:
        buf = self._buffers.get(dest)
        if buf is None:
            buf = DropTailQueue(
                self._capacity, self._max_residence, on_drop=self._record_drop
            )
            self._buffers[dest] = buf
        return buf

    def _record_drop(self, packet: DataPacket, reason: QueueDrop) -> None:
        if reason is QueueDrop.FULL:
            self._metrics.record_dropped(packet, DropReason.PENDING_OVERFLOW)
        elif reason is QueueDrop.EXPIRED:
            self._metrics.record_dropped(packet, DropReason.PENDING_TIMEOUT)

    # ------------------------------------------------------------------
    def hold(self, packet: DataPacket, now: float) -> bool:
        """Buffer ``packet`` until a route to its destination appears."""
        return self._buffer_for(packet.dst).push(packet, now)

    def hold_for(self, dest: int, packet: DataPacket, now: float) -> bool:
        """Buffer a packet under an explicit destination key."""
        return self._buffer_for(dest).push(packet, now)

    def release(self, dest: int, now: float) -> List[DataPacket]:
        """Pop all non-expired packets waiting for ``dest`` (FCFS order)."""
        buf = self._buffers.get(dest)
        if buf is None:
            return []
        buf.expire(now)
        packets = []
        while True:
            pkt = buf.pop(now)
            if pkt is None:
                break
            packets.append(pkt)
        return packets

    def drop_all(self, dest: int, reason: DropReason) -> int:
        """Discard everything waiting for ``dest``; returns the count."""
        buf = self._buffers.get(dest)
        if buf is None:
            return 0
        packets = buf.flush()
        for pkt in packets:
            self._metrics.record_dropped(pkt, reason)
        return len(packets)

    def pending_count(self, dest: int) -> int:
        """Packets currently waiting for ``dest``."""
        buf = self._buffers.get(dest)
        return len(buf) if buf is not None else 0

    def expire(self, now: float) -> None:
        """Apply the residence rule across all buffers."""
        for buf in self._buffers.values():
            buf.expire(now)
