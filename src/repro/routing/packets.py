"""Control packet taxonomy.

Every routing packet the five protocols exchange, with explicit on-air
sizes (the paper never gives header layouts, so sizes are conventional
compact encodings; they only matter through transmission time and overhead
accounting, and are configurable at the class level).

Relay semantics: a flooded packet is *re-created* (cloned) by every
relaying terminal with updated accumulators (hop counts, CSI distance,
TTL).  The :meth:`ControlPacket.relay_copy` helper performs the clone so a
packet object delivered to several receivers is never mutated in place.
"""

from __future__ import annotations

import copy
from typing import List, Optional, Tuple

from repro.net.packet import Packet

__all__ = [
    "ControlPacket",
    "RouteRequest",
    "RouteReply",
    "RouteError",
    "CsiCheck",
    "RouteUpdate",
    "Beacon",
    "LinkStateAd",
    "RouteNotification",
]


class ControlPacket(Packet):
    """Base class for all routing packets.

    ``unicast_to`` — routing packets physically travel on the broadcast
    common channel; a non-None value marks the packet as logically unicast
    so non-addressees normally ignore it (though protocols may overhear,
    e.g. RICA's possible-downstream detection).
    """

    __slots__ = ("unicast_to",)

    kind = "control"
    SIZE_BYTES = 16

    def __init__(self, created_at: float, unicast_to: Optional[int] = None) -> None:
        super().__init__(self.SIZE_BYTES, created_at)
        self.unicast_to = unicast_to

    def relay_copy(self, created_at: float) -> "ControlPacket":
        """Clone this packet for relaying (fresh uid, same fields)."""
        clone = copy.copy(self)
        # Re-run the base init to stamp a fresh uid and timestamp while
        # preserving all subclass fields (including a size adjusted by the
        # subclass, e.g. LSA entry lists).
        Packet.__init__(clone, self.size_bytes, created_at)
        return clone


class RouteRequest(ControlPacket):
    """Route request flood (AODV RREQ, RICA/BGCA RREQ, ABR BQ, local query).

    Accumulators are updated by every relaying terminal:

    * ``hops`` — plain hop count from the origin;
    * ``csi_distance`` — CSI-based hop distance (RICA/BGCA);
    * ``min_bw_bps`` — bottleneck link throughput seen so far (BGCA);
    * ``stable_links`` / ``load_sum`` — ABR's associativity and load
      accumulators.

    ``ttl`` limits the flood scope (local queries); ``None`` floods the
    whole network.  ``query_kind`` distinguishes a full discovery from a
    localized query in overhead accounting.
    """

    __slots__ = (
        "origin",
        "target",
        "bcast_id",
        "hops",
        "csi_distance",
        "min_bw_bps",
        "required_bw_bps",
        "stable_links",
        "load_sum",
        "ttl",
        "query_kind",
    )

    kind = "rreq"
    SIZE_BYTES = 24

    def __init__(
        self,
        created_at: float,
        origin: int,
        target: int,
        bcast_id: int,
        ttl: Optional[int] = None,
        required_bw_bps: float = 0.0,
        query_kind: str = "full",
    ) -> None:
        super().__init__(created_at)
        self.origin = origin
        self.target = target
        self.bcast_id = bcast_id
        self.hops = 0
        self.csi_distance = 0.0
        self.min_bw_bps = float("inf")
        self.required_bw_bps = required_bw_bps
        self.stable_links = 0
        self.load_sum = 0
        self.ttl = ttl
        self.query_kind = query_kind

    @property
    def flood_key(self) -> Tuple[str, int, int, int]:
        """Duplicate-suppression key (unique per flood)."""
        return ("rreq", self.origin, self.target, self.bcast_id)


class RouteReply(ControlPacket):
    """Route reply unicast hop-by-hop from target back to the requester.

    ``required_bw_bps`` echoes the request's bandwidth requirement so the
    terminals along the route learn the flow's guard level (BGCA).
    """

    __slots__ = (
        "origin",
        "target",
        "bcast_id",
        "hops",
        "csi_distance",
        "query_kind",
        "required_bw_bps",
    )

    kind = "rrep"
    SIZE_BYTES = 20

    def __init__(
        self,
        created_at: float,
        origin: int,
        target: int,
        bcast_id: int,
        unicast_to: Optional[int] = None,
        query_kind: str = "full",
        required_bw_bps: float = 0.0,
    ) -> None:
        super().__init__(created_at, unicast_to)
        self.origin = origin  # the terminal that issued the request
        self.target = target  # the destination that generated this reply
        self.bcast_id = bcast_id
        self.hops = 0  # hops from the target to the current holder
        self.csi_distance = 0.0
        self.query_kind = query_kind
        self.required_bw_bps = required_bw_bps


class RouteError(ControlPacket):
    """REER: a route for flow (src, dst) broke at ``reporter``."""

    __slots__ = ("flow_src", "flow_dst", "reporter")

    kind = "reer"
    SIZE_BYTES = 16

    def __init__(
        self,
        created_at: float,
        flow_src: int,
        flow_dst: int,
        reporter: int,
        unicast_to: Optional[int] = None,
    ) -> None:
        super().__init__(created_at, unicast_to)
        self.flow_src = flow_src
        self.flow_dst = flow_dst
        self.reporter = reporter


class CsiCheck(ControlPacket):
    """RICA's receiver-initiated CSI checking packet (paper Section II-C).

    Broadcast by the *destination* toward the source with a TTL equal to
    the plain-hop length of the current route; accumulates CSI hop distance
    on every traversed link.
    """

    __slots__ = ("flow_src", "flow_dst", "bcast_id", "csi_distance", "hops", "ttl")

    kind = "csi_check"
    SIZE_BYTES = 20

    def __init__(
        self,
        created_at: float,
        flow_src: int,
        flow_dst: int,
        bcast_id: int,
        ttl: int,
    ) -> None:
        super().__init__(created_at)
        self.flow_src = flow_src  # the data source (the checking packet's audience)
        self.flow_dst = flow_dst  # the destination broadcasting the check
        self.bcast_id = bcast_id
        self.csi_distance = 0.0
        self.hops = 0
        self.ttl = ttl

    @property
    def flood_key(self) -> Tuple[str, int, int, int]:
        """Duplicate-suppression key."""
        return ("csi", self.flow_dst, self.flow_src, self.bcast_id)


class RouteUpdate(ControlPacket):
    """RICA's RUPD: switch the flow's route to the newly selected chain."""

    __slots__ = ("flow_src", "flow_dst", "bcast_id")

    kind = "rupd"
    SIZE_BYTES = 16

    def __init__(
        self,
        created_at: float,
        flow_src: int,
        flow_dst: int,
        bcast_id: int,
        unicast_to: Optional[int] = None,
    ) -> None:
        super().__init__(created_at, unicast_to)
        self.flow_src = flow_src
        self.flow_dst = flow_dst
        self.bcast_id = bcast_id


class Beacon(ControlPacket):
    """ABR periodic beacon; receiving one increments associativity ticks."""

    __slots__ = ("origin",)

    kind = "beacon"
    SIZE_BYTES = 12

    def __init__(self, created_at: float, origin: int) -> None:
        super().__init__(created_at)
        self.origin = origin


class LinkStateAd(ControlPacket):
    """Link-state advertisement: ``origin``'s current view of its links.

    ``entries`` is a list of ``(neighbor_id, csi_cost)`` pairs; a cost of
    ``float('inf')`` withdraws the link.  Size grows with the entry count.
    """

    __slots__ = ("origin", "seq", "entries")

    kind = "lsa"
    SIZE_BYTES = 16  # header; entries add 6 bytes each

    def __init__(
        self,
        created_at: float,
        origin: int,
        seq: int,
        entries: List[Tuple[int, float]],
    ) -> None:
        super().__init__(created_at)
        self.origin = origin
        self.seq = seq
        self.entries = list(entries)
        self.size_bytes = self.SIZE_BYTES + 6 * len(self.entries)

    @property
    def flood_key(self) -> Tuple[str, int, int]:
        """Duplicate-suppression key."""
        return ("lsa", self.origin, self.seq)


class RouteNotification(ControlPacket):
    """ABR's RN: tells the source its route is gone after a failed LQ."""

    __slots__ = ("flow_src", "flow_dst", "reporter")

    kind = "rn"
    SIZE_BYTES = 16

    def __init__(
        self,
        created_at: float,
        flow_src: int,
        flow_dst: int,
        reporter: int,
        unicast_to: Optional[int] = None,
    ) -> None:
        super().__init__(created_at, unicast_to)
        self.flow_src = flow_src
        self.flow_dst = flow_dst
        self.reporter = reporter
