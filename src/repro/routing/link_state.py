"""Link-state routing (paper baseline).

The paper's link-state setup (Section III-A): "at the beginning of each
simulation run, an accurate view of the network topology is installed in
each mobile terminal.  When the mobile terminal finds the bandwidth with
its neighbor changes (due to CSI change or link break), it floods this
change throughout the network."  Forwarding is hop-by-hop: every terminal
runs Dijkstra over its *own* link-state database with CSI hop-distance
costs and forwards to the computed next hop.

Faithfully to the paper, *each change* is flooded as its own routing
packet ("each change has to be flooded as routing packet throughout the
network through the common channel") — there is no aggregation.  Under
mobility and fading the offered update load far exceeds the 250 kbps
common channel, updates collide and queue-drop, databases diverge, and
routing loops form; delay and loss grow sharply with speed.  Nothing here
"simulates" loops explicitly; they emerge from stale databases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.metrics.collector import DropReason
from repro.net.packet import DataPacket
from repro.routing.base import ProtocolConfig, RoutingProtocol
from repro.routing.dijkstra import next_hops
from repro.routing.packets import LinkStateAd
from repro.sim.timers import PeriodicTimer

__all__ = ["LinkStateProtocol", "LinkStateConfig"]


@dataclass
class LinkStateConfig(ProtocolConfig):
    """Link-state tunables."""

    #: How often a terminal samples its own links for changes (s).
    monitor_interval_s: float = 0.5
    #: Data packets are retried once through a recomputed next hop after a
    #: link failure before being dropped.
    retry_after_failure: bool = True


class LinkStateProtocol(RoutingProtocol):
    """Proactive link-state routing with per-change flooding and Dijkstra."""

    name = "link_state"

    def __init__(self, node, network, metrics, config=None) -> None:
        super().__init__(node, network, metrics, config or LinkStateConfig())
        if not isinstance(self.config, LinkStateConfig):
            merged = LinkStateConfig()
            merged.__dict__.update(self.config.__dict__)
            self.config = merged
        #: Directed LSDB: adj[u][v] = CSI hop cost of link u->v.
        self.adj: Dict[int, Dict[int, float]] = {}
        #: Freshest update sequence seen per directed link (origin, neighbor).
        self._link_seq: Dict[Tuple[int, int], int] = {}
        self._own_seq = 0
        self._monitor: Optional[PeriodicTimer] = None
        self._next_hop_cache: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------
    # Start-up: the paper installs an accurate global view at t = 0
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._install_accurate_view()
        interval = self.config.monitor_interval_s
        self._monitor = PeriodicTimer(
            self.sim,
            interval,
            self._monitor_links,
            start_delay=self.rng.uniform(0.5 * interval, 1.5 * interval),
        ).start()

    def stop(self) -> None:
        if self._monitor is not None:
            self._monitor.cancel()

    def _install_accurate_view(self) -> None:
        now = self.sim.now
        # One bulk neighbour map from the topology index, then the whole
        # network's CSI scan as a single flattened channel pipeline.
        self.adj = self.channel.csi_hop_map(self.network.adjacency(now), now)
        self._next_hop_cache = None

    # ------------------------------------------------------------------
    # Periodic self-monitoring: flood one LSA per changed link
    # ------------------------------------------------------------------
    def _monitor_links(self) -> None:
        now = self.sim.now
        me = self.node.id
        # One grid-backed neighbour query + one vectorized CSI pipeline
        # per monitor tick (the per-neighbour Python loop lives in the
        # channel backend, not here).
        current: Dict[int, float] = self.channel.csi_hop_distances(
            me, self.network.neighbors(me, now), now
        )
        advertised = self.adj.get(me, {})
        if current == advertised:
            return  # steady state: nothing to flood, nothing to rebuild
        changes: List[Tuple[int, float]] = []
        for v, cost in current.items():
            if advertised.get(v) != cost:
                changes.append((v, cost))
        for v in advertised:
            if v not in current:
                changes.append((v, math.inf))  # withdrawal
        for change in changes:
            self._flood_change(change)
        if changes:
            self.adj[me] = current
            self._next_hop_cache = None

    def _flood_change(self, change: Tuple[int, float]) -> None:
        me = self.node.id
        self._own_seq += 1
        self._link_seq[me, change[0]] = self._own_seq
        lsa = LinkStateAd(self.sim.now, origin=me, seq=self._own_seq, entries=[change])
        self.broadcast_control(lsa)

    def on_lsa(self, lsa: LinkStateAd, from_id: int) -> None:
        if lsa.origin == self.node.id:
            return
        fresh = False
        for neighbor, cost in lsa.entries:
            key = (lsa.origin, neighbor)
            if lsa.seq <= self._link_seq.get(key, -1):
                continue
            self._link_seq[key] = lsa.seq
            links = self.adj.setdefault(lsa.origin, {})
            if math.isinf(cost):
                links.pop(neighbor, None)
            else:
                links[neighbor] = cost
            fresh = True
        if fresh:
            self._next_hop_cache = None
            self.broadcast_control(lsa.relay_copy(self.sim.now))

    # ------------------------------------------------------------------
    # Forwarding: per-node Dijkstra over the local database
    # ------------------------------------------------------------------
    def _next_hop(self, dest: int) -> Optional[int]:
        if self._next_hop_cache is None:
            self._next_hop_cache = next_hops(self.adj, self.node.id)
        return self._next_hop_cache.get(dest)

    def dispatch_data(self, packet: DataPacket) -> None:
        hop = self._next_hop(packet.dst)
        if hop is None:
            self.drop_data(packet, DropReason.NO_ROUTE)
            return
        self.send_data(packet, hop)

    # ------------------------------------------------------------------
    # Link failure: withdraw, flood, optionally retry
    # ------------------------------------------------------------------
    def handle_link_failure(
        self, next_hop: int, packet: DataPacket, queued: List[DataPacket]
    ) -> None:
        me = self.node.id
        now = self.sim.now
        if next_hop in self.adj.get(me, {}):
            del self.adj[me][next_hop]
            self._next_hop_cache = None
            self._flood_change((next_hop, math.inf))
        for dst in {pkt.dst for pkt in [packet] + queued}:
            self.metrics.record_route_broken(me, dst, now)
        for pkt in [packet] + queued:
            if not self.config.retry_after_failure:
                self.drop_data(pkt, DropReason.LINK_FAILURE)
                continue
            hop = self._next_hop(pkt.dst)
            if hop is None or hop == next_hop:
                self.drop_data(pkt, DropReason.LINK_FAILURE)
            else:
                # The recomputed tree already avoids the dead link — the
                # proactive protocol's repair is this immediate reroute.
                self.metrics.record_route_repaired(me, pkt.dst, now)
                self.send_data(pkt, hop)
