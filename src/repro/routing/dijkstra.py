"""Dijkstra shortest paths over a directed adjacency map.

Used by the link-state protocol: each terminal runs Dijkstra over its own
(possibly stale) link-state database with CSI hop-distance costs — "when a
mobile terminal need to forward packets, it uses this algorithm to compute
the next hop" (paper Section III-E).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

__all__ = ["shortest_paths", "next_hops", "path_to"]

Graph = Mapping[Hashable, Mapping[Hashable, float]]


def shortest_paths(
    graph: Graph, source: Hashable
) -> Tuple[Dict[Hashable, float], Dict[Hashable, Hashable]]:
    """Single-source shortest paths.

    Args:
        graph: ``{u: {v: cost}}`` directed adjacency; infinite or negative
            costs are skipped (infinite marks withdrawn links).
        source: start node.

    Returns:
        ``(dist, parent)`` — distance map and shortest-path-tree parents
        (absent keys are unreachable).
    """
    dist: Dict[Hashable, float] = {source: 0.0}
    parent: Dict[Hashable, Hashable] = {}
    visited = set()
    heap: List[Tuple[float, int, Hashable]] = [(0.0, 0, source)]
    counter = 0  # tie-break for non-comparable node types
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in visited:
            continue
        visited.add(u)
        for v, cost in graph.get(u, {}).items():
            if cost < 0 or math.isinf(cost) or v in visited:
                continue
            nd = d + cost
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                parent[v] = u
                counter += 1
                heapq.heappush(heap, (nd, counter, v))
    return dist, parent


def next_hops(graph: Graph, source: Hashable) -> Dict[Hashable, Hashable]:
    """First hop from ``source`` toward every reachable destination."""
    _, parent = shortest_paths(graph, source)
    result: Dict[Hashable, Hashable] = {}
    for dest in parent:
        hop = dest
        while parent.get(hop) != source:
            hop = parent.get(hop)
            if hop is None:  # pragma: no cover - defensive
                break
        if hop is not None:
            result[dest] = hop
    return result


def path_to(graph: Graph, source: Hashable, dest: Hashable) -> Optional[List[Hashable]]:
    """Full shortest path from ``source`` to ``dest``, or None."""
    dist, parent = shortest_paths(graph, source)
    if dest not in dist:
        return None
    path = [dest]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path
