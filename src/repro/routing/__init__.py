"""Routing protocols and shared routing machinery.

The paper compares five protocols; this package hosts the four baselines —
:mod:`~repro.routing.aodv` (AODV), :mod:`~repro.routing.abr` (ABR),
:mod:`~repro.routing.bgca` (BGCA) and :mod:`~repro.routing.link_state`
(link state with Dijkstra) — plus the shared machinery they and the RICA
implementation (:mod:`repro.core.rica`) are built from:

* :mod:`~repro.routing.packets` — the control-packet taxonomy with sizes;
* :mod:`~repro.routing.table` — per-destination next-hop routing tables;
* :mod:`~repro.routing.flood` — duplicate suppression for flooded packets;
* :mod:`~repro.routing.pending` — source-side buffers while discovery runs;
* :mod:`~repro.routing.base` — the :class:`RoutingProtocol` contract and
  the data-plane plumbing every protocol shares.

Use :func:`repro.routing.registry.create_protocol` to instantiate a
protocol by its paper name (``"rica"``, ``"bgca"``, ``"abr"``, ``"aodv"``,
``"link_state"``).
"""

from repro.routing.base import RoutingProtocol, ProtocolConfig
from repro.routing.table import RouteEntry, RoutingTable
from repro.routing.flood import FloodCache
from repro.routing.pending import PendingBuffers
from repro.routing.registry import create_protocol, available_protocols

__all__ = [
    "RoutingProtocol",
    "ProtocolConfig",
    "RouteEntry",
    "RoutingTable",
    "FloodCache",
    "PendingBuffers",
    "create_protocol",
    "available_protocols",
]
