"""ABR — associativity-based routing (paper baseline).

ABR [6], [10], [12] selects *long-lived* routes: every terminal beacons
periodically, and each receiver counts "associativity ticks" per
neighbour; a link whose tick count exceeds a threshold is considered
stable (the terminal has dwelt in range long enough that it is likely to
stay).  Route selection (destination side) prefers, lexicographically:

1. the route with the highest fraction of associatively-stable links,
2. then the lowest total load along the route (queue occupancy — "ABR
   takes the load ... into consideration when selecting the route (by not
   choosing links with heavy load)"),
3. then the fewest hops.

On a link break, the node upstream of the break runs a TTL-limited
*localized query* (LQ) for a partial route to the destination while data
packets queue behind it — the queueing that makes ABR's delay grow with
mobility in Figure 2.  If the LQ fails, a route notification (RN) travels
back to the source, which re-floods a full BQ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.metrics.collector import DropReason
from repro.net.packet import DataPacket
from repro.routing.base import OnDemandProtocol, ProtocolConfig
from repro.routing.packets import Beacon, RouteNotification, RouteRequest, RouteReply
from repro.sim.timers import PeriodicTimer

__all__ = ["AbrProtocol", "AbrConfig"]


@dataclass
class AbrConfig(ProtocolConfig):
    """ABR adds beaconing and stability tunables to the shared config."""

    beacon_interval_s: float = 1.0
    stability_threshold_ticks: int = 4
    neighbor_timeout_s: float = 2.5
    lq_timeout_s: float = 0.3
    lq_ttl_slack: int = 2


class AbrProtocol(OnDemandProtocol):
    """Associativity-based routing."""

    name = "abr"
    uses_csi = False
    #: ABR's stability-fraction metric is not additive, so pointer
    #: refinement could create reply-forwarding cycles; keep the (provably
    #: acyclic) first-copy reverse tree instead.
    refinement_safe = False

    def __init__(self, node, network, metrics, config=None) -> None:
        super().__init__(node, network, metrics, config or AbrConfig())
        if not isinstance(self.config, AbrConfig):
            # Accept a plain ProtocolConfig: keep its shared fields, take
            # ABR defaults for the protocol-specific ones.
            merged = AbrConfig()
            merged.__dict__.update(self.config.__dict__)
            self.config = merged
        #: neighbour -> (ticks, last_beacon_time)
        self._assoc: Dict[int, Tuple[int, float]] = {}
        self._beacon_timer: Optional[PeriodicTimer] = None
        #: dest -> (lq timer handle, bcast_id)
        self._local_queries: Dict[int, Tuple[object, int]] = {}

    # ------------------------------------------------------------------
    # Beaconing / associativity
    # ------------------------------------------------------------------
    def start(self) -> None:
        interval = self.config.beacon_interval_s
        self._beacon_timer = PeriodicTimer(
            self.sim,
            interval,
            self._send_beacon,
            start_delay=self.rng.uniform(0.0, interval),
        ).start()

    def stop(self) -> None:
        if self._beacon_timer is not None:
            self._beacon_timer.cancel()

    def _send_beacon(self) -> None:
        self.broadcast_control(Beacon(self.sim.now, origin=self.node.id))

    def on_beacon(self, beacon: Beacon, from_id: int) -> None:
        now = self.sim.now
        ticks, last = self._assoc.get(from_id, (0, now))
        if now - last > self.config.neighbor_timeout_s:
            ticks = 0  # the neighbour left and came back: associativity resets
        self._assoc[from_id] = (ticks + 1, now)

    def ticks_for(self, neighbor: int) -> int:
        """Current associativity tick count for ``neighbor``."""
        ticks, last = self._assoc.get(neighbor, (0, -1e18))
        if self.sim.now - last > self.config.neighbor_timeout_s:
            return 0
        return ticks

    def is_stable(self, neighbor: int) -> bool:
        """True if the link to ``neighbor`` is associatively stable."""
        return self.ticks_for(neighbor) >= self.config.stability_threshold_ticks

    # ------------------------------------------------------------------
    # Route selection: stability first, then load, then hops
    # ------------------------------------------------------------------
    def request_metric(
        self, rreq: RouteRequest, hops: int, csi: float, bottleneck_bw: float
    ) -> tuple:
        # ``rreq`` accumulators already include the arrival link (see
        # on_rreq below), so the metric reads them directly.
        stable_fraction = rreq.stable_links / max(hops, 1)
        return (-stable_fraction, rreq.load_sum, hops)

    def on_rreq(self, rreq: RouteRequest, from_id: int) -> None:
        # Fold the arrival link's associativity and this node's load into
        # the accumulators before the shared logic computes metrics and
        # relays; the copy keeps the shared object unmutated.
        rreq = rreq.relay_copy(self.sim.now)
        if self.is_stable(from_id):
            rreq.stable_links += 1
        rreq.load_sum += self.node.datalink.total_queued() if self.node.datalink else 0
        super().on_rreq(rreq, from_id)

    def make_rreq(self, dest: int, bcast_id: int) -> RouteRequest:
        return RouteRequest(self.sim.now, self.node.id, dest, bcast_id, query_kind="full")

    # ------------------------------------------------------------------
    # Link break: localized query, then RN to source
    # ------------------------------------------------------------------
    def handle_link_failure(
        self, next_hop: int, packet: DataPacket, queued: List[DataPacket]
    ) -> None:
        now = self.sim.now
        affected = self.invalidate_routes_via(next_hop)
        self._assoc.pop(next_hop, None)  # associativity is void once it left
        for pkt in [packet] + queued:
            self.pending.hold(pkt, now)  # data waits while the LQ runs
        dests = set(affected) | {pkt.dst for pkt in [packet] + queued}
        for dest in dests:
            if dest == self.node.id:
                continue
            self._start_local_query(dest)

    def _start_local_query(self, dest: int) -> None:
        if dest in self._local_queries:
            return
        entry = self.table.entry(dest)
        remaining = int(entry.hops) if entry is not None else 3
        ttl = max(remaining + self.config.lq_ttl_slack, 2)
        bcast_id = self.next_bcast_id()
        lq = RouteRequest(
            self.sim.now,
            origin=self.node.id,
            target=dest,
            bcast_id=bcast_id,
            ttl=ttl,
            query_kind="local",
        )
        self.flood_cache.check_and_add(lq.flood_key)
        self.broadcast_control(lq)
        self.metrics.record_event("abr_local_query")
        timer = self.sim.schedule(self.config.lq_timeout_s, self._lq_timeout, dest)
        self._local_queries[dest] = (timer, bcast_id)

    def _lq_timeout(self, dest: int) -> None:
        state = self._local_queries.pop(dest, None)
        if state is None:
            return
        if self.table.get_valid(dest, self.sim.now) is not None:
            return  # the LQ repaired the route in time
        self.metrics.record_event("abr_lq_failed")
        # Tell each source; transit packets we were holding are lost, our
        # own packets go back to pending awaiting the full re-discovery.
        packets = self.pending.release(dest, self.sim.now)
        reported: set = set()
        for pkt in packets:
            if pkt.src == self.node.id:
                self.pending.hold(pkt, self.sim.now)
            else:
                self.drop_data(pkt, DropReason.LINK_FAILURE)
        for pkt in packets:
            self.drop_or_report(pkt.src, pkt.dst, reported)

    def drop_or_report(self, src: int, dst: int, reported: set) -> None:
        """Send one RN per broken flow back toward the source."""
        if (src, dst) in reported:
            return
        reported.add((src, dst))
        if src == self.node.id:
            self.start_discovery(dst)
            return
        upstream = self.flow_upstream.get((src, dst))
        if upstream is not None:
            rn = RouteNotification(
                self.sim.now, src, dst, reporter=self.node.id, unicast_to=upstream
            )
            self.broadcast_control(rn)

    def on_rn(self, rn: RouteNotification, from_id: int) -> None:
        """Route notification travelling back to the source."""
        self.table.invalidate(rn.flow_dst)
        if self.node.id == rn.flow_src:
            self.metrics.record_event("abr_rn_reached_source")
            self.start_discovery(rn.flow_dst)
            return
        upstream = self.flow_upstream.get((rn.flow_src, rn.flow_dst))
        if upstream is not None:
            relay = RouteNotification(
                self.sim.now,
                rn.flow_src,
                rn.flow_dst,
                reporter=rn.reporter,
                unicast_to=upstream,
            )
            self.broadcast_control(relay)

    # ------------------------------------------------------------------
    def on_reply_reached_origin(self, rrep: RouteReply) -> None:
        """An LQ (or BQ) reply arrived: flush held data onto the new route."""
        state = self._local_queries.pop(rrep.target, None)
        if state is not None and state[0] is not None:
            state[0].cancel()
        for pkt in self.pending.release(rrep.target, self.sim.now):
            self.dispatch_data(pkt)
