"""BGCA — bandwidth-guarded channel-adaptive routing (paper baseline).

BGCA is the authors' earlier protocol [13].  Like RICA it measures CSI and
selects channel-adaptive routes, but its maintenance is *reactive* ("a
little passive or reactive", Section I): the route is only changed when a
link degrades below the traffic's bandwidth requirement or breaks.

Mechanics implemented here:

* **Discovery** — RREQ flood accumulating CSI hop distance and the
  bottleneck (minimum) link throughput.  The destination prefers routes
  whose bottleneck satisfies the flow's required bandwidth; among those it
  picks the minimum CSI distance; if none qualifies, the best bottleneck.
* **Bandwidth guard** — every time a node forwards flow data it samples
  the outgoing link's throughput; after ``fade_trigger_count`` consecutive
  samples below the flow's requirement it launches a TTL-limited local
  query (LQ) for a partial substitute route while data keeps flowing on
  the degraded link ("only when the channel quality of the link drops
  below the bandwidth requirement of the traffics does it take actions").
* **Break repair** — a broken link also triggers an LQ, with data held
  locally; if the LQ times out, a REER travels to the source which then
  performs a full re-discovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.metrics.collector import DropReason
from repro.net.packet import DataPacket
from repro.routing.base import OnDemandProtocol, ProtocolConfig
from repro.routing.packets import RouteReply, RouteRequest

__all__ = ["BgcaProtocol", "BgcaConfig"]


@dataclass
class BgcaConfig(ProtocolConfig):
    """BGCA's guard and local-query tunables."""

    #: Consecutive below-requirement samples before a repair LQ launches.
    fade_trigger_count: int = 2
    #: Local query reply timeout (s).
    lq_timeout_s: float = 0.3
    #: Extra TTL slack beyond the remaining hop estimate for LQs.
    lq_ttl_slack: int = 2
    #: Minimum spacing between LQs for the same destination (s).
    lq_cooldown_s: float = 0.5
    #: Fallback per-flow requirement when the flow table has no entry (bps).
    default_required_bw_bps: float = 50_000.0
    #: Headroom multiplier on the offered load when deriving the guard
    #: level: a Poisson flow at mean rate R needs a link comfortably above
    #: R for its queue to stay stable, so the guard asks for 1.5x.
    bw_guard_factor: float = 1.5


class BgcaProtocol(OnDemandProtocol):
    """Bandwidth-guarded channel-adaptive routing."""

    name = "bgca"
    uses_csi = True

    def __init__(self, node, network, metrics, config=None) -> None:
        super().__init__(node, network, metrics, config or BgcaConfig())
        if not isinstance(self.config, BgcaConfig):
            merged = BgcaConfig()
            merged.__dict__.update(self.config.__dict__)
            self.config = merged
        #: dest -> consecutive below-requirement samples on the active link
        self._fade_counts: Dict[int, int] = {}
        #: dest -> (timer handle, started_at) for in-flight local queries
        self._local_queries: Dict[int, Tuple[object, float]] = {}
        self._last_lq_at: Dict[int, float] = {}
        #: dest -> required bandwidth learned from RREP relays
        self._required_bw: Dict[int, float] = {}
        #: dest -> memoised guard level (the per-data-packet fast path;
        #: invalidated when an RREP teaches a new requirement).
        self._guard_bw: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Requirement bookkeeping
    # ------------------------------------------------------------------
    def required_bw_for(self, dest: int) -> float:
        """The guard level for traffic toward ``dest`` (bps)."""
        cached = self._guard_bw.get(dest)
        if cached is not None:
            return cached
        own = self.config.flow_rates_bps.get((self.node.id, dest))
        if own is not None:
            value = own * self.config.bw_guard_factor
        else:
            learned = self._required_bw.get(dest)
            # A learned value already includes the factor (set by the source).
            value = learned if learned else self.config.default_required_bw_bps
        self._guard_bw[dest] = value
        return value

    # ------------------------------------------------------------------
    # Discovery policy
    # ------------------------------------------------------------------
    def make_rreq(self, dest: int, bcast_id: int) -> RouteRequest:
        return RouteRequest(
            self.sim.now,
            self.node.id,
            dest,
            bcast_id,
            required_bw_bps=self.required_bw_for(dest),
        )

    def request_metric(
        self, rreq: RouteRequest, hops: int, csi: float, bottleneck_bw: float
    ) -> tuple:
        """Guarded selection: satisfying routes first, then CSI distance.

        A route whose bottleneck throughput satisfies the flow's required
        bandwidth always beats one that does not; unsatisfying routes are
        ranked by bottleneck first so the least-bad route wins when nothing
        qualifies.
        """
        if bottleneck_bw >= rreq.required_bw_bps:
            return (0, csi, 0.0)
        return (1, -bottleneck_bw, csi)

    def on_rrep(self, rrep: RouteReply, from_id: int) -> None:
        if rrep.required_bw_bps > 0:
            self._required_bw[rrep.target] = rrep.required_bw_bps
            self._guard_bw.pop(rrep.target, None)
        super().on_rrep(rrep, from_id)

    # ------------------------------------------------------------------
    # The bandwidth guard (sender-side monitoring)
    # ------------------------------------------------------------------
    def dispatch_data(self, packet: DataPacket) -> None:
        now = self.sim.now
        entry = self.table.get_valid(packet.dst, now, self.config.route_idle_timeout_s)
        if entry is None:
            self.on_no_route(packet)
            return
        rate = self.channel.throughput_bps(self.node.id, entry.next_hop, now)
        required = self.required_bw_for(packet.dst)
        if rate < required:
            count = self._fade_counts.get(packet.dst, 0) + 1
            self._fade_counts[packet.dst] = count
            if count >= self.config.fade_trigger_count:
                self._maybe_start_local_query(packet.dst, reason="deep_fade")
        else:
            self._fade_counts[packet.dst] = 0
        entry.touch(now)
        self.send_data(packet, entry.next_hop)

    # ------------------------------------------------------------------
    # Local queries (partial route repair)
    # ------------------------------------------------------------------
    def _maybe_start_local_query(self, dest: int, reason: str) -> None:
        now = self.sim.now
        if dest in self._local_queries:
            return
        if now - self._last_lq_at.get(dest, -1e18) < self.config.lq_cooldown_s:
            return
        self._last_lq_at[dest] = now
        entry = self.table.entry(dest)
        remaining = int(entry.hops) if entry is not None and entry.hops else 3
        ttl = max(remaining + self.config.lq_ttl_slack, 2)
        lq = RouteRequest(
            now,
            origin=self.node.id,
            target=dest,
            bcast_id=self.next_bcast_id(),
            ttl=ttl,
            required_bw_bps=self.required_bw_for(dest),
            query_kind="local",
        )
        self.flood_cache.check_and_add(lq.flood_key)
        self.broadcast_control(lq)
        self.metrics.record_event(f"bgca_lq_{reason}")
        timer = self.sim.schedule(self.config.lq_timeout_s, self._lq_timeout, dest)
        self._local_queries[dest] = (timer, now)

    def _lq_timeout(self, dest: int) -> None:
        state = self._local_queries.pop(dest, None)
        if state is None:
            return
        now = self.sim.now
        entry = self.table.get_valid(dest, now, self.config.route_idle_timeout_s)
        if entry is not None:
            # The old (possibly degraded) route still stands; keep using it.
            self._flush_pending(dest)
            return
        # The link was broken and no substitute was found: report upstream.
        self.metrics.record_event("bgca_lq_failed")
        packets = self.pending.release(dest, now)
        flows = set()
        for pkt in packets:
            if pkt.src == self.node.id:
                self.pending.hold(pkt, now)
            else:
                self.drop_data(pkt, DropReason.LINK_FAILURE)
                flows.add((pkt.src, pkt.dst))
        for src, fdst in flows:
            self.send_reer(src, fdst)
        if self.pending.pending_count(dest) > 0:
            self.start_discovery(dest)

    def on_reply_reached_origin(self, rrep: RouteReply) -> None:
        state = self._local_queries.pop(rrep.target, None)
        if state is not None and state[0] is not None:
            state[0].cancel()
        self._fade_counts[rrep.target] = 0
        if rrep.query_kind == "local":
            self.metrics.record_event("bgca_lq_repaired")
        self._flush_pending(rrep.target)

    def _flush_pending(self, dest: int) -> None:
        for pkt in self.pending.release(dest, self.sim.now):
            self.dispatch_data(pkt)

    # ------------------------------------------------------------------
    # Link breaks
    # ------------------------------------------------------------------
    def handle_link_failure(
        self, next_hop: int, packet: DataPacket, queued: List[DataPacket]
    ) -> None:
        now = self.sim.now
        self.invalidate_routes_via(next_hop)
        dests = set()
        for pkt in [packet] + queued:
            self.pending.hold(pkt, now)
            dests.add(pkt.dst)
        for dest in dests:
            if dest != self.node.id:
                self._maybe_start_local_query(dest, reason="break")

    def on_route_broken(self, dest: int) -> None:
        """Source-side REER: full re-discovery."""
        self.metrics.record_event("bgca_rediscovery")
        self.start_discovery(dest)
