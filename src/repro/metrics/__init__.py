"""Metrics collection and reporting.

The paper evaluates five quantities (Section III): average end-to-end
delay, successful packet delivery percentage, routing overhead in kbps
(control packets *plus* data-link ACKs), average link throughput of
delivered packets' routes, and average hop count — plus the Figure 6
aggregate-throughput time series in 4-second bins.
:class:`~repro.metrics.collector.MetricsCollector` accumulates raw counts
during a run and :class:`~repro.metrics.report.MetricsReport` exposes the
derived quantities.
"""

from repro.metrics.collector import MetricsCollector, DropReason
from repro.metrics.report import MetricsReport

__all__ = ["MetricsCollector", "MetricsReport", "DropReason"]
