"""Derived metrics — the paper's five evaluation quantities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["MetricsReport"]


@dataclass(frozen=True)
class MetricsReport:
    """Immutable summary of one simulation run.

    Attributes map one-to-one onto the paper's metrics:

    * ``avg_delay_ms`` — Figure 2 (average end-to-end delay, ms);
    * ``delivery_pct`` — Figure 3 (successful delivery percentage);
    * ``overhead_kbps`` — Figure 4 (routing + data-ACK bits / duration);
    * ``avg_link_throughput_kbps`` — Figure 5(a) (total bandwidth of links
      traversed by delivered packets / total hops traversed);
    * ``avg_hops`` — Figure 5(b);
    * ``throughput_series_kbps`` — Figure 6 (delivered bits per 4 s bin).
    """

    duration: float
    generated: int
    delivered: int
    avg_delay_ms: float
    delivery_pct: float
    overhead_kbps: float
    avg_link_throughput_kbps: float
    avg_hops: float
    throughput_series_kbps: List[float] = field(default_factory=list)
    drops: Dict[str, int] = field(default_factory=dict)
    control_bits: Dict[str, int] = field(default_factory=dict)
    control_tx_count: Dict[str, int] = field(default_factory=dict)
    ack_bits: int = 0
    events: Dict[str, int] = field(default_factory=dict)
    #: Per-flow (flow_id -> value) breakdowns for fairness analysis.
    flow_delivery_pct: Dict[int, float] = field(default_factory=dict)
    flow_avg_delay_ms: Dict[int, float] = field(default_factory=dict)
    #: Radio energy accounting (see repro.metrics.energy).
    radio_tx_bits: int = 0
    radio_rx_bits: int = 0
    energy_j: float = 0.0
    energy_mj_per_delivered_kbit: float = 0.0
    #: Resilience: next-hop invalidations, how many were repaired (a fresh
    #: usable route appeared for the same (node, dest) pair), the mean
    #: break-to-repair latency, and packets lost to crashed next hops.
    route_breaks: int = 0
    route_repairs: int = 0
    avg_repair_latency_ms: float = 0.0
    dead_next_hop_losses: int = 0

    @classmethod
    def from_collector(cls, c) -> "MetricsReport":
        """Derive the report from a :class:`~repro.metrics.collector.MetricsCollector`."""
        delivered = c.delivered
        avg_delay_ms = (c.delay_sum_s / delivered * 1000.0) if delivered else 0.0
        delivery_pct = (delivered / c.generated * 100.0) if c.generated else 0.0
        total_overhead_bits = sum(c.control_bits.values()) + c.ack_bits
        measured = getattr(c, "measured_duration", c.duration)
        overhead_kbps = total_overhead_bits / measured / 1000.0
        avg_link_tp = (c.link_rate_sum_bps / c.hops_sum / 1000.0) if c.hops_sum else 0.0
        avg_hops = (c.hops_sum / delivered) if delivered else 0.0
        series = [
            bits / c.throughput_bin_s / 1000.0 for bits in c.delivered_bits_bins
        ]
        flow_delivery = {
            flow: 100.0 * c.flow_delivered.get(flow, 0) / count
            for flow, count in c.flow_generated.items()
            if count
        }
        flow_delay = {
            flow: c.flow_delay_sum_s[flow] / c.flow_delivered[flow] * 1000.0
            for flow in c.flow_delivered
            if c.flow_delivered[flow]
        }
        from repro.metrics.energy import EnergyModel

        energy_model = EnergyModel()
        energy_j = energy_model.total_joules(c.radio_tx_bits, c.radio_rx_bits)
        delivered_kbits = getattr(c, "delivered_bits", 0) / 1000.0
        energy_per_kbit = (energy_j * 1000.0 / delivered_kbits) if delivered_kbits else 0.0
        return cls(
            duration=c.duration,
            generated=c.generated,
            delivered=delivered,
            avg_delay_ms=avg_delay_ms,
            delivery_pct=delivery_pct,
            overhead_kbps=overhead_kbps,
            avg_link_throughput_kbps=avg_link_tp,
            avg_hops=avg_hops,
            throughput_series_kbps=series,
            drops={reason.value: count for reason, count in c.drops.items()},
            control_bits=dict(c.control_bits),
            control_tx_count=dict(c.control_tx_count),
            ack_bits=c.ack_bits,
            events=dict(c.events),
            flow_delivery_pct=flow_delivery,
            flow_avg_delay_ms=flow_delay,
            radio_tx_bits=c.radio_tx_bits,
            radio_rx_bits=c.radio_rx_bits,
            energy_j=energy_j,
            energy_mj_per_delivered_kbit=energy_per_kbit,
            route_breaks=c.route_breaks,
            route_repairs=c.route_repairs,
            avg_repair_latency_ms=(
                c.repair_latency_sum_s / c.route_repairs * 1000.0
                if c.route_repairs
                else 0.0
            ),
            dead_next_hop_losses=c.dead_next_hop_losses,
        )

    @property
    def total_drops(self) -> int:
        """Number of data packets lost for any reason."""
        return sum(self.drops.values())

    def summary(self) -> str:
        """One human-readable block, used by the CLI and examples."""
        lines = [
            f"generated packets     : {self.generated}",
            f"delivered packets     : {self.delivered}",
            f"avg end-to-end delay  : {self.avg_delay_ms:.1f} ms",
            f"delivery percentage   : {self.delivery_pct:.1f} %",
            f"routing overhead      : {self.overhead_kbps:.1f} kbps",
            f"avg link throughput   : {self.avg_link_throughput_kbps:.1f} kbps",
            f"avg hop count         : {self.avg_hops:.2f}",
        ]
        if self.drops:
            detail = ", ".join(f"{k}={v}" for k, v in sorted(self.drops.items()))
            lines.append(f"drops                 : {detail}")
        return "\n".join(lines)
