"""Radio energy accounting.

The paper motivates low routing overhead partly through battery life
(Section III-D cites [11], [14] on communication energy).  This module
prices every transmitted and received bit with a simple linear radio model
(the standard first-order model from Feeney & Nilsson's WaveLAN
measurements: a fixed per-bit cost for transmit and receive).  The metrics
layer counts the bits; the model converts to joules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["EnergyModel"]


@dataclass(frozen=True)
class EnergyModel:
    """Linear per-bit radio energy model.

    Defaults correspond to roughly 1.4 W transmit and 1.0 W receive at a
    2 Mbps radio (WaveLAN-class hardware, the era of the paper):
    700 nJ/bit transmit, 500 nJ/bit receive.
    """

    tx_nj_per_bit: float = 700.0
    rx_nj_per_bit: float = 500.0

    def __post_init__(self) -> None:
        if self.tx_nj_per_bit < 0 or self.rx_nj_per_bit < 0:
            raise ConfigurationError("energy costs must be non-negative")

    def tx_joules(self, bits: float) -> float:
        """Energy to transmit ``bits``."""
        return bits * self.tx_nj_per_bit * 1e-9

    def rx_joules(self, bits: float) -> float:
        """Energy to receive ``bits``."""
        return bits * self.rx_nj_per_bit * 1e-9

    def total_joules(self, tx_bits: float, rx_bits: float) -> float:
        """Combined radio energy."""
        return self.tx_joules(tx_bits) + self.rx_joules(rx_bits)
