"""Run-time metrics accumulation."""

from __future__ import annotations

import enum
from collections import Counter
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.packet import DataPacket

__all__ = ["MetricsCollector", "DropReason"]


class DropReason(enum.Enum):
    """Why a data packet failed to reach its destination."""

    QUEUE_FULL = "queue_full"
    RESIDENCE_TIMEOUT = "residence_timeout"
    NO_ROUTE = "no_route"
    PENDING_OVERFLOW = "pending_overflow"
    PENDING_TIMEOUT = "pending_timeout"
    LINK_FAILURE = "link_failure"
    HOP_LIMIT = "hop_limit"
    MAC_DROP = "mac_drop"
    NODE_DOWN = "node_down"


class MetricsCollector:
    """Accumulates everything the paper's five metrics need.

    One collector serves a whole simulation run; every layer reports into
    it.  Derived quantities live on :class:`~repro.metrics.report.MetricsReport`
    (see :meth:`report`).
    """

    def __init__(
        self, duration: float, throughput_bin_s: float = 4.0, warmup_s: float = 0.0
    ) -> None:
        if duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {duration}")
        if throughput_bin_s <= 0:
            raise ConfigurationError(f"throughput_bin_s must be positive, got {throughput_bin_s}")
        if not (0.0 <= warmup_s < duration):
            raise ConfigurationError(
                f"warmup_s must lie in [0, duration), got {warmup_s} of {duration}"
            )
        self.duration = float(duration)
        self.throughput_bin_s = float(throughput_bin_s)
        #: Packets generated before this time (and control traffic sent
        #: before it) are excluded from all derived metrics — standard
        #: steady-state measurement practice.
        self.warmup_s = float(warmup_s)

        # Data plane.
        self.generated = 0
        self.delivered = 0
        self.delivered_bits = 0
        self.duplicates = 0
        self.delay_sum_s = 0.0
        self.hops_sum = 0
        self.link_rate_sum_bps = 0.0
        self.drops: Counter = Counter()
        self._delivered_uids: set = set()

        # Per-flow breakdown (keyed by DataPacket.flow_id; -1 = unassigned).
        self.flow_generated: Counter = Counter()
        self.flow_delivered: Counter = Counter()
        self.flow_delay_sum_s: Dict[int, float] = {}

        # Control plane / overhead.
        self.control_bits: Counter = Counter()  # by packet kind
        self.control_tx_count: Counter = Counter()
        self.ack_bits = 0

        # Radio activity (energy accounting, see repro.metrics.energy).
        self.radio_tx_bits = 0
        self.radio_rx_bits = 0
        #: Opt-in per-node radio ledger (fault injection's energy monitor).
        #: None until enable_node_radio() — the aggregate path above stays
        #: the only work on every default run.  Never warmup-gated: battery
        #: drain is physical, not a measurement-window artefact.
        self.node_radio_tx: Optional[Counter] = None
        self.node_radio_rx: Optional[Counter] = None

        # Resilience bookkeeping (route-repair latency under faults).
        self.route_breaks = 0
        self.route_repairs = 0
        self.repair_latency_sum_s = 0.0
        self.dead_next_hop_losses = 0
        self._pending_repairs: Dict[tuple, float] = {}

        # Figure 6 time series.
        n_bins = int(self.duration / self.throughput_bin_s + 0.5)
        self.delivered_bits_bins: List[int] = [0] * max(n_bins, 1)

        # Diagnostics (not paper metrics, used by tests and analysis).
        self.events: Counter = Counter()

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def record_generated(self, pkt: "DataPacket") -> None:
        """A source created a new application packet."""
        if pkt.created_at < self.warmup_s:
            return
        self.generated += 1
        self.flow_generated[pkt.flow_id] += 1

    def record_delivered(self, pkt: "DataPacket", now: float) -> None:
        """A packet reached its destination terminal."""
        if pkt.created_at < self.warmup_s:
            return
        if pkt.uid in self._delivered_uids:
            self.duplicates += 1
            return
        self._delivered_uids.add(pkt.uid)
        self.delivered += 1
        self.delivered_bits += pkt.size_bits
        delay = now - pkt.created_at
        self.delay_sum_s += delay
        self.hops_sum += pkt.hops_traversed
        self.link_rate_sum_bps += sum(pkt.link_rates_bps)
        self.flow_delivered[pkt.flow_id] += 1
        self.flow_delay_sum_s[pkt.flow_id] = (
            self.flow_delay_sum_s.get(pkt.flow_id, 0.0) + delay
        )
        bin_idx = int(now / self.throughput_bin_s)
        if 0 <= bin_idx < len(self.delivered_bits_bins):
            self.delivered_bits_bins[bin_idx] += pkt.size_bits

    def record_dropped(self, pkt: "DataPacket", reason: DropReason) -> None:
        """A data packet was discarded before delivery."""
        if pkt.created_at < self.warmup_s:
            return
        self.drops[reason] += 1

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def record_control_tx(self, kind: str, bits: int, now: Optional[float] = None) -> None:
        """One transmission of a routing packet on the common channel.

        ``now`` enables warmup gating; when omitted the transmission is
        always counted (backwards compatible).
        """
        if now is not None and now < self.warmup_s:
            return
        self.control_bits[kind] += bits
        self.control_tx_count[kind] += 1

    def record_ack(self, bits: int, now: Optional[float] = None) -> None:
        """One data-link acknowledgment on a data channel."""
        if now is not None and now < self.warmup_s:
            return
        self.ack_bits += bits

    def record_radio(
        self, tx_bits: int = 0, rx_bits: int = 0, now: Optional[float] = None
    ) -> None:
        """Raw radio activity for energy accounting (any packet type)."""
        if now is not None and now < self.warmup_s:
            return
        self.radio_tx_bits += tx_bits
        self.radio_rx_bits += rx_bits

    def enable_node_radio(self) -> None:
        """Switch on the per-node radio ledger (idempotent)."""
        if self.node_radio_tx is None:
            self.node_radio_tx = Counter()
            self.node_radio_rx = Counter()

    def record_node_radio(self, node: int, tx_bits: int = 0, rx_bits: int = 0) -> None:
        """Per-node radio activity; no-op unless the ledger is enabled."""
        if self.node_radio_tx is None:
            return
        if tx_bits:
            self.node_radio_tx[node] += tx_bits
        if rx_bits:
            self.node_radio_rx[node] += rx_bits

    # ------------------------------------------------------------------
    # Resilience (route breaks and repairs)
    # ------------------------------------------------------------------
    def record_route_broken(self, node: int, dest: int, now: float) -> None:
        """``node`` lost its route toward ``dest`` (next-hop invalidated).

        First mark wins: re-breaking an already-pending (node, dest) pair
        keeps the original break time, so repair latency spans the whole
        outage rather than the latest symptom.
        """
        if now < self.warmup_s:
            return
        self.route_breaks += 1
        self._pending_repairs.setdefault((node, dest), now)

    def record_route_repaired(self, node: int, dest: int, now: float) -> None:
        """``node`` regained a usable route toward ``dest``."""
        broken_at = self._pending_repairs.pop((node, dest), None)
        if broken_at is None:
            return
        self.route_repairs += 1
        self.repair_latency_sum_s += now - broken_at

    def record_dead_next_hop(self, count: int = 1) -> None:
        """Packets lost because their next hop was a crashed node."""
        self.dead_next_hop_losses += count

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def record_event(self, name: str, count: int = 1) -> None:
        """Count an arbitrary named event (collisions, loops, LQs, ...)."""
        self.events[name] += count

    # ------------------------------------------------------------------
    @property
    def measured_duration(self) -> float:
        """Seconds of measured (post-warmup) simulation time."""
        return self.duration - self.warmup_s

    def report(self) -> "MetricsReport":
        """Freeze the counters into a derived-metrics report."""
        from repro.metrics.report import MetricsReport

        return MetricsReport.from_collector(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MetricsCollector(gen={self.generated}, del={self.delivered}, "
            f"drops={sum(self.drops.values())})"
        )
