"""The vectorized CSMA attempt scheduler: backoff bank + contention rounds.

Two pieces turn the MAC's per-attempt scalar hot loop (~70% of all fired
events in a flood storm) into batched array work, the same trick
:class:`~repro.channel.bank.FadingBank` applied to fading state:

:class:`BackoffBank`
    Counter-based per-node uniform draws for defer and backoff intervals.
    The k-th draw of node ``i`` is the pure function
    ``splitmix64(key_i + k * gamma)`` with ``key_i`` derived from the
    master seed (see :mod:`repro.sim.rng`), so results are reproducible
    per seed and *independent of batch composition*: whether a node
    redraws alone or inside a 40-contender round, it consumes the same
    value.  A whole round's redraws come back as one numpy array.

:class:`ContentionScheduler`
    Groups pending MAC attempts by target instant — optionally snapped
    onto a shared slot grid (``MacConfig.slot_align_s``; 0 keeps the
    paper's continuous time, in which rounds are mostly singletons) — and
    resolves each group in one engine event: one batched carrier-sense
    query (:meth:`~repro.mac.medium.CommonChannelMedium.busy_many`), one
    array of backoff redraws, immediate transmission for the idle nodes.
    Slot alignment is what makes the batch non-trivial *and* what lets
    transmissions started in the same round share one topology snapshot
    downstream (their receptions resolve at the same ``tx.start``).

    Within a round, contenders resolve *sequentially in arm order*, each
    sensing the transmissions started earlier in the same round — the
    exact semantics of the scalar engine, where same-instant attempts
    fire in ``(time, seq)`` order and a transmission registered at ``t``
    is already sensed by a later attempt at ``t`` (``active_at`` uses
    ``start <= t``).  Without this, a saturated cell degenerates: every
    aligned contender would start simultaneously, mutually collide, and
    delivery would collapse — slotting must quantize *when* contention
    happens, not change *how* it resolves.

The scheduler reports each resolved attempt to the engine's
:meth:`~repro.sim.engine.Simulator.record_batch` hook under the scalar
path's event kind, so the event mix and logical-throughput numbers stay
comparable between backends.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from repro.mac.medium import CommonChannelMedium
from repro.sim.engine import Simulator
from repro.sim.rng import SPLITMIX_GAMMA, derive_key, splitmix64, splitmix64_array

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.csma import CsmaMac

__all__ = ["BackoffBank", "ContentionScheduler"]

_M64 = (1 << 64) - 1
#: 2**-53 — maps the top 53 bits of a 64-bit word onto [0, 1).
_PO53 = 2.0**-53
_U_GAMMA = np.uint64(SPLITMIX_GAMMA)
#: Logical event kind credited per resolved attempt (matches the scalar
#: backend's callback qualname so event mixes line up across backends).
_ATTEMPT_KIND = "CsmaMac._attempt"


class BackoffBank:
    """Counter-based per-node uniform draws for MAC defer/backoff.

    One row per node (key + draw counter, contiguous uint64 arrays); rows
    are allocated on first use.  Node ids passed to :meth:`uniform_array`
    must be distinct within one call — guaranteed by the MAC, where a node
    never has two attempts in flight.
    """

    def __init__(self, seed: int, capacity: int = 64) -> None:
        self._seed = int(seed) & _M64
        cap = max(int(capacity), 16)
        self._key = np.zeros(cap, dtype=np.uint64)
        self._ctr = np.zeros(cap, dtype=np.uint64)
        #: Python-int mirror of ``_key`` (write-once): the scalar fast
        #: path reads it without a numpy scalar conversion.
        self._key_int: List[int] = []
        self._slot_of: Dict[int, int] = {}
        self._n = 0
        #: Diagnostics: uniforms consumed across all nodes.
        self.draws = 0

    @property
    def node_count(self) -> int:
        """Nodes with allocated draw state."""
        return self._n

    def _slot(self, node: int) -> int:
        slot = self._slot_of.get(node)
        if slot is None:
            if self._n == self._key.shape[0]:
                cap = 2 * self._n
                for name in ("_key", "_ctr"):
                    old = getattr(self, name)
                    new = np.zeros(cap, dtype=np.uint64)
                    new[: self._n] = old
                    setattr(self, name, new)
            slot = self._n
            self._n += 1
            key = derive_key(self._seed, node)
            self._key[slot] = key
            self._key_int.append(key)
            self._slot_of[node] = slot
        return slot

    def uniform(self, node: int) -> float:
        """Next uniform in [0, 1) for ``node`` (scalar fast path)."""
        slot = self._slot(node)
        ctr = self._ctr
        k = ctr.item(slot)
        z = splitmix64((self._key_int[slot] + k * SPLITMIX_GAMMA) & _M64)
        ctr[slot] = k + 1
        self.draws += 1
        return (z >> 11) * _PO53

    def uniform_array(self, nodes: List[int]) -> np.ndarray:
        """Next uniform in [0, 1) for each (distinct) node, as one array.

        Consumes exactly one counter tick per node — identical values to
        ``[self.uniform(n) for n in nodes]``, at array cost.
        """
        slots = np.fromiter(
            (self._slot(n) for n in nodes), dtype=np.intp, count=len(nodes)
        )
        z = splitmix64_array(self._key[slots] + self._ctr[slots] * _U_GAMMA)
        self._ctr[slots] += np.uint64(1)
        self.draws += len(nodes)
        return (z >> np.uint64(11)) * _PO53

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BackoffBank(nodes={self._n}, draws={self.draws})"


class ContentionScheduler:
    """Slot-aligned batching of CSMA attempts across all nodes.

    The batched backend's replacement for per-node ``sim.schedule(delay,
    mac._attempt, n)`` calls: attempts land in per-instant buckets, one
    engine event resolves each bucket as a whole contention round.  With
    ``slot_align_s == 0`` instants are exact (rounds coalesce only true
    ties); with a positive slot every attempt is deferred to the next grid
    instant, bounding added latency by one slot while making rounds — and
    the topology snapshots behind them — shared.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: CommonChannelMedium,
        bank: BackoffBank,
        slot_align_s: float = 0.0,
    ) -> None:
        self._sim = sim
        self._medium = medium
        self.bank = bank
        self._slot = float(slot_align_s)
        self._buckets: Dict[float, List[Tuple["CsmaMac", int]]] = {}
        #: Diagnostics: rounds fired / attempts resolved inside them.
        self.rounds = 0
        self.attempts = 0

    def align(self, time: float) -> float:
        """``time`` rounded up onto the slot grid (identity when slot 0)."""
        slot = self._slot
        if slot <= 0.0:
            return time
        # Epsilon forgives float noise: an instant already on the grid
        # stays put instead of slipping a whole slot late.
        return math.ceil(time / slot - 1e-9) * slot

    def schedule_defer(self, mac: "CsmaMac") -> None:
        """Start a send cycle: initial defer drawn from the bank."""
        defer = self.bank.uniform(mac.node_id) * mac.config.initial_defer_max_s
        self.schedule_attempt(mac, defer, 1)

    def schedule_attempt(self, mac: "CsmaMac", delay: float, attempt: int) -> None:
        """Enrol ``mac`` in the contention round ``delay`` seconds out."""
        now = self._sim.now
        when = self.align(now + delay)
        if when < now:  # grid rounding must never land in the past
            when = now
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [(mac, attempt)]
            self._sim.schedule_at(when, self._run_round, when)
        else:
            bucket.append((mac, attempt))

    def _run_round(self, when: float) -> None:
        # Pop before resolving: side effects below (exhaustion re-pumps,
        # zero-defer sends) may open a fresh bucket at this same instant,
        # which then fires as its own round later in the engine's batch.
        entries = self._buckets.pop(when)
        self.rounds += 1
        self.attempts += len(entries)
        self._sim.record_batch(_ATTEMPT_KIND, len(entries))
        self._sim.absorb_current_event()  # the round itself is plumbing
        # Pass 1 (in arm order): drop phantom attempts whose queue drained
        # or went entirely stale — mirrors the scalar path's head peek.
        live: List[Tuple["CsmaMac", int, object]] = []
        for mac, attempt in entries:
            packet = mac._peek_head(when)
            if packet is not None:
                live.append((mac, attempt, packet))
        if not live:
            return
        # One batched carrier-sense query for the whole round — the
        # pre-round channel state shared by every contender.
        medium = self._medium
        node_ids = [mac.node_id for mac, _, _ in live]
        busy = medium.busy_many(node_ids, when)
        # Pass 2 (in arm order): sequential resolution.  A contender idle
        # against the pre-round state must still sense transmissions
        # started *earlier in this round* — same-instant attempts in the
        # scalar engine fire in seq order and hear each other exactly this
        # way.  The probes vectorize as one lazy contender-pairwise
        # distance matrix (built only when a round actually has both a
        # winner and later contenders); tiny rounds use per-pair checks.
        topology = medium.topology
        cs2 = medium.cs_range_m * medium.cs_range_m
        dist2 = None
        round_tx: List[int] = []  # indices into ``live`` of in-round winners
        redraw: List[Tuple["CsmaMac", int]] = []
        lows: List[float] = []
        spans: List[float] = []
        for j, ((mac, attempt, packet), is_busy) in enumerate(zip(live, busy)):
            if not is_busy and round_tx:
                if topology is not None and len(live) > 4:
                    if dist2 is None:
                        xy = np.asarray(topology.positions_of(node_ids, when))
                        d = xy[:, None, :] - xy[None, :, :]
                        dist2 = (d * d).sum(axis=-1)
                    is_busy = bool((dist2[j, round_tx] <= cs2).any())
                else:
                    node = mac.node_id
                    is_busy = any(
                        medium.senses(node_ids[i], node, when) for i in round_tx
                    )
            if not is_busy:
                mac._transmit(packet, when)
                round_tx.append(j)
                continue
            window = mac._backoff_window(attempt, when)
            if window is None:
                continue  # attempts exhausted; the mac dropped and re-pumped
            low, high = window
            redraw.append((mac, attempt))
            lows.append(low)
            spans.append(high - low)
        if not redraw:
            return
        if len(redraw) == 1:  # numpy round-trip loses to one scalar draw
            mac, attempt = redraw[0]
            delay = lows[0] + self.bank.uniform(mac.node_id) * spans[0]
            self.schedule_attempt(mac, delay, attempt + 1)
            return
        draws = self.bank.uniform_array([mac.node_id for mac, _ in redraw])
        delays = np.asarray(lows) + draws * np.asarray(spans)
        for (mac, attempt), delay in zip(redraw, delays.tolist()):
            self.schedule_attempt(mac, delay, attempt + 1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ContentionScheduler(slot={self._slot}, rounds={self.rounds}, "
            f"attempts={self.attempts})"
        )
