"""Medium access control.

The paper assumes a multi-code CDMA MAC [4]:

* **Data channels**: each directed link uses its own PN code, so data
  transmissions are contention-free point-to-point channels whose rate is
  set by the CSI class (see :mod:`repro.net.datalink` for the transmitter).
* **Common channel**: all routing packets share one robust 250 kbps
  broadcast channel with *unslotted CSMA/CA*.  This channel experiences
  carrier sensing, random backoff, spatial reuse and hidden-terminal
  collisions — the mechanism that saturates under link-state flooding in
  the paper's results.

:class:`~repro.mac.medium.CommonChannelMedium` is the global registry of
in-flight common-channel transmissions; :class:`~repro.mac.csma.CsmaMac`
is the per-node transmitter.
"""

from repro.mac.medium import CommonChannelMedium, Transmission
from repro.mac.csma import MAC_BACKENDS, CsmaMac, MacConfig, ReceptionBatch
from repro.mac.bank import BackoffBank, ContentionScheduler

__all__ = [
    "CommonChannelMedium",
    "Transmission",
    "CsmaMac",
    "MacConfig",
    "ReceptionBatch",
    "MAC_BACKENDS",
    "BackoffBank",
    "ContentionScheduler",
]
