"""The shared common channel: transmission registry and collision logic.

The medium tracks every in-flight (and recently finished) common-channel
transmission.  Two predicates implement the physics:

* :meth:`CommonChannelMedium.busy_for` — carrier sensing: the channel is
  busy at a node if any current transmitter is within *carrier-sense*
  range of it.  Spatial reuse falls out naturally: far-apart transmitters
  don't block each other.
* :meth:`CommonChannelMedium.collided` — reception: a transmission is
  corrupted at a receiver if any *other* transmission overlaps it in time
  while its sender is within *interference* range of that receiver, or if
  the receiver itself was transmitting (half-duplex).  This includes the
  classic hidden-terminal case.

Both ranges default to twice the decode range (``cs_range_factor`` on
:class:`~repro.mac.csma.MacConfig`): energy is sensed, and receptions are
corrupted, well beyond the distance at which packets can be decoded.  This
is what makes the 250 kbps common channel a genuinely scarce shared
resource — the mechanism behind the link-state protocol's collapse in the
paper ("the common channel is very congested for the link state
protocol").

Hot-path notes: the registry is a :class:`collections.deque` pruned from
the left (transmissions are registered in start order, so expired entries
cluster at the head) against the longest airtime seen so far — the exact
retention needed for any overlap query the MAC can still issue.  When a
topology index is attached, carrier sensing batches all concurrent
senders into one candidate query, and :meth:`lost_receivers` resolves a
whole delivery set against all interferers as a single senders-by-
receivers distance matrix.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Sequence, Set

import numpy as np

from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.channel.model import ChannelModel
    from repro.topology import TopologyIndex

__all__ = ["Transmission", "CommonChannelMedium"]


class Transmission:
    """One common-channel transmission interval."""

    __slots__ = ("sender", "start", "end", "packet")

    def __init__(self, sender: int, start: float, end: float, packet: Packet) -> None:
        self.sender = sender
        self.start = start
        self.end = end
        self.packet = packet

    def overlaps(self, other: "Transmission") -> bool:
        """True if the two transmissions overlap in time."""
        return self.start < other.end and other.start < self.end

    def active_at(self, t: float) -> bool:
        """True if the transmission occupies the channel at time ``t``."""
        return self.start <= t < self.end

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Transmission(sender={self.sender}, [{self.start:.6f}, {self.end:.6f}])"


class CommonChannelMedium:
    """Registry of common-channel transmissions with collision queries."""

    #: Minimum retention for finished transmissions; must exceed the
    #: longest possible control-packet airtime (a 100-byte packet at
    #: 250 kbps is 3.2 ms, so 20 ms is a comfortable margin).  The
    #: effective horizon stretches to the longest airtime registered so
    #: far when that is larger, so oversized packets never lose their
    #: overlap history.
    PRUNE_HORIZON_S = 0.02

    def __init__(
        self,
        channel: "ChannelModel",
        cs_range_m: float = 0.0,
        topology: Optional["TopologyIndex"] = None,
    ) -> None:
        self._channel = channel
        #: Carrier-sense / interference range in metres; defaults to twice
        #: the decode range when not supplied.
        self.cs_range_m = cs_range_m if cs_range_m > 0 else 2.0 * channel.tx_range
        # Range probes go through the topology index (cached positions +
        # batched candidate queries) when one is attached; the channel's
        # pairwise path otherwise.
        self._topology = topology
        self._within = topology.within if topology is not None else channel.within
        self._position = topology.position if topology is not None else None
        self._transmissions: Deque[Transmission] = deque()
        self._max_airtime = 0.0
        self.total_transmissions = 0
        #: Receptions lost to a collision, one count per (transmission,
        #: receiver) pair that failed.  In a dense neighbourhood a single
        #: corrupted broadcast bumps this once per affected receiver.
        self.lost_receptions = 0
        #: Transmissions that lost at least one receiver — the
        #: per-transmission view of the same outcomes.  ``lost_receptions /
        #: collided_transmissions`` is the mean blast radius of a collision.
        self.collided_transmissions = 0

    @property
    def total_collisions(self) -> int:
        """Backwards-compatible alias for :attr:`lost_receptions`.

        The old counter conflated per-receiver losses with per-transmission
        collisions; it always counted per lost receiver, which is what this
        alias preserves.
        """
        return self.lost_receptions

    def record_losses(self, n_lost: int) -> None:
        """Account one completed transmission that lost ``n_lost`` receivers."""
        if n_lost > 0:
            self.lost_receptions += n_lost
            self.collided_transmissions += 1

    def begin(self, sender: int, start: float, end: float, packet: Packet) -> Transmission:
        """Register a new transmission and return its record."""
        tx = Transmission(sender, start, end, packet)
        airtime = end - start
        if airtime > self._max_airtime:
            self._max_airtime = airtime
        self._prune(start)
        self._transmissions.append(tx)
        self.total_transmissions += 1
        return tx

    def busy_for(self, node: int, t: float) -> bool:
        """Carrier sense at ``node``: any transmitter within sense range?"""
        senders: List[int] = []
        for tx in self._transmissions:
            if not (tx.start <= t < tx.end):
                continue
            if tx.sender == node:
                return True  # we are transmitting ourselves
            senders.append(tx.sender)
        if not senders:
            return False
        if self._topology is not None:
            # One batched candidate query over every concurrent sender.
            return self._topology.any_within(node, senders, t, self.cs_range_m)
        cs = self.cs_range_m
        return any(self._within(sender, node, t, cs) for sender in senders)

    @property
    def topology(self) -> Optional["TopologyIndex"]:
        """The attached topology index, if any (batched-query consumers)."""
        return self._topology

    def senses(self, a: int, b: int, t: float) -> bool:
        """True if ``b`` can sense energy from a transmitter at ``a``."""
        return self._within(a, b, t, self.cs_range_m)

    def busy_many(self, nodes: Sequence[int], t: float) -> List[bool]:
        """Batched :meth:`busy_for` over a whole contention round.

        One pass over the registry gathers every concurrent sender, then a
        single senders-by-nodes distance check answers carrier sense for
        all ``nodes`` at once — the query the batched MAC backend issues
        when a slot-aligned round of attempts fires at one instant.
        Self-transmission (half-duplex) is honoured exactly as in
        :meth:`busy_for`.
        """
        senders: List[int] = []
        for tx in self._transmissions:
            if tx.start <= t < tx.end:
                senders.append(tx.sender)
        if not senders:
            return [False] * len(nodes)
        sender_set = set(senders)
        topology = self._topology
        if topology is None or len(senders) * len(nodes) <= 16:
            within = self._within
            cs = self.cs_range_m
            return [
                node in sender_set or any(within(s, node, t, cs) for s in senders)
                for node in nodes
            ]
        s_xy = np.asarray(topology.positions_of(senders, t))
        n_xy = np.asarray(topology.positions_of(nodes, t))
        dx = s_xy[:, :1] - n_xy[:, 0]
        dy = s_xy[:, 1:] - n_xy[:, 1]
        dx *= dx
        dy *= dy
        dx += dy
        busy = (dx <= self.cs_range_m * self.cs_range_m).any(axis=0)
        return [
            flag or node in sender_set for node, flag in zip(nodes, busy.tolist())
        ]

    def collided(self, tx: Transmission, receiver: int) -> bool:
        """Did ``receiver`` lose ``tx`` to an overlapping transmission?"""
        cs = self.cs_range_m
        for other in self._transmissions:
            if other is tx or not tx.overlaps(other):
                continue
            if other.sender == receiver:
                return True  # half-duplex: receiver was transmitting
            overlap_t = max(tx.start, other.start)
            if self._within(other.sender, receiver, overlap_t, cs):
                return True
        return False

    def lost_receivers(self, tx: Transmission, receivers: Sequence[int]) -> Set[int]:
        """Receivers in ``receivers`` that lose ``tx`` to a collision.

        The batched form of :meth:`collided` for a whole delivery set.
        With a topology attached, every interferer's sender (at its
        overlap instant) is checked against every receiver (at
        ``tx.start``, the instant the delivery set was resolved) —
        regardless of set size, so outcomes never depend on how many
        pairs are involved; large sets resolve as one
        senders-by-receivers distance matrix.  Over a single airtime the
        sub-metre position drift between those time conventions is
        physically negligible.  Without a topology the per-pair
        :meth:`collided` convention (both ends at the overlap instant)
        applies exactly.
        """
        lost: Set[int] = set()
        if not receivers:
            return lost
        overlapping = [o for o in self._transmissions if o is not tx and tx.overlaps(o)]
        if not overlapping:
            return lost
        cs = self.cs_range_m
        receiver_set = set(receivers)
        for other in overlapping:
            if other.sender in receiver_set:
                lost.add(other.sender)  # half-duplex: it was transmitting
        topology = self._topology
        if topology is None:
            within = self._within
            for other in overlapping:
                overlap_t = max(tx.start, other.start)
                for r in receivers:
                    if r not in lost and within(other.sender, r, overlap_t, cs):
                        lost.add(r)
            return lost
        position = self._position
        if len(overlapping) * len(receivers) <= 16:
            cs2 = cs * cs  # same squared-distance form as the matrix below
            for other in overlapping:
                s_pos = position(other.sender, max(tx.start, other.start))
                for r in receivers:
                    if r in lost:
                        continue
                    r_pos = position(r, tx.start)
                    dx = s_pos.x - r_pos.x
                    dy = s_pos.y - r_pos.y
                    if dx * dx + dy * dy <= cs2:
                        lost.add(r)
            return lost
        s_xy = np.array(
            [position(o.sender, max(tx.start, o.start)) for o in overlapping]
        )
        r_xy = np.asarray(topology.positions_of(receivers, tx.start))
        dx = s_xy[:, :1] - r_xy[:, 0]
        dy = s_xy[:, 1:] - r_xy[:, 1]
        dx *= dx
        dy *= dy
        dx += dy
        hit = (dx <= cs * cs).any(axis=0)
        for r, flag in zip(receivers, hit.tolist()):
            if flag:
                lost.add(r)
        return lost

    def active_count(self, t: float) -> int:
        """Number of transmissions occupying the channel at ``t``."""
        return sum(1 for tx in self._transmissions if tx.active_at(t))

    def _prune(self, now: float) -> None:
        """Drop records that can no longer overlap any unresolved
        transmission: anything ending more than the longest airtime (with
        the class floor) before ``now``.  Registration is in start order,
        so stale entries cluster at the head; a straggler behind a live
        head survives a little longer, which is harmless — the collision
        predicates test time windows explicitly."""
        horizon = now - max(self.PRUNE_HORIZON_S, self._max_airtime)
        txs = self._transmissions
        while txs and txs[0].end < horizon:
            txs.popleft()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CommonChannelMedium(tracked={len(self._transmissions)}, "
            f"total={self.total_transmissions})"
        )
