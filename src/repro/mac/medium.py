"""The shared common channel: transmission registry and collision logic.

The medium tracks every in-flight (and recently finished) common-channel
transmission.  Two predicates implement the physics:

* :meth:`CommonChannelMedium.busy_for` — carrier sensing: the channel is
  busy at a node if any current transmitter is within *carrier-sense*
  range of it.  Spatial reuse falls out naturally: far-apart transmitters
  don't block each other.
* :meth:`CommonChannelMedium.collided` — reception: a transmission is
  corrupted at a receiver if any *other* transmission overlaps it in time
  while its sender is within *interference* range of that receiver, or if
  the receiver itself was transmitting (half-duplex).  This includes the
  classic hidden-terminal case.

Both ranges default to twice the decode range (``cs_range_factor`` on
:class:`~repro.mac.csma.MacConfig`): energy is sensed, and receptions are
corrupted, well beyond the distance at which packets can be decoded.  This
is what makes the 250 kbps common channel a genuinely scarce shared
resource — the mechanism behind the link-state protocol's collapse in the
paper ("the common channel is very congested for the link state
protocol").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.channel.model import ChannelModel
    from repro.topology import TopologyIndex

__all__ = ["Transmission", "CommonChannelMedium"]


class Transmission:
    """One common-channel transmission interval."""

    __slots__ = ("sender", "start", "end", "packet")

    def __init__(self, sender: int, start: float, end: float, packet: Packet) -> None:
        self.sender = sender
        self.start = start
        self.end = end
        self.packet = packet

    def overlaps(self, other: "Transmission") -> bool:
        """True if the two transmissions overlap in time."""
        return self.start < other.end and other.start < self.end

    def active_at(self, t: float) -> bool:
        """True if the transmission occupies the channel at time ``t``."""
        return self.start <= t < self.end

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Transmission(sender={self.sender}, [{self.start:.6f}, {self.end:.6f}])"


class CommonChannelMedium:
    """Registry of common-channel transmissions with collision queries."""

    #: Transmissions older than this are pruned; must exceed the longest
    #: possible control-packet airtime (a 100-byte packet at 250 kbps is
    #: 3.2 ms, so 20 ms is a comfortable margin).
    PRUNE_HORIZON_S = 0.02

    def __init__(
        self,
        channel: "ChannelModel",
        cs_range_m: float = 0.0,
        topology: Optional["TopologyIndex"] = None,
    ) -> None:
        self._channel = channel
        #: Carrier-sense / interference range in metres; defaults to twice
        #: the decode range when not supplied.
        self.cs_range_m = cs_range_m if cs_range_m > 0 else 2.0 * channel.tx_range
        # Range probes go through the topology index (cached positions)
        # when one is attached; the channel's pairwise path otherwise.
        self._within = topology.within if topology is not None else channel.within
        self._transmissions: List[Transmission] = []
        self.total_transmissions = 0
        self.total_collisions = 0

    def begin(self, sender: int, start: float, end: float, packet: Packet) -> Transmission:
        """Register a new transmission and return its record."""
        tx = Transmission(sender, start, end, packet)
        self._prune(start)
        self._transmissions.append(tx)
        self.total_transmissions += 1
        return tx

    def busy_for(self, node: int, t: float) -> bool:
        """Carrier sense at ``node``: any transmitter within sense range?"""
        cs = self.cs_range_m
        for tx in self._transmissions:
            if not (tx.start <= t < tx.end):
                continue
            if tx.sender == node:
                return True  # we are transmitting ourselves
            if self._within(tx.sender, node, t, cs):
                return True
        return False

    def collided(self, tx: Transmission, receiver: int) -> bool:
        """Did ``receiver`` lose ``tx`` to an overlapping transmission?"""
        cs = self.cs_range_m
        for other in self._transmissions:
            if other is tx or not tx.overlaps(other):
                continue
            if other.sender == receiver:
                return True  # half-duplex: receiver was transmitting
            overlap_t = max(tx.start, other.start)
            if self._within(other.sender, receiver, overlap_t, cs):
                return True
        return False

    def active_count(self, t: float) -> int:
        """Number of transmissions occupying the channel at ``t``."""
        return sum(1 for tx in self._transmissions if tx.active_at(t))

    def _prune(self, now: float) -> None:
        horizon = now - self.PRUNE_HORIZON_S
        if self._transmissions and self._transmissions[0].end < horizon:
            self._transmissions = [tx for tx in self._transmissions if tx.end >= horizon]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CommonChannelMedium(tracked={len(self._transmissions)}, "
            f"total={self.total_transmissions})"
        )
