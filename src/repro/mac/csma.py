"""Per-node unslotted CSMA/CA transmitter for the common channel.

Transmission procedure (per queued packet):

1. wait a short random *initial defer* (decorrelates the simultaneous
   rebroadcasts a flood produces — the unslotted equivalent of DIFS plus a
   first backoff draw);
2. carrier-sense; if busy, back off for a random interval drawn from a
   doubling contention window and go to 2 (up to ``max_attempts`` tries,
   then the packet is dropped);
3. transmit for ``size_bits / bit_rate`` seconds.  Delivery and collisions
   are resolved at the end of the transmission by the medium.

Every transmission — even one that collides at every receiver — is counted
into routing overhead, matching the paper's "each time the common channel
is used to transmit a routing packet, this is counted as one transmission".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.mac.medium import CommonChannelMedium, Transmission
from repro.metrics.collector import MetricsCollector
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.channel.model import ChannelModel
    from repro.mac.bank import ContentionScheduler

__all__ = ["CsmaMac", "MacConfig", "ReceptionBatch", "MAC_BACKENDS"]

#: Recognised MAC attempt-scheduler backends.  "scalar" is the paper-
#: faithful per-event state machine (the differential reference, and the
#: default); "batched" routes attempts through the shared
#: :class:`~repro.mac.bank.ContentionScheduler`.
MAC_BACKENDS = ("scalar", "batched")


class ReceptionBatch:
    """One completed broadcast, resolved for its whole delivery set.

    The unit of work the MAC hands the network: the transmitted packet,
    every receiver that was in decode range at transmission start, and the
    subset that lost the packet to a collision (already resolved by the
    medium's batched interference query).  Downstream dispatch iterates
    the survivors once instead of re-entering the network per receiver.
    """

    __slots__ = ("packet", "sender", "receivers", "lost", "completed_at")

    def __init__(
        self,
        packet: Packet,
        sender: int,
        receivers: List[int],
        lost: Set[int],
        completed_at: float,
    ) -> None:
        self.packet = packet
        self.sender = sender
        self.receivers = receivers
        self.lost = lost
        self.completed_at = completed_at

    @property
    def delivered_count(self) -> int:
        """Receivers that actually decode the packet."""
        return len(self.receivers) - len(self.lost)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReceptionBatch(sender={self.sender}, kind={self.packet.kind!r}, "
            f"receivers={len(self.receivers)}, lost={len(self.lost)})"
        )


# Batch dispatch: the network delivers one ReceptionBatch to all surviving
# receivers through its precomputed handler table.
DispatchFn = Callable[[ReceptionBatch], None]
# Neighbour query: (node_id, time) -> list of node ids in range.  The
# network wires this to its grid-backed TopologyIndex, so the delivery
# set at transmission start is a cell-neighbourhood scan, not an O(n)
# sweep of every mobility model.
NeighborsFn = Callable[[int, float], list]


@dataclass(frozen=True)
class MacConfig:
    """Common-channel MAC tunables.

    Defaults follow the paper where specified (250 kbps common channel) and
    use conventional CSMA/CA constants elsewhere.
    """

    bit_rate_bps: float = 250_000.0
    queue_capacity: int = 30
    initial_defer_max_s: float = 0.0012
    backoff_min_s: float = 0.002
    backoff_max_s: float = 0.032
    max_attempts: int = 7
    #: Carrier-sense / interference range as a multiple of the decode
    #: range.  2.0 is the conventional choice; it makes the common channel
    #: a scarce resource (see repro.mac.medium).
    cs_range_factor: float = 2.0
    #: Routing packets stuck in the MAC queue longer than this are stale
    #: and silently dropped (None disables).  Under saturation this is the
    #: difference between delivering old news and delivering nothing.
    queue_residence_s: float = 0.5
    #: Contention-slot width for the batched backend: attempt instants are
    #: rounded *up* onto this grid so whole rounds resolve in one batched
    #: carrier-sense query (and their transmissions share one topology
    #: snapshot).  0 (the default) keeps the paper's continuous, unslotted
    #: timing; the scalar backend ignores this entirely.
    slot_align_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bit_rate_bps <= 0:
            raise ConfigurationError("bit_rate_bps must be positive")
        if self.queue_capacity <= 0:
            raise ConfigurationError("queue_capacity must be positive")
        if self.initial_defer_max_s < 0:
            raise ConfigurationError("initial_defer_max_s must be >= 0")
        if not (0 < self.backoff_min_s <= self.backoff_max_s):
            raise ConfigurationError("backoff window must satisfy 0 < min <= max")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.cs_range_factor <= 0:
            raise ConfigurationError("cs_range_factor must be positive")
        if self.queue_residence_s is not None and self.queue_residence_s <= 0:
            raise ConfigurationError("queue_residence_s must be positive (or None)")
        if self.slot_align_s < 0:
            raise ConfigurationError("slot_align_s must be >= 0")


class CsmaMac:
    """One node's transmitter on the shared common channel."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        medium: CommonChannelMedium,
        channel: "ChannelModel",
        metrics: MetricsCollector,
        config: MacConfig,
        rng: random.Random,
        dispatch: DispatchFn,
        neighbors: NeighborsFn,
        scheduler: Optional["ContentionScheduler"] = None,
    ) -> None:
        self._node_id = node_id
        self._sim = sim
        self._medium = medium
        self._channel = channel
        self._metrics = metrics
        self._config = config
        self._rng = rng
        self._dispatch = dispatch
        self._neighbors = neighbors
        # Batched backend: defer/backoff instants and draws are handled by
        # the shared contention scheduler; None keeps the scalar per-event
        # state machine (the differential reference).
        self._scheduler = scheduler
        self._queue: DropTailQueue[Packet] = DropTailQueue(
            config.queue_capacity, max_residence=config.queue_residence_s
        )
        self._busy = False  # a send cycle (defer/backoff/tx) is in progress
        self._enabled = True  # radio powered (fault injection flips this)
        self.sent = 0
        self.dropped = 0

    @property
    def node_id(self) -> int:
        """Owning node's id."""
        return self._node_id

    @property
    def config(self) -> MacConfig:
        """This transmitter's MAC configuration."""
        return self._config

    @property
    def queue_length(self) -> int:
        """Packets waiting for the channel (excluding any in flight)."""
        return len(self._queue)

    @property
    def enabled(self) -> bool:
        """True while the radio is powered (see :meth:`set_enabled`)."""
        return self._enabled

    def set_enabled(self, enabled: bool) -> None:
        """Power the transmitter on/off (fault injection seam).

        Disabling flushes the queue (counted) and rejects new sends; any
        defer/backoff event already scheduled resolves through the
        phantom-attempt path when it fires against the empty queue.  A
        transmission already on the air completes normally — the fault
        lands between frames, not mid-symbol.
        """
        if self._enabled == enabled:
            return
        self._enabled = enabled
        if not enabled:
            stale = self._queue.flush()
            if stale:
                self.dropped += len(stale)
                self._metrics.record_event("mac_node_down_flush", len(stale))

    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for broadcast.  Returns False if queue full.

        A full MAC queue silently discards the packet (counted in
        diagnostics) — routing packets are fire-and-forget, exactly the
        situation of a saturated common channel in the paper.
        """
        if not self._enabled:
            self.dropped += 1
            self._metrics.record_event("mac_node_down_drop")
            return False
        if not self._queue.push(packet, self._sim.now):
            self.dropped += 1
            self._metrics.record_event("mac_queue_drop")
            return False
        self._pump()
        return True

    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Start the send cycle for the head packet if idle."""
        if self._busy or not self._queue:
            return
        self._busy = True
        if self._scheduler is not None:
            self._scheduler.schedule_defer(self)
            return
        defer = self._rng.uniform(0.0, self._config.initial_defer_max_s)
        self._sim.schedule(defer, self._attempt, 1)

    def _attempt(self, attempt: int) -> None:
        """One scalar carrier-sense attempt (the per-event reference path)."""
        now = self._sim.now
        packet = self._peek_head(now)
        if packet is None:
            return
        if self._medium.busy_for(self._node_id, now):
            window = self._backoff_window(attempt, now)
            if window is None:
                return
            low, high = window
            delay = self._rng.uniform(low, high)
            self._sim.schedule(delay, self._attempt, attempt + 1)
            return
        self._transmit(packet, now)

    # The three phases below are shared verbatim by the scalar `_attempt`
    # event and the batched contention round (repro.mac.bank), which calls
    # them around its one-per-round carrier-sense query and backoff draw.
    def _peek_head(self, now: float) -> Optional[Packet]:
        """Head packet of the queue, or None for a *phantom attempt* —
        the queue drained or went entirely stale between scheduling the
        attempt and firing it (counted; the send cycle ends)."""
        packet = self._queue.peek(now)
        if packet is None:
            self._busy = False
            self._metrics.record_event("mac_phantom_attempt")
        return packet

    def _backoff_window(self, attempt: int, now: float) -> Optional[Tuple[float, float]]:
        """Resolve a busy carrier-sense outcome.

        Returns the ``(low, high)`` bounds of the doubling contention
        window to redraw from, or None when the packet just exhausted its
        attempts (dropped, counted, and the next packet pumped).
        """
        if attempt >= self._config.max_attempts:
            self._queue.pop(now)
            self.dropped += 1
            self._metrics.record_event("mac_backoff_drop")
            self._busy = False
            self._pump()
            return None
        window = min(
            self._config.backoff_min_s * (2 ** (attempt - 1)),
            self._config.backoff_max_s,
        )
        return self._config.backoff_min_s / 2.0, window

    def _transmit(self, packet: Packet, now: float) -> None:
        """Channel idle: put ``packet`` on the air."""
        self._queue.pop(now)
        duration = packet.size_bits / self._config.bit_rate_bps
        tx = self._medium.begin(self._node_id, now, now + duration, packet)
        self._metrics.record_control_tx(packet.kind, packet.size_bits, now=now)
        self._metrics.record_radio(tx_bits=packet.size_bits, now=now)
        self._metrics.record_node_radio(self._node_id, tx_bits=packet.size_bits)
        self.sent += 1
        self._sim.schedule(duration, self._complete, tx)

    def _complete(self, tx: Transmission) -> None:
        # Resolve reception at every node in range at transmission start.
        # The whole delivery set is checked against each interferer in one
        # batched medium query instead of per-receiver collision walks, and
        # the outcome travels to the network as one ReceptionBatch: rx
        # energy and collision tallies are aggregated here (every receiver
        # spends listen energy whether or not it decodes the packet) so the
        # dispatch loop below the network seam touches only survivors.
        receivers = [r for r in self._neighbors(self._node_id, tx.start) if r != self._node_id]
        lost = self._medium.lost_receivers(tx, receivers)
        now = self._sim.now
        if receivers:
            self._metrics.record_radio(rx_bits=tx.packet.size_bits * len(receivers), now=now)
            if self._metrics.node_radio_rx is not None:
                for r in receivers:
                    self._metrics.record_node_radio(r, rx_bits=tx.packet.size_bits)
        if lost:
            self._medium.record_losses(len(lost))
            self._metrics.record_event("mac_collision", len(lost))
        if len(lost) < len(receivers):
            self._dispatch(ReceptionBatch(tx.packet, self._node_id, receivers, lost, now))
        self._busy = False
        self._pump()
