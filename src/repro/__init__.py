"""repro — a full reproduction of RICA (Lin, Kwok & Lau, ICDCS 2002).

A discrete-event simulator for ad hoc mobile networks with a time-varying
(fast fading + shadowing) channel quantised into four ABICM throughput
classes, a multi-code CDMA MAC with a contended CSMA/CA common channel,
and five routing protocols: **RICA** (the paper's receiver-initiated
channel-adaptive protocol), **BGCA**, **ABR**, **AODV** and **link state**.

Quickstart::

    from repro import ScenarioConfig, run_scenario

    report = run_scenario(ScenarioConfig(
        protocol="rica", mean_speed_kmh=36.0, rate_pps=10.0,
        duration_s=30.0, seed=7,
    ))
    print(report.summary())

Figure reproduction::

    from repro import run_figure
    print(run_figure("fig2a").format_table())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.version import __version__
from repro.channel import ChannelClass, ChannelConfig, ChannelModel
from repro.core import RicaConfig, RicaProtocol
from repro.experiments import (
    FigureResult,
    FigureSpec,
    Scenario,
    ScenarioConfig,
    build_scenario,
    figure_spec,
    list_figures,
    run_figure,
    run_scenario,
    run_speed_sweep,
    run_trials,
)
from repro.experiments import (
    CampaignResult,
    CampaignSpec,
    CellFailure,
    CellOutcome,
    ExecutionBackend,
    ProcessPoolBackend,
    RetryPolicy,
    SerialBackend,
    load_results,
    run_campaign,
    save_results,
)
from repro.faults import (
    BlackoutConfig,
    EnergyFaultConfig,
    FaultConfig,
    FaultInjector,
    FaultSchedule,
    NodeChurnConfig,
    NodeOutage,
)
from repro.metrics import MetricsCollector, MetricsReport
from repro.metrics.energy import EnergyModel
from repro.routing import available_protocols, create_protocol
from repro.sim import RandomStreams, Simulator
from repro.topology import TopologyIndex
from repro.trace import TraceEvent, Tracer

__all__ = [
    "__version__",
    "ChannelClass",
    "ChannelConfig",
    "ChannelModel",
    "RicaConfig",
    "RicaProtocol",
    "FigureResult",
    "FigureSpec",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
    "figure_spec",
    "list_figures",
    "run_figure",
    "run_scenario",
    "run_speed_sweep",
    "run_trials",
    "MetricsCollector",
    "MetricsReport",
    "EnergyModel",
    "available_protocols",
    "create_protocol",
    "RandomStreams",
    "Simulator",
    "CampaignResult",
    "CampaignSpec",
    "CellFailure",
    "CellOutcome",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "RetryPolicy",
    "SerialBackend",
    "TopologyIndex",
    "load_results",
    "run_campaign",
    "save_results",
    "BlackoutConfig",
    "EnergyFaultConfig",
    "FaultConfig",
    "FaultInjector",
    "FaultSchedule",
    "NodeChurnConfig",
    "NodeOutage",
    "TraceEvent",
    "Tracer",
]
