"""Deterministic fault injection: node churn, blackouts, energy death.

See docs/ARCHITECTURE.md ("Fault injection & resilience") for the design:
fault timelines compile to a pure, seed-derived event stream
(:class:`FaultSchedule`), apply through ``Network.fail_node`` /
``recover_node``, and are observed by routing protocols only through the
normal failure signals (missing ACKs, timeouts, ``on_link_failure``).
"""

from repro.faults.config import (
    BlackoutConfig,
    EnergyFaultConfig,
    FaultConfig,
    NodeChurnConfig,
    NodeOutage,
)
from repro.faults.schedule import FaultEvent, FaultInjector, FaultSchedule

__all__ = [
    "BlackoutConfig",
    "EnergyFaultConfig",
    "FaultConfig",
    "NodeChurnConfig",
    "NodeOutage",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
]
