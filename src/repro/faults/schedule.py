"""Fault-schedule compilation and runtime injection.

:meth:`FaultSchedule.compile` turns a :class:`~repro.faults.config.FaultConfig`
into a sorted tuple of timestamped :class:`FaultEvent` records.  The
compilation is a pure function of ``(config, n_nodes, seed, horizon)``:
churn timelines are walked per node with exponential draws from
counter-based splitmix64 substreams (``derive_key(derive_seed(seed,
"faults/churn"), node)``), so the same scenario compiles to byte-identical
fault streams under any execution backend, MAC backend or mobility backend
— the schedule never reads simulation state.

:class:`FaultInjector` arms the compiled events on the
:class:`~repro.sim.engine.Simulator` (they drain through the ordinary
``(time, seq)`` event queue alongside traffic and protocol events) and
applies them through ``Network.fail_node`` / ``Network.recover_node``.
Blackout membership *is* resolved at runtime — the nodes inside the disc
when the window opens — because it depends on mobility; the event stream
itself stays backend-independent.  The optional energy monitor reads the
collector's per-node radio ledger each ``check_interval_s`` and kills
nodes whose consumed joules exceed their (jittered) budget; energy death
is permanent ("energy" stays in the node's down-reason set forever).

Routing protocols never see any of this directly: a dead node simply
stops ACKing, decoding and relaying, so failures surface exactly the way
the paper's protocols expect — through missing ACKs, discovery timeouts
and ``on_link_failure``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.config import FaultConfig
from repro.geometry.vector import Vec2
from repro.sim.rng import CounterRandom, derive_key, derive_seed

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.collector import MetricsCollector
    from repro.net.network import Network
    from repro.sim.engine import Simulator

__all__ = ["FaultEvent", "FaultSchedule", "FaultInjector"]

#: Deterministic tiebreak for same-instant fault events: recoveries apply
#: before crashes (a node scripted to flap at one instant ends up down),
#: blackout ends before blackout starts (back-to-back windows hand over
#: cleanly), node events before regional ones.
_ACTION_ORDER = {
    "recover": 0,
    "crash": 1,
    "blackout_end": 2,
    "blackout_start": 3,
}


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One timestamped fault, ready to schedule on the engine.

    ``node`` is -1 for blackout events; ``blackout`` is -1 for node
    events (it indexes ``FaultConfig.blackouts``).  The dataclass order
    (time, priority, node, blackout) is the canonical schedule order.
    """

    time: float
    priority: int
    action: str
    node: int = -1
    blackout: int = -1


class FaultSchedule:
    """The compiled, immutable fault timeline of one scenario."""

    __slots__ = ("events",)

    def __init__(self, events: Tuple[FaultEvent, ...]) -> None:
        self.events = events

    @classmethod
    def compile(
        cls, config: FaultConfig, n_nodes: int, seed: int, horizon: float
    ) -> "FaultSchedule":
        """Compile ``config`` into sorted fault events for ``[0, horizon)``.

        Pure in ``(config, n_nodes, seed, horizon)`` — see the module
        docstring for why that purity is the determinism contract.
        """
        events: List[FaultEvent] = []
        if config.churn is not None:
            churn = config.churn
            churn_seed = derive_seed(seed, "faults/churn")
            end = horizon if churn.end_s is None else min(churn.end_s, horizon)
            for node in range(n_nodes):
                rng = CounterRandom(derive_key(churn_seed, node))
                t = churn.start_s
                while True:
                    t += _exponential(rng, churn.crash_rate_per_s)
                    if t >= end:
                        break
                    events.append(FaultEvent(t, _ACTION_ORDER["crash"], "crash", node=node))
                    t += _exponential(rng, 1.0 / churn.mean_downtime_s)
                    if t >= end:
                        break
                    events.append(
                        FaultEvent(t, _ACTION_ORDER["recover"], "recover", node=node)
                    )
        for outage in config.outages:
            if outage.node_id >= n_nodes:
                raise ConfigurationError(
                    f"outage node_id={outage.node_id} does not exist "
                    f"(scenario has {n_nodes} nodes)"
                )
            if outage.crash_s < horizon:
                events.append(
                    FaultEvent(
                        outage.crash_s, _ACTION_ORDER["crash"], "crash", node=outage.node_id
                    )
                )
                if outage.recover_s is not None and outage.recover_s < horizon:
                    events.append(
                        FaultEvent(
                            outage.recover_s,
                            _ACTION_ORDER["recover"],
                            "recover",
                            node=outage.node_id,
                        )
                    )
        for idx, blackout in enumerate(config.blackouts):
            if blackout.start_s >= horizon:
                continue
            events.append(
                FaultEvent(
                    blackout.start_s,
                    _ACTION_ORDER["blackout_start"],
                    "blackout_start",
                    blackout=idx,
                )
            )
            if blackout.end_s < horizon:
                events.append(
                    FaultEvent(
                        blackout.end_s,
                        _ACTION_ORDER["blackout_end"],
                        "blackout_end",
                        blackout=idx,
                    )
                )
        events.sort()
        return cls(tuple(events))

    def __len__(self) -> int:
        return len(self.events)

    def signature(self) -> Tuple[Tuple[float, str, int, int], ...]:
        """A hashable/JSON-friendly rendering for differential tests."""
        return tuple((e.time, e.action, e.node, e.blackout) for e in self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultSchedule(events={len(self.events)})"


def _exponential(rng: CounterRandom, rate: float) -> float:
    """Exponential variate by inversion (``u`` in [0, 1) keeps log finite)."""
    return -math.log(1.0 - rng.random()) / rate


class FaultInjector:
    """Arms a compiled schedule on the engine and applies the faults."""

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        metrics: "MetricsCollector",
        config: FaultConfig,
        schedule: FaultSchedule,
        horizon: float,
        energy_budgets_j: Optional[List[float]] = None,
    ) -> None:
        self._sim = sim
        self._network = network
        self._metrics = metrics
        self._config = config
        self.schedule = schedule
        self._horizon = horizon
        self._energy_budgets_j = energy_budgets_j
        #: Blackout index -> node ids taken down at its start instant.
        self._blackout_members: Dict[int, List[int]] = {}
        self._energy_dead: set = set()
        # Diagnostics (also mirrored into metrics events).
        self.crashes = 0
        self.recoveries = 0
        self.energy_deaths = 0

    @classmethod
    def from_config(
        cls,
        sim: "Simulator",
        network: "Network",
        metrics: "MetricsCollector",
        config: FaultConfig,
        seed: int,
        horizon: float,
    ) -> "FaultInjector":
        """Compile the schedule and derive per-node energy budgets."""
        schedule = FaultSchedule.compile(
            config, n_nodes=network.node_count, seed=seed, horizon=horizon
        )
        budgets: Optional[List[float]] = None
        if config.energy is not None:
            metrics.enable_node_radio()
            energy_seed = derive_seed(seed, "faults/energy")
            jitter = config.energy.budget_jitter
            budgets = []
            for node in range(network.node_count):
                u = CounterRandom(derive_key(energy_seed, node)).random()
                budgets.append(config.energy.budget_j * (1.0 + jitter * (2.0 * u - 1.0)))
        return cls(sim, network, metrics, config, schedule, horizon, budgets)

    def start(self) -> None:
        """Schedule every compiled event (plus the energy monitor)."""
        for event in self.schedule.events:
            self._sim.schedule_at(event.time, self._apply, event)
        if self._energy_budgets_j is not None:
            self._sim.schedule(self._config.energy.check_interval_s, self._energy_check)

    # ------------------------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        if event.action == "crash":
            if self._network.fail_node(event.node, reason="churn"):
                self.crashes += 1
                self._metrics.record_event("fault_node_crash")
        elif event.action == "recover":
            if self._network.recover_node(event.node, reason="churn"):
                self.recoveries += 1
                self._metrics.record_event("fault_node_recover")
        elif event.action == "blackout_start":
            self._blackout_start(event.blackout)
        elif event.action == "blackout_end":
            self._blackout_end(event.blackout)

    def _blackout_start(self, idx: int) -> None:
        blackout = self._config.blackouts[idx]
        center = Vec2(blackout.center_x_m, blackout.center_y_m)
        # Membership = active nodes inside the disc right now; nodes that
        # are already down for another reason ride out the window on their
        # own reason set.
        members = self._network.topology.nodes_within(
            center, self._sim.now, blackout.radius_m
        )
        self._blackout_members[idx] = members
        reason = ("blackout", idx)
        for node in members:
            self._network.fail_node(node, reason=reason)
        self._metrics.record_event("fault_blackout_start")
        if members:
            self._metrics.record_event("fault_blackout_node_down", len(members))

    def _blackout_end(self, idx: int) -> None:
        reason = ("blackout", idx)
        for node in self._blackout_members.pop(idx, []):
            self._network.recover_node(node, reason=reason)
        self._metrics.record_event("fault_blackout_end")

    def _energy_check(self) -> None:
        budgets = self._energy_budgets_j
        model = self._config.energy.model
        tx = self._metrics.node_radio_tx
        rx = self._metrics.node_radio_rx
        for node in range(self._network.node_count):
            if node in self._energy_dead:
                continue
            if model.total_joules(tx[node], rx[node]) >= budgets[node]:
                self._energy_dead.add(node)
                # Permanent: the "energy" reason is never removed, so churn
                # recoveries cannot resurrect a drained battery.
                self._network.fail_node(node, reason="energy")
                self.energy_deaths += 1
                self._metrics.record_event("fault_energy_death")
        interval = self._config.energy.check_interval_s
        if self._sim.now + interval <= self._horizon:
            self._sim.schedule(interval, self._energy_check)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultInjector(events={len(self.schedule)}, crashes={self.crashes}, "
            f"recoveries={self.recoveries}, energy_deaths={self.energy_deaths})"
        )
