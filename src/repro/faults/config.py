"""Fault-model configuration (validated frozen dataclasses).

Four fault classes compose into one :class:`FaultConfig`:

* **Node churn** (:class:`NodeChurnConfig`) — every node alternates
  up/down through an exponential renewal process: while up it crashes
  with hazard ``crash_rate_per_s``; once down it recovers after an
  exponential downtime with mean ``mean_downtime_s``.  The whole renewal
  timeline is drawn from counter-based splitmix64 substreams keyed per
  node, so the compiled fault schedule depends only on
  ``(seed, config, n_nodes, horizon)`` — never on execution backend or
  event interleaving.
* **Scripted outages** (:class:`NodeOutage`) — explicit per-node
  crash/recover instants, for deterministic tests and targeted what-if
  scenarios.
* **Regional blackouts** (:class:`BlackoutConfig`) — every node inside a
  disc at the blackout start instant goes down until the window closes
  (a jammed area, a power cut across a city block).
* **Energy depletion** (:class:`EnergyFaultConfig`) — nodes carry a
  finite battery priced by :class:`~repro.metrics.energy.EnergyModel`;
  a periodic monitor compares each node's per-node radio bits against
  its (optionally jittered) budget and shuts depleted nodes down
  permanently.

Validation matches the :class:`~repro.mac.csma.MacConfig` style: every
field is range-checked in ``__post_init__`` and violations raise
:class:`~repro.errors.ConfigurationError`.  Constraints that need the
simulation horizon (blackout/churn windows inside ``duration_s``) are
checked by :meth:`FaultConfig.validate_horizon`, called from
``ScenarioConfig.__post_init__``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.metrics.energy import EnergyModel

__all__ = [
    "NodeChurnConfig",
    "NodeOutage",
    "BlackoutConfig",
    "EnergyFaultConfig",
    "FaultConfig",
]


@dataclass(frozen=True)
class NodeChurnConfig:
    """Per-node crash/recover renewal process."""

    #: Crash hazard while up (expected crashes per node per second).
    crash_rate_per_s: float
    #: Mean of the exponential downtime after a crash.
    mean_downtime_s: float = 5.0
    #: Churn only runs inside [start_s, end_s); ``end_s=None`` means the
    #: simulation horizon.
    start_s: float = 0.0
    end_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.crash_rate_per_s <= 0:
            raise ConfigurationError(
                f"crash_rate_per_s must be positive, got {self.crash_rate_per_s}"
            )
        if self.mean_downtime_s <= 0:
            raise ConfigurationError(
                f"mean_downtime_s must be positive, got {self.mean_downtime_s}"
            )
        if self.start_s < 0:
            raise ConfigurationError(f"start_s must be >= 0, got {self.start_s}")
        if self.end_s is not None and self.end_s <= self.start_s:
            raise ConfigurationError(
                f"end_s must exceed start_s, got end_s={self.end_s} start_s={self.start_s}"
            )


@dataclass(frozen=True)
class NodeOutage:
    """One scripted node outage: crash at a fixed time, optionally recover."""

    node_id: int
    crash_s: float
    #: ``None`` keeps the node down for the rest of the run.
    recover_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ConfigurationError(f"node_id must be >= 0, got {self.node_id}")
        if self.crash_s < 0:
            raise ConfigurationError(f"crash_s must be >= 0, got {self.crash_s}")
        if self.recover_s is not None and self.recover_s <= self.crash_s:
            raise ConfigurationError(
                f"recover_s must come after crash_s, got recover_s={self.recover_s} "
                f"crash_s={self.crash_s}"
            )


@dataclass(frozen=True)
class BlackoutConfig:
    """A regional link blackout: a disc of nodes goes dark for a window.

    Membership is resolved at the start instant from the topology index
    (active nodes within ``radius_m`` of the centre); exactly that set
    recovers when the window closes.
    """

    start_s: float
    duration_s: float
    center_x_m: float
    center_y_m: float
    radius_m: float

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigurationError(f"blackout start_s must be >= 0, got {self.start_s}")
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"blackout duration_s must be positive, got {self.duration_s}"
            )
        if self.radius_m <= 0:
            raise ConfigurationError(f"blackout radius_m must be positive, got {self.radius_m}")

    @property
    def end_s(self) -> float:
        """The instant the blackout lifts."""
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class EnergyFaultConfig:
    """Energy-depletion shutdown driven by the per-node radio ledger."""

    #: Per-node energy budget in joules.
    budget_j: float
    #: Budget spread: node ``i`` gets ``budget_j * (1 + jitter*(2u_i - 1))``
    #: with ``u_i`` drawn from a counter substream (0 = identical budgets).
    budget_jitter: float = 0.0
    #: Period of the depletion monitor.
    check_interval_s: float = 1.0
    #: Radio cost model pricing the per-node tx/rx bit counters.
    model: EnergyModel = field(default_factory=EnergyModel)

    def __post_init__(self) -> None:
        if self.budget_j <= 0:
            raise ConfigurationError(f"budget_j must be positive, got {self.budget_j}")
        if not (0.0 <= self.budget_jitter < 1.0):
            raise ConfigurationError(
                f"budget_jitter must lie in [0, 1), got {self.budget_jitter}"
            )
        if self.check_interval_s <= 0:
            raise ConfigurationError(
                f"check_interval_s must be positive, got {self.check_interval_s}"
            )


@dataclass(frozen=True)
class FaultConfig:
    """The complete fault model of one scenario (all parts optional)."""

    churn: Optional[NodeChurnConfig] = None
    outages: Tuple[NodeOutage, ...] = ()
    blackouts: Tuple[BlackoutConfig, ...] = ()
    energy: Optional[EnergyFaultConfig] = None

    def __post_init__(self) -> None:
        # Accept lists for ergonomics but store canonical tuples so the
        # config stays hashable/picklable like every other frozen config.
        object.__setattr__(self, "outages", tuple(self.outages))
        object.__setattr__(self, "blackouts", tuple(self.blackouts))
        for outage in self.outages:
            if not isinstance(outage, NodeOutage):
                raise ConfigurationError(f"outages must hold NodeOutage, got {outage!r}")
        for blackout in self.blackouts:
            if not isinstance(blackout, BlackoutConfig):
                raise ConfigurationError(
                    f"blackouts must hold BlackoutConfig, got {blackout!r}"
                )

    def enabled(self) -> bool:
        """True when any fault class is configured."""
        return (
            self.churn is not None
            or bool(self.outages)
            or bool(self.blackouts)
            or self.energy is not None
        )

    def validate_horizon(self, duration_s: float) -> None:
        """Reject windows that fall outside the simulation horizon."""
        if self.churn is not None:
            if self.churn.start_s >= duration_s:
                raise ConfigurationError(
                    f"churn start_s={self.churn.start_s} is outside the "
                    f"{duration_s} s simulation horizon"
                )
            if self.churn.end_s is not None and self.churn.end_s > duration_s:
                raise ConfigurationError(
                    f"churn end_s={self.churn.end_s} exceeds the "
                    f"{duration_s} s simulation horizon"
                )
        for outage in self.outages:
            if outage.crash_s >= duration_s:
                raise ConfigurationError(
                    f"outage crash_s={outage.crash_s} is outside the "
                    f"{duration_s} s simulation horizon"
                )
        for blackout in self.blackouts:
            if blackout.start_s >= duration_s or blackout.end_s > duration_s:
                raise ConfigurationError(
                    f"blackout window [{blackout.start_s}, {blackout.end_s}) falls "
                    f"outside the {duration_s} s simulation horizon"
                )
