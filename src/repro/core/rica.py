"""RICA — receiver-initiated channel-adaptive on-demand routing.

Implements Section II of the paper:

* **Route discovery** (II-B): RREQ flood accumulating CSI-based hop
  distance; the destination collects the copies arriving over different
  routes and unicasts a RREP along the minimum-distance one.

* **Receiver-initiated CSI checking** (II-C): once a flow is active, the
  destination broadcasts a CSI checking packet every ``check_interval_s``
  (paper: "for example every second"), TTL-limited to the plain-hop length
  of the current route.  Relaying terminals accumulate CSI distance,
  remember the downstream terminal the packet came from (the "possible
  downstream terminal" with its PN code), and rebroadcast once.  The
  source collects copies for 40 ms, picks the minimum CSI distance, and
  sends a RUPD down the chain of recorded downstream pointers; route
  entries switch as the RUPD passes.  The superseded route expires on its
  own after 1 s of disuse.

* **Route maintenance** (II-D): REERs from terminals that are not the
  current downstream are ignored as stale (handled in the shared base);
  when a REER does reach the source, the source switches to a fresh CSI
  candidate if it has one and only falls back to a full RREQ flood when it
  does not.  The three RREP/CSI-arrival interleavings the paper enumerates
  all reduce to "newest selection wins", which is how the handlers below
  behave naturally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.metrics.collector import DropReason
from repro.net.packet import DataPacket
from repro.routing.base import OnDemandProtocol, ProtocolConfig
from repro.routing.packets import CsiCheck, RouteRequest, RouteUpdate
from repro.sim.timers import PeriodicTimer

__all__ = ["RicaProtocol", "RicaConfig"]


@dataclass
class RicaConfig(ProtocolConfig):
    """RICA tunables (paper values where stated)."""

    #: CSI checking broadcast period at the destination (paper: ~1 s).
    check_interval_s: float = 1.0
    #: TTL slack added to the plain-hop route length for checking floods.
    ttl_slack: int = 1
    #: Destination stops checking after this long without flow data (s).
    dest_inactivity_s: float = 3.0
    #: How long a CSI candidate at the source stays "fresh" for the REER
    #: fallback decision (s); a little over one check period.
    candidate_fresh_s: float = 1.5
    #: Lifetime of possible-downstream pointers (the paper's 100 ms PN-code
    #: detection window is the analogous mechanism).
    downstream_lifetime_s: float = 1.5
    #: Idle expiry of route entries (paper: "for example 1 second").
    route_idle_timeout_s: Optional[float] = 1.0


class _CheckState:
    """Destination-side per-flow checking state."""

    __slots__ = ("timer", "last_data_at", "route_hops", "next_bcast")

    def __init__(self, timer: Optional[PeriodicTimer], route_hops: int) -> None:
        self.timer = timer
        self.last_data_at = 0.0
        self.route_hops = route_hops
        self.next_bcast = 0


class _SourceCollector:
    """Source-side collection of one checking broadcast's copies."""

    __slots__ = ("candidates", "timer")

    def __init__(self) -> None:
        self.candidates: List[Tuple[float, int]] = []  # (csi_distance, neighbor)
        self.timer = None


class RicaProtocol(OnDemandProtocol):
    """Receiver-initiated channel-adaptive routing (the paper's protocol)."""

    name = "rica"
    uses_csi = True

    def __init__(self, node, network, metrics, config=None) -> None:
        super().__init__(node, network, metrics, config or RicaConfig())
        if not isinstance(self.config, RicaConfig):
            merged = RicaConfig()
            merged.__dict__.update(self.config.__dict__)
            self.config = merged
        #: Destination side: flow source -> checking state.
        self._checking: Dict[int, _CheckState] = {}
        #: Relay side: (flow_dst, bcast_id) -> (downstream, csi_distance, at).
        self._downstream: Dict[Tuple[int, int], Tuple[int, float, float]] = {}
        #: Relay side: flow_dst -> bcast_id of the freshest checking flood
        #: seen (for salvage lookups on link failure).
        self._latest_bcast: Dict[int, int] = {}
        #: Source side: flow_dst -> open collector for the current broadcast.
        self._collectors_src: Dict[Tuple[int, int], _SourceCollector] = {}
        #: Source side: flow_dst -> (best_neighbor, bcast_id, csi, chosen_at).
        self._fresh_candidate: Dict[int, Tuple[int, int, float, float]] = {}
        #: Flows whose next data packet should carry the update flag.
        self._pending_update_flag: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    # Discovery policy: minimum CSI distance, destination waits 40 ms
    # ------------------------------------------------------------------
    def request_metric(
        self, rreq: RouteRequest, hops: int, csi: float, bottleneck_bw: float
    ) -> tuple:
        return (csi, hops)

    def on_reply_sent(self, rreq: RouteRequest, hops: int, csi: float) -> None:
        """Destination answered a discovery: start receiver-initiated checks."""
        self._ensure_checking(flow_src=rreq.origin, route_hops=hops)

    # ------------------------------------------------------------------
    # Destination side: periodic CSI checking broadcasts
    # ------------------------------------------------------------------
    def _ensure_checking(self, flow_src: int, route_hops: int) -> None:
        state = self._checking.get(flow_src)
        if state is not None:
            state.route_hops = max(int(route_hops), 1)
            return
        state = _CheckState(None, max(int(route_hops), 1))
        state.last_data_at = self.sim.now
        state.timer = PeriodicTimer(
            self.sim,
            self.config.check_interval_s,
            self._broadcast_check,
            flow_src,
        ).start()
        self._checking[flow_src] = state

    def _broadcast_check(self, flow_src: int) -> None:
        state = self._checking.get(flow_src)
        if state is None:
            return
        now = self.sim.now
        if now - state.last_data_at > self.config.dest_inactivity_s:
            state.timer.cancel()
            del self._checking[flow_src]
            self.metrics.record_event("rica_check_stopped")
            return
        state.next_bcast += 1
        ttl = state.route_hops + self.config.ttl_slack
        check = CsiCheck(
            now,
            flow_src=flow_src,
            flow_dst=self.node.id,
            bcast_id=state.next_bcast,
            ttl=ttl,
        )
        self.flood_cache.check_and_add(check.flood_key)
        self.metrics.record_event("rica_check_broadcast")
        self.broadcast_control(check)

    def on_data_at_destination(self, packet: DataPacket, from_id: int) -> None:
        """Track flow liveness and the current route's plain-hop length."""
        state = self._checking.get(packet.src)
        if state is None:
            self._ensure_checking(packet.src, route_hops=max(packet.hops_traversed, 1))
            state = self._checking[packet.src]
        state.last_data_at = self.sim.now
        if packet.hops_traversed > 0:
            state.route_hops = packet.hops_traversed

    # ------------------------------------------------------------------
    # Relay side: rebroadcast once, remember the best downstream pointer
    # ------------------------------------------------------------------
    def on_csi_check(self, check: CsiCheck, from_id: int) -> None:
        if check.flow_dst == self.node.id:
            return  # our own broadcast echoed back
        now = self.sim.now
        link_csi = self.channel.csi_hop_distance(from_id, self.node.id, now)
        csi_here = check.csi_distance + link_csi
        hops_here = check.hops + 1
        dkey = (check.flow_dst, check.bcast_id)
        stored = self._downstream.get(dkey)
        if stored is None or csi_here < stored[1]:
            self._downstream[dkey] = (from_id, csi_here, now)
            self._prune_downstream(now)
        if check.bcast_id >= self._latest_bcast.get(check.flow_dst, 0):
            self._latest_bcast[check.flow_dst] = check.bcast_id
        is_new = self.flood_cache.check_and_add(check.flood_key)
        if self.node.id == check.flow_src:
            self._collect_check(check, from_id, csi_here)
            return
        if not is_new or check.ttl <= 1:
            return
        clone = check.relay_copy(now)
        clone.csi_distance = csi_here
        clone.hops = hops_here
        clone.ttl = check.ttl - 1
        self.broadcast_control(clone)

    def _prune_downstream(self, now: float) -> None:
        if len(self._downstream) <= 2048:
            return
        lifetime = self.config.downstream_lifetime_s
        self._downstream = {
            k: v for k, v in self._downstream.items() if now - v[2] <= lifetime
        }

    # ------------------------------------------------------------------
    # Source side: collect copies for 40 ms, switch to the shortest
    # ------------------------------------------------------------------
    def _collect_check(self, check: CsiCheck, from_id: int, csi_here: float) -> None:
        ckey = (check.flow_dst, check.bcast_id)
        collector = self._collectors_src.get(ckey)
        if collector is None:
            collector = _SourceCollector()
            self._collectors_src[ckey] = collector
            collector.timer = self.sim.schedule(
                self.config.source_wait_s, self._selection_window_closed, ckey
            )
        collector.candidates.append((csi_here, from_id))

    def _selection_window_closed(self, ckey: Tuple[int, int]) -> None:
        collector = self._collectors_src.pop(ckey, None)
        if collector is None or not collector.candidates:
            return
        flow_dst, bcast_id = ckey
        now = self.sim.now
        csi, neighbor = min(collector.candidates)
        self._fresh_candidate[flow_dst] = (neighbor, bcast_id, csi, now)
        self._switch_route(flow_dst, neighbor, bcast_id, csi)

    def _switch_route(self, flow_dst: int, neighbor: int, bcast_id: int, csi: float) -> None:
        """Adopt the newly selected route and propagate the RUPD."""
        now = self.sim.now
        old = self.table.entry(flow_dst)
        changed = old is None or not old.valid or old.next_hop != neighbor
        self.table.set_route(flow_dst, next_hop=neighbor, now=now, csi_distance=csi)
        self.note_route_repaired(flow_dst)
        rupd = RouteUpdate(
            now,
            flow_src=self.node.id,
            flow_dst=flow_dst,
            bcast_id=bcast_id,
            unicast_to=neighbor,
        )
        self.broadcast_control(rupd)
        if changed:
            self.metrics.record_event("rica_route_switch")
            self._pending_update_flag[flow_dst] = True
            self.trace(
                "route_switch",
                dest=flow_dst,
                next_hop=neighbor,
                csi=round(csi, 2),
                bcast_id=bcast_id,
            )
        # A fresh route may unblock buffered packets (e.g. after a REER).
        for pkt in self.pending.release(flow_dst, now):
            self.dispatch_data(pkt)

    def send_data(self, packet: DataPacket, next_hop: int) -> None:
        if packet.src == self.node.id and self._pending_update_flag.pop(packet.dst, False):
            packet.update_flag = True  # paper: first packet after a switch
        super().send_data(packet, next_hop)

    # ------------------------------------------------------------------
    # RUPD propagation: each relay follows its recorded downstream pointer
    # ------------------------------------------------------------------
    def on_rupd(self, rupd: RouteUpdate, from_id: int) -> None:
        if self.node.id == rupd.flow_dst:
            return  # the route is complete
        now = self.sim.now
        pointer = self._downstream.get((rupd.flow_dst, rupd.bcast_id))
        if pointer is None or now - pointer[2] > self.config.downstream_lifetime_s:
            self.metrics.record_event("rica_rupd_dangling")
            return
        downstream = pointer[0]
        self.table.set_route(rupd.flow_dst, next_hop=downstream, now=now)
        clone = RouteUpdate(
            now,
            flow_src=rupd.flow_src,
            flow_dst=rupd.flow_dst,
            bcast_id=rupd.bcast_id,
            unicast_to=downstream,
        )
        self.broadcast_control(clone)

    def on_no_route(self, packet: DataPacket) -> None:
        """Transit packet with no valid entry: try the checking corridor.

        Nodes inside the CSI-checking corridor hold fresh possible-
        downstream pointers even when their route entry has idled out;
        re-joining the route through the pointer beats dropping.
        """
        if packet.src != self.node.id:
            salvage = self._salvage_pointer(packet.dst, exclude=self.node.id)
            if salvage is not None:
                self.metrics.record_event("rica_salvage_no_route")
                self.table.set_route(packet.dst, next_hop=salvage, now=self.sim.now)
                self.note_route_repaired(packet.dst)
                self.send_data(packet, salvage)
                return
        super().on_no_route(packet)

    # ------------------------------------------------------------------
    # Maintenance (Section II-D)
    # ------------------------------------------------------------------
    def on_route_broken(self, dest: int) -> None:
        """REER reached the source: prefer a fresh CSI candidate."""
        now = self.sim.now
        fresh = self._fresh_candidate.get(dest)
        if fresh is not None and now - fresh[3] <= self.config.candidate_fresh_s:
            neighbor, bcast_id, csi, _ = fresh
            self.metrics.record_event("rica_reer_csi_recovery")
            self._switch_route(dest, neighbor, bcast_id, csi)
            return
        self.metrics.record_event("rica_reer_rediscovery")
        self.start_discovery(dest)

    def _salvage_pointer(self, dest: int, exclude: int) -> Optional[int]:
        """A fresh possible-downstream neighbour for ``dest``, if any.

        The checking broadcasts leave every corridor terminal with a
        recorded downstream pointer (the terminal it would use "the
        corresponding PN code" with); after a break, re-routing through it
        is the receiver-initiated repair the protocol is built around.
        """
        bcast_id = self._latest_bcast.get(dest)
        if bcast_id is None:
            return None
        pointer = self._downstream.get((dest, bcast_id))
        if pointer is None:
            return None
        neighbor, _csi, at = pointer
        if neighbor == exclude or neighbor == self.node.id:
            return None
        if self.sim.now - at > self.config.downstream_lifetime_s:
            return None
        return neighbor

    def handle_link_failure(
        self, next_hop: int, packet: DataPacket, queued: List[DataPacket]
    ) -> None:
        now = self.sim.now
        self.invalidate_routes_via(next_hop)
        flows = set()
        for pkt in [packet] + queued:
            if pkt.src == self.node.id:
                self.pending.hold(pkt, now)
                self.on_route_broken(pkt.dst)
                continue
            salvage = self._salvage_pointer(pkt.dst, exclude=next_hop)
            if salvage is not None:
                self.metrics.record_event("rica_salvage")
                self.table.set_route(pkt.dst, next_hop=salvage, now=now)
                self.note_route_repaired(pkt.dst)
                self.send_data(pkt, salvage)
            else:
                self.drop_data(pkt, DropReason.LINK_FAILURE)
                flows.add((pkt.src, pkt.dst))
        for src, dst in flows:
            self.send_reer(src, dst)
