"""The paper's primary contribution: the RICA routing protocol.

RICA (Receiver-Initiated Channel-Adaptive) keeps the route between a
source and a destination continuously matched to channel conditions: the
*destination* periodically broadcasts CSI checking packets toward the
source inside a TTL-limited corridor; every relaying terminal accumulates
the CSI hop distance and remembers its best downstream pointer; the source
picks the shortest (in CSI distance) of the arriving copies and switches
the whole route with a RUPD.  See :class:`repro.core.rica.RicaProtocol`.
"""

from repro.core.rica import RicaProtocol, RicaConfig

__all__ = ["RicaProtocol", "RicaConfig"]
