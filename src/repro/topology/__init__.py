"""Spatial topology index: the shared position/neighbour hot path.

See :mod:`repro.topology.index` for the design and the staleness
contract, and docs/ARCHITECTURE.md for how the layers consume it.
"""

from repro.topology.index import TopologyIndex

__all__ = ["TopologyIndex"]
