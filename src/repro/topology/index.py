"""The spatial topology index: cached positions + grid-backed neighbours.

Every layer of the simulator asks the same two questions in its innermost
loop — *where is node i now?* and *who is within range of node i now?*.
The seed implementation answered both by brute force: every
``Network.neighbors()`` call re-evaluated every node's mobility model and
scanned all n terminals (O(n²) per MAC transmission).  The
:class:`TopologyIndex` replaces that hot path with:

* **Per-epoch position caching** — positions are sampled from the mobility
  models once per time quantum (exact query time when ``quantum == 0``,
  the default) and shared by every consumer: neighbour queries, channel
  gain lookups, carrier sensing.  A small LRU of recent epochs keeps the
  MAC's queries at transmission-start times (slightly in the past) cheap.
* **A uniform spatial hash grid** — nodes are binned into cells of
  ``cell_size`` metres (default: the neighbour radius), so a radius query
  inspects only the 3x3-ish cell neighbourhood instead of all nodes.
* **Incremental neighbour-set maintenance** — each epoch's cell buckets
  are derived copy-on-write from the previous epoch's: only nodes that
  crossed a cell boundary move buckets, everything else is shared.

Staleness contract: with ``quantum == 0`` every answer is exact.  With
``quantum > 0`` positions are frozen at the start of each quantum, so any
position/neighbour answer can be stale by up to ``quantum`` seconds of
node movement (at most ``quantum * max_speed`` metres).  See
docs/ARCHITECTURE.md.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, TopologyError
from repro.geometry.field import Field
from repro.geometry.grid import Cell, UniformGrid
from repro.geometry.vector import Vec2

__all__ = ["TopologyIndex"]

PositionFn = Callable[[float], Vec2]


class _Snapshot:
    """Positions and cell buckets at one sampled instant.

    ``candidates`` memoises, per ``(cell, reach)``, the flattened bucket
    concatenation of the cell's ``(2*reach + 1)²`` neighbourhood — every
    query from the same cell at the same epoch shares one list.

    ``coords``/``slot_of`` are the lazily-built array view used by the
    batched queries: an (n, 2) float array of every position plus the
    id -> row mapping (``slot_of is None`` flags the dense fast path
    where ids 0..n-1 index ``coords`` directly).  The array is only
    built once a snapshot has served about a full field's worth of
    batched gathers (``gathered``) — a snapshot that answers a single
    neighbour-set query never pays the O(n) conversion.

    Snapshots come in two flavours.  *Scalar* snapshots (the default) are
    built from per-node ``position()`` calls and carry the ``positions``
    dict eagerly.  *Array* snapshots (:meth:`from_arrays`, used when a
    bulk position source such as the mobility bank is wired in) carry
    ``coords`` plus plain-list ``xl``/``yl`` columns and a ``cell_codes``
    array for incremental bucket diffing; their ``positions`` dict is a
    lazy property materialised only if a cold path still asks for it —
    the hot queries read the columns directly.
    """

    __slots__ = (
        "time",
        "_positions",
        "cells",
        "cell_of",
        "candidates",
        "coords",
        "slot_of",
        "gathered",
        "xl",
        "yl",
        "cell_codes",
    )

    def __init__(
        self,
        time: float,
        positions: Optional[Dict[int, Vec2]],
        cells: Dict[Cell, List[int]],
        cell_of: Optional[Dict[int, Cell]],
    ) -> None:
        self.time = time
        self._positions = positions
        self.cells = cells
        self.cell_of = cell_of
        self.candidates: Dict[Tuple[int, int, int], List[int]] = {}
        self.coords: Optional[np.ndarray] = None
        self.slot_of: Optional[Dict[int, int]] = None
        self.gathered = 0
        self.xl: Optional[List[float]] = None
        self.yl: Optional[List[float]] = None
        self.cell_codes: Optional[np.ndarray] = None

    @classmethod
    def from_arrays(
        cls,
        time: float,
        coords: np.ndarray,
        cells: Dict[Cell, List[int]],
        cell_codes: np.ndarray,
    ) -> "_Snapshot":
        """Build an array snapshot (dense ids 0..n-1 index every column)."""
        snap = cls(time, None, cells, None)
        snap.coords = coords
        snap.xl = coords[:, 0].tolist()
        snap.yl = coords[:, 1].tolist()
        snap.cell_codes = cell_codes
        return snap

    @property
    def positions(self) -> Dict[int, Vec2]:
        """The id -> Vec2 dict (materialised on demand for array snapshots)."""
        positions = self._positions
        if positions is None:
            positions = {
                i: Vec2(x, y) for i, (x, y) in enumerate(zip(self.xl, self.yl))
            }
            self._positions = positions
        return positions

    def coords_array(self) -> np.ndarray:
        """The (n, 2) coordinate array (built on first batched query)."""
        coords = self.coords
        if coords is None:
            positions = self.positions
            n = len(positions)
            if n == 0:
                coords = np.empty((0, 2))
            else:
                coords = np.array(list(positions.values()))
                ids = np.fromiter(positions.keys(), dtype=np.intp, count=n)
                if not bool((ids == np.arange(n, dtype=np.intp)).all()):
                    self.slot_of = {nid: i for i, nid in enumerate(positions)}
            self.coords = coords
        return coords


class TopologyIndex:
    """Grid-backed, epoch-cached topology queries over a set of nodes.

    Args:
        field: the simulation field (grid extent).
        radius: default neighbour radius in metres (the decode range).
        cell_size: grid cell edge; defaults to ``radius`` (falling back to
            the field's larger side when ``radius == 0``).
        quantum: position-sampling time quantum in seconds.  0 (default)
            samples at exact query times; > 0 snaps query times down to
            multiples of ``quantum`` (positions may then be stale by up to
            one quantum).
        max_snapshots: how many recent epochs to keep cached.
    """

    def __init__(
        self,
        field: Field,
        radius: float,
        cell_size: Optional[float] = None,
        quantum: float = 0.0,
        max_snapshots: int = 8,
    ) -> None:
        if radius < 0:
            raise ConfigurationError(f"neighbour radius must be >= 0, got {radius}")
        if quantum < 0:
            raise ConfigurationError(f"position quantum must be >= 0, got {quantum}")
        if max_snapshots < 1:
            raise ConfigurationError("max_snapshots must be >= 1")
        self.field = field
        self.radius = float(radius)
        if cell_size is None:
            cell_size = radius if radius > 0 else max(field.width, field.height)
        self.grid = UniformGrid(field.width, field.height, cell_size)
        self.quantum = float(quantum)
        self._position_fns: Dict[int, PositionFn] = {}
        # Inactive (failed) nodes: still tracked — point queries must keep
        # answering for in-flight transmissions — but excluded from every
        # set query (cell buckets, neighbour scans, neighbour maps).
        self._inactive: set = set()
        self._snapshots: "OrderedDict[float, _Snapshot]" = OrderedDict()
        self._max_snapshots = max_snapshots
        self._latest: Optional[_Snapshot] = None  # fast path: most recent epoch
        self._bulk_source: Optional[Callable[[float], np.ndarray]] = None
        self._ids_dense: Optional[bool] = None  # cached; None = unknown
        #: Diagnostics: full snapshot builds and incremental bucket moves.
        self.snapshots_built = 0
        self.bucket_moves = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add(self, node_id: int, position_fn: PositionFn) -> None:
        """Register a node's trajectory.  Invalidates cached snapshots."""
        if node_id in self._position_fns:
            raise TopologyError(f"node id {node_id} already indexed")
        self._position_fns[node_id] = position_fn
        self._snapshots.clear()
        self._latest = None
        self._ids_dense = None

    def remove(self, node_id: int) -> None:
        """Forget a node.  Invalidates cached snapshots."""
        self._lookup(node_id)
        del self._position_fns[node_id]
        self._inactive.discard(node_id)
        self._snapshots.clear()
        self._latest = None
        self._ids_dense = None

    def set_active(self, node_id: int, active: bool) -> None:
        """Mark a node active/inactive for set queries (fault injection).

        An inactive node keeps its trajectory — :meth:`position`,
        :meth:`distances_from` and friends still answer, so channel math
        for transmissions already in flight stays well-defined — but it
        vanishes from cell buckets: :meth:`neighbors`,
        :meth:`nodes_within` and :meth:`neighbor_map` no longer see it.
        Transitions are rare (fault events), so cached snapshots are
        simply invalidated rather than diffed.
        """
        self._lookup(node_id)
        if active:
            if node_id not in self._inactive:
                return
            self._inactive.discard(node_id)
        else:
            if node_id in self._inactive:
                return
            self._inactive.add(node_id)
        self._snapshots.clear()
        self._latest = None

    def is_active(self, node_id: int) -> bool:
        """True unless ``node_id`` was deactivated via :meth:`set_active`."""
        return node_id not in self._inactive

    def set_bulk_source(self, source: Callable[[float], np.ndarray]) -> None:
        """Wire in a bulk position source (e.g. ``MobilityBank.coords_at``).

        ``source(t)`` must return an (n, 2) float array whose row ``i`` is
        node ``i``'s position — i.e. node ids must be dense 0..n-1 (the
        batched mobility contract).  Snapshot builds then become one array
        call plus vectorized cell binning instead of n Python
        ``position()`` calls; if ids are ever non-dense the index falls
        back to the scalar build, which stays correct because the per-node
        ``position_fn``s read the same bank rows.
        """
        self._bulk_source = source
        self._snapshots.clear()
        self._latest = None

    def __len__(self) -> int:
        return len(self._position_fns)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._position_fns

    def _lookup(self, node_id: int) -> PositionFn:
        try:
            return self._position_fns[node_id]
        except KeyError:
            raise TopologyError(f"unknown node id {node_id}") from None

    # ------------------------------------------------------------------
    # Time quantisation
    # ------------------------------------------------------------------
    def snap(self, t: float) -> float:
        """The epoch time ``t`` maps to (identity when ``quantum == 0``)."""
        if self.quantum <= 0.0:
            return t
        return math.floor(t / self.quantum) * self.quantum

    # ------------------------------------------------------------------
    # Point queries (never force a snapshot build)
    # ------------------------------------------------------------------
    def position(self, node_id: int, t: float) -> Vec2:
        """Position of ``node_id`` at ``t`` (epoch-cached when available).

        Uses the cached snapshot for ``snap(t)`` if one exists; otherwise
        evaluates the node's trajectory directly — a pairwise channel or
        carrier-sense probe at an off-epoch instant must not trigger an
        O(n) resample of the whole field.
        """
        ts = self.snap(t)
        latest = self._latest
        snapshot = (
            latest
            if latest is not None and latest.time == ts
            else self._snapshots.get(ts)
        )
        if snapshot is not None:
            xl = snapshot.xl
            if xl is not None:
                if 0 <= node_id < len(xl):
                    return Vec2(xl[node_id], snapshot.yl[node_id])
                raise TopologyError(f"unknown node id {node_id}")
            try:
                return snapshot.positions[node_id]
            except KeyError:
                raise TopologyError(f"unknown node id {node_id}") from None
        return self._lookup(node_id)(ts)

    def distance(self, a: int, b: int, t: float) -> float:
        """Distance in metres between ``a`` and ``b`` at ``t``."""
        return self.position(a, t).distance_to(self.position(b, t))

    def within(self, a: int, b: int, t: float, range_m: float) -> bool:
        """True if distinct nodes ``a`` and ``b`` are within ``range_m``."""
        if a == b:
            return False
        return self.distance(a, b, t) <= range_m

    # ------------------------------------------------------------------
    # Batched point queries (one array pipeline per candidate set)
    # ------------------------------------------------------------------
    def positions_of(self, ids: Sequence[int], t: float) -> List[Vec2]:
        """Positions of every node in ``ids`` at ``t`` (epoch-cached when
        a snapshot for ``snap(t)`` already exists; never builds one)."""
        ts = self.snap(t)
        latest = self._latest
        snapshot = (
            latest
            if latest is not None and latest.time == ts
            else self._snapshots.get(ts)
        )
        try:
            if snapshot is not None:
                xl = snapshot.xl
                if xl is not None:
                    yl = snapshot.yl
                    if any(nid < 0 or nid >= len(xl) for nid in ids):
                        raise TopologyError(f"unknown node id in {list(ids)!r}")
                    return [Vec2(xl[nid], yl[nid]) for nid in ids]
                positions = snapshot.positions
                return [positions[nid] for nid in ids]
            fns = self._position_fns
            return [fns[nid](ts) for nid in ids]
        except KeyError as exc:
            raise TopologyError(f"unknown node id {exc.args[0]}") from None

    def distances_from(self, node_id: int, others: Sequence[int], t: float) -> np.ndarray:
        """Distances (metres) from ``node_id`` to every node in ``others``.

        The batched core of the vectorized channel pipeline: one origin
        fetch, one coordinate gather, one ``hypot`` over the whole
        candidate set.  When a snapshot for ``snap(t)`` exists its cached
        coordinate array is fancy-indexed directly (node ids are dense in
        practice, so the id list *is* the index); otherwise the involved
        trajectories are evaluated pointwise, never forcing a snapshot.
        """
        origin = self.position(node_id, t)
        if not others:
            return np.empty(0)
        ts = self.snap(t)
        latest = self._latest
        snapshot = (
            latest
            if latest is not None and latest.time == ts
            else self._snapshots.get(ts)
        )
        if snapshot is not None and snapshot.coords is None:
            snapshot.gathered += len(others)
            if snapshot.gathered >= len(snapshot.positions):
                snapshot.coords_array()  # heavy reuse: amortise into one array
        if snapshot is not None and snapshot.coords is not None:
            coords = snapshot.coords
            slot_of = snapshot.slot_of
            try:
                if slot_of is None:
                    idx = np.asarray(others, dtype=np.intp)
                    if idx.size and (idx.max() >= coords.shape[0] or idx.min() < 0):
                        raise TopologyError(f"unknown node id in {others!r}")
                else:
                    idx = np.fromiter(
                        (slot_of[b] for b in others), dtype=np.intp, count=len(others)
                    )
            except KeyError as exc:
                raise TopologyError(f"unknown node id {exc.args[0]}") from None
            pts = coords[idx]
            dx = pts[:, 0] - origin.x
            dy = pts[:, 1] - origin.y
        else:
            flat: List[float] = []
            append = flat.append
            if snapshot is not None:
                positions = snapshot.positions
                try:
                    for b in others:
                        p = positions[b]
                        append(p.x)
                        append(p.y)
                except KeyError:
                    raise TopologyError(f"unknown node id {b}") from None
            else:
                fns = self._position_fns
                try:
                    for b in others:
                        p = fns[b](ts)
                        append(p.x)
                        append(p.y)
                except KeyError:
                    raise TopologyError(f"unknown node id {b}") from None
            pts = np.array(flat).reshape(-1, 2)
            dx = pts[:, 0] - origin.x
            dy = pts[:, 1] - origin.y
        return np.hypot(dx, dy)

    def which_within(
        self, node_id: int, others: Sequence[int], t: float, range_m: float
    ) -> np.ndarray:
        """Boolean mask over ``others``: within ``range_m`` of ``node_id``
        (``node_id`` itself, if present, is masked out)."""
        mask = self.distances_from(node_id, others, t) <= range_m
        for i, nid in enumerate(others):
            if nid == node_id:
                mask[i] = False
        return mask

    def any_within(
        self, node_id: int, others: Sequence[int], t: float, range_m: float
    ) -> bool:
        """True if any node in ``others`` is within ``range_m`` of
        ``node_id`` (cheap scalar loop for tiny candidate sets)."""
        if len(others) <= 3:
            within = self.within
            return any(within(nid, node_id, t, range_m) for nid in others)
        return bool(self.which_within(node_id, others, t, range_m).any())

    # ------------------------------------------------------------------
    # Set queries (grid-backed, build/reuse a snapshot)
    # ------------------------------------------------------------------
    def neighbors(self, node_id: int, t: float, radius: Optional[float] = None) -> List[int]:
        """Ids within ``radius`` (default: the index radius), ascending."""
        r = self.radius if radius is None else radius
        snapshot = self._snapshot(t)
        xl = snapshot.xl
        if xl is not None:
            if not 0 <= node_id < len(xl):
                raise TopologyError(f"unknown node id {node_id}")
            return self._scan(snapshot, xl[node_id], snapshot.yl[node_id], r, node_id)
        try:
            origin = snapshot.positions[node_id]
        except KeyError:
            raise TopologyError(f"unknown node id {node_id}") from None
        return self._scan(snapshot, origin.x, origin.y, r, node_id)

    def nodes_within(self, point: Vec2, t: float, radius: float) -> List[int]:
        """Ids within ``radius`` metres of an arbitrary point, ascending."""
        return self._scan(self._snapshot(t), point.x, point.y, radius, -1)

    def _scan(
        self, snapshot: _Snapshot, ox: float, oy: float, r: float, exclude: int
    ) -> List[int]:
        """The query hot path: scan the cell neighbourhood of ``(ox, oy)``.

        Coordinates are clamped onto the grid (1-Lipschitz per axis), so a
        neighbourhood of ``ceil(r / cell_size)`` cells around the origin's
        cell always covers every point within ``r`` — including origins and
        nodes sitting on cell boundaries or outside the field.
        """
        grid = self.grid
        col, row = grid._col(ox), grid._row(oy)
        reach = grid.reach_for(r)
        key = (col, row, reach)
        cand = snapshot.candidates.get(key)
        if cand is None:
            cells = snapshot.cells
            cand = []
            for block_cell in grid.cell_block((col, row), reach):
                bucket = cells.get(block_cell)
                if bucket:
                    cand.extend(bucket)
            snapshot.candidates[key] = cand
        hyp = math.hypot
        out: List[int] = []
        append = out.append
        xl = snapshot.xl
        if xl is not None:
            # Array snapshot: the plain-list columns avoid per-node Vec2
            # construction in the innermost loop.
            yl = snapshot.yl
            for nid in cand:
                if nid == exclude:
                    continue
                if hyp(ox - xl[nid], oy - yl[nid]) <= r:
                    append(nid)
            out.sort()
            return out
        positions = snapshot.positions
        for nid in cand:
            if nid == exclude:
                continue
            p = positions[nid]
            if hyp(ox - p[0], oy - p[1]) <= r:
                append(nid)
        out.sort()
        return out

    def neighbor_map(self, t: float, radius: Optional[float] = None) -> Dict[int, List[int]]:
        """Full ``{id: neighbours}`` map at ``t`` in one pass over the grid.

        Inactive (failed) nodes are omitted from the keys as well as from
        every neighbour list — a dead node has no adjacency.
        """
        inactive = self._inactive
        return {
            nid: self.neighbors(nid, t, radius)
            for nid in sorted(self._position_fns)
            if nid not in inactive
        }

    def coords_view(self, t: float) -> Tuple[np.ndarray, Optional[Dict[int, int]]]:
        """The epoch's positions as ``(coords, slot_of)`` arrays.

        ``coords`` is an (n, 2) float array; ``slot_of`` maps node id to
        row, or is None when ids are dense (``coords[id]`` directly).
        Builds the snapshot — this is a bulk query by contract; the
        network-wide channel scans amortise it over every pair.
        """
        snapshot = self._snapshot(t)
        return snapshot.coords_array(), snapshot.slot_of

    def positions(self, t: float) -> Dict[int, Vec2]:
        """All cached positions at ``snap(t)`` (builds the snapshot)."""
        return dict(self._snapshot(t).positions)

    # ------------------------------------------------------------------
    # Snapshot maintenance
    # ------------------------------------------------------------------
    def _snapshot(self, t: float) -> _Snapshot:
        ts = self.snap(t)
        latest = self._latest
        if latest is not None and latest.time == ts:
            return latest
        snapshot = self._snapshots.get(ts)
        if snapshot is not None:
            self._snapshots.move_to_end(ts)
            return snapshot
        snapshot = self._build(ts)
        self._snapshots[ts] = snapshot
        self._latest = snapshot
        if len(self._snapshots) > self._max_snapshots:
            self._snapshots.popitem(last=False)
        return snapshot

    def _build(self, ts: float) -> _Snapshot:
        """Sample every trajectory once; rebucket only nodes that moved cells."""
        if self._bulk_source is not None:
            if self._ids_dense is None:
                self._ids_dense = all(
                    nid == i for i, nid in enumerate(self._position_fns)
                )
            if self._ids_dense:
                return self._build_bulk(ts)
        self.snapshots_built += 1
        base = next(reversed(self._snapshots.values())) if self._snapshots else None
        if base is not None and base.cell_of is None:
            base = None  # array snapshot: no dict cell map to diff against
        positions: Dict[int, Vec2] = {}
        cell_of_point = self.grid.cell_of
        inactive = self._inactive
        if base is None:
            cells: Dict[Cell, List[int]] = {}
            cell_of: Dict[int, Cell] = {}
            for nid, fn in self._position_fns.items():
                p = fn(ts)
                positions[nid] = p
                if nid in inactive:
                    continue  # sampled (point queries) but never bucketed
                c = cell_of_point(p)
                cell_of[nid] = c
                bucket = cells.get(c)
                if bucket is None:
                    cells[c] = [nid]
                else:
                    bucket.append(nid)
            return _Snapshot(ts, positions, cells, cell_of)
        # Copy-on-write from the most recent snapshot: bucket lists are
        # shared until a node crosses into or out of them.  Activity
        # changes clear the cache, so base and this build always agree on
        # the inactive set: an inactive node is in neither bucket map.
        cells = dict(base.cells)
        cell_of = dict(base.cell_of)
        touched: set = set()
        for nid, fn in self._position_fns.items():
            p = fn(ts)
            positions[nid] = p
            if nid in inactive:
                continue
            c = cell_of_point(p)
            old = cell_of[nid]
            if c == old:
                continue
            self.bucket_moves += 1
            self._mutable_bucket(cells, touched, old).remove(nid)
            self._mutable_bucket(cells, touched, c).append(nid)
            cell_of[nid] = c
        return _Snapshot(ts, positions, cells, cell_of)

    def _build_bulk(self, ts: float) -> _Snapshot:
        """One bulk-source call + vectorized cell binning per snapshot.

        Cell indices replicate ``UniformGrid._col``/``_row`` exactly
        (clamp, divide, truncate, clamp to the last cell — truncation
        equals floor for the non-negative clamped values), so scalar and
        bulk builds bucket identically.  Against a previous array
        snapshot only nodes whose packed cell code changed move buckets,
        copy-on-write, same as the scalar incremental build.
        """
        self.snapshots_built += 1
        coords = np.asarray(self._bulk_source(ts), dtype=float)
        n = len(self._position_fns)
        if coords.shape != (n, 2):
            raise TopologyError(
                f"bulk position source returned shape {coords.shape}, "
                f"expected ({n}, 2)"
            )
        grid = self.grid
        cs = grid.cell_size
        col = np.minimum(
            (np.clip(coords[:, 0], 0.0, grid.width) / cs).astype(np.intp),
            grid.cols - 1,
        )
        row = np.minimum(
            (np.clip(coords[:, 1], 0.0, grid.height) / cs).astype(np.intp),
            grid.rows - 1,
        )
        codes = col * grid.rows + row
        if self._inactive:
            # Inactive nodes carry the -1 sentinel: never bucketed, and
            # (since activity changes clear the snapshot cache) never part
            # of an incremental diff either.
            codes[list(self._inactive)] = -1
        base = next(reversed(self._snapshots.values())) if self._snapshots else None
        if (
            base is None
            or base.cell_codes is None
            or base.cell_codes.shape[0] != n
        ):
            cells: Dict[Cell, List[int]] = {}
            cl = col.tolist()
            rl = row.tolist()
            codes_list = codes.tolist()
            for nid in range(n):
                if codes_list[nid] < 0:
                    continue
                c = (cl[nid], rl[nid])
                bucket = cells.get(c)
                if bucket is None:
                    cells[c] = [nid]
                else:
                    bucket.append(nid)
            return _Snapshot.from_arrays(ts, coords, cells, codes)
        cells = dict(base.cells)
        touched: set = set()
        moved = np.nonzero(codes != base.cell_codes)[0]
        if moved.size:
            base_col = base.cell_codes // grid.rows
            base_row = base.cell_codes - base_col * grid.rows
            for nid in moved.tolist():
                self.bucket_moves += 1
                old = (int(base_col[nid]), int(base_row[nid]))
                new = (int(col[nid]), int(row[nid]))
                self._mutable_bucket(cells, touched, old).remove(nid)
                self._mutable_bucket(cells, touched, new).append(nid)
        return _Snapshot.from_arrays(ts, coords, cells, codes)

    @staticmethod
    def _mutable_bucket(cells: Dict[Cell, List[int]], touched: set, cell: Cell) -> List[int]:
        if cell not in touched:
            cells[cell] = list(cells.get(cell, ()))
            touched.add(cell)
        return cells[cell]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TopologyIndex(nodes={len(self._position_fns)}, {self.grid!r}, "
            f"quantum={self.quantum:g}, snapshots={len(self._snapshots)})"
        )
