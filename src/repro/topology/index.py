"""The spatial topology index: cached positions + grid-backed neighbours.

Every layer of the simulator asks the same two questions in its innermost
loop — *where is node i now?* and *who is within range of node i now?*.
The seed implementation answered both by brute force: every
``Network.neighbors()`` call re-evaluated every node's mobility model and
scanned all n terminals (O(n²) per MAC transmission).  The
:class:`TopologyIndex` replaces that hot path with:

* **Per-epoch position caching** — positions are sampled from the mobility
  models once per time quantum (exact query time when ``quantum == 0``,
  the default) and shared by every consumer: neighbour queries, channel
  gain lookups, carrier sensing.  A small LRU of recent epochs keeps the
  MAC's queries at transmission-start times (slightly in the past) cheap.
* **A uniform spatial hash grid** — nodes are binned into cells of
  ``cell_size`` metres (default: the neighbour radius), so a radius query
  inspects only the 3x3-ish cell neighbourhood instead of all nodes.
* **Incremental neighbour-set maintenance** — each epoch's cell buckets
  are derived copy-on-write from the previous epoch's: only nodes that
  crossed a cell boundary move buckets, everything else is shared.

Staleness contract: with ``quantum == 0`` every answer is exact.  With
``quantum > 0`` positions are frozen at the start of each quantum, so any
position/neighbour answer can be stale by up to ``quantum`` seconds of
node movement (at most ``quantum * max_speed`` metres).  See
docs/ARCHITECTURE.md.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, TopologyError
from repro.geometry.field import Field
from repro.geometry.grid import Cell, UniformGrid
from repro.geometry.vector import Vec2

__all__ = ["TopologyIndex"]

PositionFn = Callable[[float], Vec2]


class _Snapshot:
    """Positions and cell buckets at one sampled instant.

    ``candidates`` memoises, per ``(cell, reach)``, the flattened bucket
    concatenation of the cell's ``(2*reach + 1)²`` neighbourhood — every
    query from the same cell at the same epoch shares one list.
    """

    __slots__ = ("time", "positions", "cells", "cell_of", "candidates")

    def __init__(
        self,
        time: float,
        positions: Dict[int, Vec2],
        cells: Dict[Cell, List[int]],
        cell_of: Dict[int, Cell],
    ) -> None:
        self.time = time
        self.positions = positions
        self.cells = cells
        self.cell_of = cell_of
        self.candidates: Dict[Tuple[int, int, int], List[int]] = {}


class TopologyIndex:
    """Grid-backed, epoch-cached topology queries over a set of nodes.

    Args:
        field: the simulation field (grid extent).
        radius: default neighbour radius in metres (the decode range).
        cell_size: grid cell edge; defaults to ``radius`` (falling back to
            the field's larger side when ``radius == 0``).
        quantum: position-sampling time quantum in seconds.  0 (default)
            samples at exact query times; > 0 snaps query times down to
            multiples of ``quantum`` (positions may then be stale by up to
            one quantum).
        max_snapshots: how many recent epochs to keep cached.
    """

    def __init__(
        self,
        field: Field,
        radius: float,
        cell_size: Optional[float] = None,
        quantum: float = 0.0,
        max_snapshots: int = 8,
    ) -> None:
        if radius < 0:
            raise ConfigurationError(f"neighbour radius must be >= 0, got {radius}")
        if quantum < 0:
            raise ConfigurationError(f"position quantum must be >= 0, got {quantum}")
        if max_snapshots < 1:
            raise ConfigurationError("max_snapshots must be >= 1")
        self.field = field
        self.radius = float(radius)
        if cell_size is None:
            cell_size = radius if radius > 0 else max(field.width, field.height)
        self.grid = UniformGrid(field.width, field.height, cell_size)
        self.quantum = float(quantum)
        self._position_fns: Dict[int, PositionFn] = {}
        self._snapshots: "OrderedDict[float, _Snapshot]" = OrderedDict()
        self._max_snapshots = max_snapshots
        self._latest: Optional[_Snapshot] = None  # fast path: most recent epoch
        #: Diagnostics: full snapshot builds and incremental bucket moves.
        self.snapshots_built = 0
        self.bucket_moves = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add(self, node_id: int, position_fn: PositionFn) -> None:
        """Register a node's trajectory.  Invalidates cached snapshots."""
        if node_id in self._position_fns:
            raise TopologyError(f"node id {node_id} already indexed")
        self._position_fns[node_id] = position_fn
        self._snapshots.clear()
        self._latest = None

    def remove(self, node_id: int) -> None:
        """Forget a node.  Invalidates cached snapshots."""
        self._lookup(node_id)
        del self._position_fns[node_id]
        self._snapshots.clear()
        self._latest = None

    def __len__(self) -> int:
        return len(self._position_fns)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._position_fns

    def _lookup(self, node_id: int) -> PositionFn:
        try:
            return self._position_fns[node_id]
        except KeyError:
            raise TopologyError(f"unknown node id {node_id}") from None

    # ------------------------------------------------------------------
    # Time quantisation
    # ------------------------------------------------------------------
    def snap(self, t: float) -> float:
        """The epoch time ``t`` maps to (identity when ``quantum == 0``)."""
        if self.quantum <= 0.0:
            return t
        return math.floor(t / self.quantum) * self.quantum

    # ------------------------------------------------------------------
    # Point queries (never force a snapshot build)
    # ------------------------------------------------------------------
    def position(self, node_id: int, t: float) -> Vec2:
        """Position of ``node_id`` at ``t`` (epoch-cached when available).

        Uses the cached snapshot for ``snap(t)`` if one exists; otherwise
        evaluates the node's trajectory directly — a pairwise channel or
        carrier-sense probe at an off-epoch instant must not trigger an
        O(n) resample of the whole field.
        """
        ts = self.snap(t)
        latest = self._latest
        snapshot = (
            latest
            if latest is not None and latest.time == ts
            else self._snapshots.get(ts)
        )
        if snapshot is not None:
            try:
                return snapshot.positions[node_id]
            except KeyError:
                raise TopologyError(f"unknown node id {node_id}") from None
        return self._lookup(node_id)(ts)

    def distance(self, a: int, b: int, t: float) -> float:
        """Distance in metres between ``a`` and ``b`` at ``t``."""
        return self.position(a, t).distance_to(self.position(b, t))

    def within(self, a: int, b: int, t: float, range_m: float) -> bool:
        """True if distinct nodes ``a`` and ``b`` are within ``range_m``."""
        if a == b:
            return False
        return self.distance(a, b, t) <= range_m

    # ------------------------------------------------------------------
    # Set queries (grid-backed, build/reuse a snapshot)
    # ------------------------------------------------------------------
    def neighbors(self, node_id: int, t: float, radius: Optional[float] = None) -> List[int]:
        """Ids within ``radius`` (default: the index radius), ascending."""
        r = self.radius if radius is None else radius
        snapshot = self._snapshot(t)
        try:
            origin = snapshot.positions[node_id]
        except KeyError:
            raise TopologyError(f"unknown node id {node_id}") from None
        return self._scan(snapshot, origin.x, origin.y, r, node_id)

    def nodes_within(self, point: Vec2, t: float, radius: float) -> List[int]:
        """Ids within ``radius`` metres of an arbitrary point, ascending."""
        return self._scan(self._snapshot(t), point.x, point.y, radius, -1)

    def _scan(
        self, snapshot: _Snapshot, ox: float, oy: float, r: float, exclude: int
    ) -> List[int]:
        """The query hot path: scan the cell neighbourhood of ``(ox, oy)``.

        Coordinates are clamped onto the grid (1-Lipschitz per axis), so a
        neighbourhood of ``ceil(r / cell_size)`` cells around the origin's
        cell always covers every point within ``r`` — including origins and
        nodes sitting on cell boundaries or outside the field.
        """
        grid = self.grid
        col, row = grid._col(ox), grid._row(oy)
        reach = grid.reach_for(r)
        key = (col, row, reach)
        cand = snapshot.candidates.get(key)
        if cand is None:
            cells = snapshot.cells
            cand = []
            for block_cell in grid.cell_block((col, row), reach):
                bucket = cells.get(block_cell)
                if bucket:
                    cand.extend(bucket)
            snapshot.candidates[key] = cand
        positions = snapshot.positions
        hyp = math.hypot
        out: List[int] = []
        append = out.append
        for nid in cand:
            if nid == exclude:
                continue
            p = positions[nid]
            if hyp(ox - p[0], oy - p[1]) <= r:
                append(nid)
        out.sort()
        return out

    def neighbor_map(self, t: float, radius: Optional[float] = None) -> Dict[int, List[int]]:
        """Full ``{id: neighbours}`` map at ``t`` in one pass over the grid."""
        return {nid: self.neighbors(nid, t, radius) for nid in sorted(self._position_fns)}

    def positions(self, t: float) -> Dict[int, Vec2]:
        """All cached positions at ``snap(t)`` (builds the snapshot)."""
        return dict(self._snapshot(t).positions)

    # ------------------------------------------------------------------
    # Snapshot maintenance
    # ------------------------------------------------------------------
    def _snapshot(self, t: float) -> _Snapshot:
        ts = self.snap(t)
        latest = self._latest
        if latest is not None and latest.time == ts:
            return latest
        snapshot = self._snapshots.get(ts)
        if snapshot is not None:
            self._snapshots.move_to_end(ts)
            return snapshot
        snapshot = self._build(ts)
        self._snapshots[ts] = snapshot
        self._latest = snapshot
        if len(self._snapshots) > self._max_snapshots:
            self._snapshots.popitem(last=False)
        return snapshot

    def _build(self, ts: float) -> _Snapshot:
        """Sample every trajectory once; rebucket only nodes that moved cells."""
        self.snapshots_built += 1
        base = next(reversed(self._snapshots.values())) if self._snapshots else None
        positions: Dict[int, Vec2] = {}
        cell_of_point = self.grid.cell_of
        if base is None:
            cells: Dict[Cell, List[int]] = {}
            cell_of: Dict[int, Cell] = {}
            for nid, fn in self._position_fns.items():
                p = fn(ts)
                positions[nid] = p
                c = cell_of_point(p)
                cell_of[nid] = c
                bucket = cells.get(c)
                if bucket is None:
                    cells[c] = [nid]
                else:
                    bucket.append(nid)
            return _Snapshot(ts, positions, cells, cell_of)
        # Copy-on-write from the most recent snapshot: bucket lists are
        # shared until a node crosses into or out of them.
        cells = dict(base.cells)
        cell_of = dict(base.cell_of)
        touched: set = set()
        for nid, fn in self._position_fns.items():
            p = fn(ts)
            positions[nid] = p
            c = cell_of_point(p)
            old = cell_of[nid]
            if c == old:
                continue
            self.bucket_moves += 1
            self._mutable_bucket(cells, touched, old).remove(nid)
            self._mutable_bucket(cells, touched, c).append(nid)
            cell_of[nid] = c
        return _Snapshot(ts, positions, cells, cell_of)

    @staticmethod
    def _mutable_bucket(cells: Dict[Cell, List[int]], touched: set, cell: Cell) -> List[int]:
        if cell not in touched:
            cells[cell] = list(cells.get(cell, ()))
            touched.add(cell)
        return cells[cell]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TopologyIndex(nodes={len(self._position_fns)}, {self.grid!r}, "
            f"quantum={self.quantum:g}, snapshots={len(self._snapshots)})"
        )
