"""Per-neighbour store-and-forward data transmitter (CDMA data channels).

Each node owns one :class:`DataLink`, which maintains an independent FCFS
queue per next-hop neighbour (the paper's "10 packets for one connection of
two adjacent mobile terminals") and transmits at the CSI-class rate sampled
at the start of each packet.  Because each directed link uses its own PN
code, transmissions on different links never contend — a link is simply
busy while serving its own queue.

Link-layer reliability: the receiver returns an ACK on the reverse PN code
(its bits count into routing overhead per the paper).  A missing ACK — the
neighbour moved out of the 250 m range — triggers a retry; after
``max_retries`` misses the link is declared broken and the routing
protocol's failure handler receives the failed packet plus everything still
queued on that link.

ACK-deadline and retry timers are armed through an optional shared
:class:`~repro.sim.timers.TimerWheel` (the batched MAC/ARQ backend): bulk
arm/cancel keyed on the engine's batch instants, one engine event per
distinct deadline instead of one heap entry per frame.  Without a wheel
every timer is a plain ``Simulator.schedule`` call — bit-for-bit the
scalar reference behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.metrics.collector import DropReason, MetricsCollector
from repro.net.packet import ACK_BYTES, DataPacket
from repro.net.queue import DropTailQueue, QueueDrop
from repro.sim.engine import Simulator
from repro.sim.timers import TimerWheel

if TYPE_CHECKING:  # pragma: no cover
    from repro.channel.model import ChannelModel

__all__ = ["DataLink", "DataLinkConfig"]

# (next_hop, failed_packet, still_queued_packets)
LinkFailureFn = Callable[[int, DataPacket, List[DataPacket]], None]
DeliverFn = Callable[[int, DataPacket, int], None]  # (receiver, packet, sender)


@dataclass(frozen=True)
class DataLinkConfig:
    """Data-plane tunables (paper values where given)."""

    queue_capacity: int = 10  # paper: 10 packets per adjacent-terminal connection
    max_residence_s: float = 3.0  # paper: 3 s maximum buffer time
    max_retries: int = 2
    retry_delay_s: float = 0.02
    ack_bytes: int = ACK_BYTES

    def __post_init__(self) -> None:
        if self.queue_capacity <= 0:
            raise ConfigurationError("queue_capacity must be positive")
        if self.max_residence_s <= 0:
            raise ConfigurationError("max_residence_s must be positive")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.retry_delay_s < 0:
            raise ConfigurationError("retry_delay_s must be >= 0")


class DataLink:
    """One node's data-channel transmitters, one queue per neighbour."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        channel: "ChannelModel",
        metrics: MetricsCollector,
        config: DataLinkConfig,
        deliver: DeliverFn,
        on_link_failure: LinkFailureFn,
        wheel: Optional[TimerWheel] = None,
        alive: Optional[Callable[[int], bool]] = None,
    ) -> None:
        self._node_id = node_id
        self._sim = sim
        self._channel = channel
        self._metrics = metrics
        self._config = config
        self._deliver = deliver
        self._on_link_failure = on_link_failure
        # Liveness oracle for fault injection (Network.is_alive): a dead
        # peer never ACKs and a dead sender abandons its own frames.  None
        # (the default, and every test harness without faults) means
        # everyone is alive — zero overhead on the reference path.
        self._alive = alive
        # ACK/retry timers: coalesced through the shared wheel when one is
        # attached (batched backend), straight heap entries otherwise.
        # Both callables share the (delay, fn, *args) signature.
        self._schedule = sim.schedule if wheel is None else wheel.arm
        self._queues: Dict[int, DropTailQueue[DataPacket]] = {}
        self._busy: Dict[int, bool] = {}
        # Bumped by shutdown(): ACK/retry events armed before a crash
        # carry their epoch and no-op (dropping their packet) if they fire
        # into a later one, so a crash cleanly abandons all in-flight ARQ.
        self._epoch = 0
        self.transmissions = 0

    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        """Owning node's id."""
        return self._node_id

    def queue_length(self, next_hop: int) -> int:
        """Packets queued for ``next_hop``."""
        q = self._queues.get(next_hop)
        return len(q) if q is not None else 0

    def total_queued(self) -> int:
        """Packets queued across all links (ABR's load signal)."""
        return sum(len(q) for q in self._queues.values())

    def is_busy(self, next_hop: int) -> bool:
        """True while a packet is in flight toward ``next_hop``."""
        return self._busy.get(next_hop, False)

    # ------------------------------------------------------------------
    def send(self, packet: DataPacket, next_hop: int) -> bool:
        """Queue ``packet`` on the link to ``next_hop``.

        Returns False if the 10-packet buffer was full (the packet is
        dropped and recorded, as in the paper's congestion-loss mechanism).
        """
        if next_hop == self._node_id:
            raise ConfigurationError("cannot send a packet to self")
        queue = self._queue_for(next_hop)
        ok = queue.push(packet, self._sim.now)
        if ok:
            self._pump(next_hop)
        return ok

    def flush(self, next_hop: int) -> List[DataPacket]:
        """Remove and return all packets queued toward ``next_hop``."""
        queue = self._queues.get(next_hop)
        return queue.flush() if queue is not None else []

    def shutdown(self) -> None:
        """Crash this node's data plane (fault injection seam).

        Every queued packet is dropped (NODE_DOWN), every link goes idle,
        and the epoch bump invalidates all in-flight ACK/retry events —
        when they fire they drop their packet instead of completing, so a
        crashed sender abandons its frames exactly once.  Recovery needs
        no symmetric call: the link restarts lazily on the next send().
        """
        self._epoch += 1
        for queue in self._queues.values():
            for packet in queue.flush():
                self._metrics.record_dropped(packet, DropReason.NODE_DOWN)
        self._busy.clear()

    # ------------------------------------------------------------------
    def _queue_for(self, next_hop: int) -> DropTailQueue:
        queue = self._queues.get(next_hop)
        if queue is None:
            queue = DropTailQueue(
                self._config.queue_capacity,
                self._config.max_residence_s,
                on_drop=self._record_queue_drop,
            )
            self._queues[next_hop] = queue
        return queue

    def _record_queue_drop(self, packet: DataPacket, reason: QueueDrop) -> None:
        if reason is QueueDrop.FULL:
            self._metrics.record_dropped(packet, DropReason.QUEUE_FULL)
        elif reason is QueueDrop.EXPIRED:
            self._metrics.record_dropped(packet, DropReason.RESIDENCE_TIMEOUT)

    def _pump(self, next_hop: int) -> None:
        if self._busy.get(next_hop, False):
            return
        queue = self._queues.get(next_hop)
        if queue is None:
            return
        packet = queue.pop(self._sim.now)
        if packet is None:
            return
        self._busy[next_hop] = True
        self._attempt(packet, next_hop, 0, self._epoch)

    def _attempt(
        self, packet: DataPacket, next_hop: int, retries: int, epoch: int
    ) -> None:
        if epoch != self._epoch:
            # Retry armed before a crash fired into a later epoch: the
            # packet was in flight (not queued), so this is its only drop.
            self._metrics.record_dropped(packet, DropReason.NODE_DOWN)
            return
        now = self._sim.now
        # The CSI class sampled at transmission start sets the rate for the
        # whole packet (ABICM holds a coding/modulation mode per packet).
        rate = self._channel.throughput_bps(self._node_id, next_hop, now)
        airtime = packet.size_bits / rate
        ack_time = self._config.ack_bytes * 8 / rate
        self._metrics.record_radio(tx_bits=packet.size_bits, now=now)
        self._metrics.record_node_radio(self._node_id, tx_bits=packet.size_bits)
        self._schedule(
            airtime + ack_time, self._complete, packet, next_hop, rate, retries, epoch
        )

    def _complete(
        self, packet: DataPacket, next_hop: int, rate: float, retries: int, epoch: int
    ) -> None:
        if epoch != self._epoch:
            # Sender crashed while this frame was on the air: abandon it.
            self._metrics.record_dropped(packet, DropReason.NODE_DOWN)
            return
        now = self._sim.now
        self.transmissions += 1
        peer_alive = self._alive is None or self._alive(next_hop)
        if peer_alive and self._channel.in_range(self._node_id, next_hop, now):
            # ACK received on the reverse PN code: receiver spends rx energy
            # on the data and tx energy on the ACK; the sender receives it.
            ack_bits = self._config.ack_bytes * 8
            self._metrics.record_ack(ack_bits, now=now)
            self._metrics.record_radio(
                tx_bits=ack_bits, rx_bits=packet.size_bits + ack_bits, now=now
            )
            self._metrics.record_node_radio(
                next_hop, tx_bits=ack_bits, rx_bits=packet.size_bits
            )
            self._metrics.record_node_radio(self._node_id, rx_bits=ack_bits)
            packet.record_hop(rate)
            self._busy[next_hop] = False
            self._deliver(next_hop, packet, self._node_id)
            self._pump(next_hop)
            return
        if retries < self._config.max_retries:
            self._metrics.record_event("datalink_retry")
            self._schedule(
                self._config.retry_delay_s,
                self._attempt,
                packet,
                next_hop,
                retries + 1,
                epoch,
            )
            return
        # Link broken: hand everything to the routing protocol.  A silent
        # peer is indistinguishable from an out-of-range one on the air —
        # the dead-next-hop tally below is bookkeeping, not protocol input.
        self._metrics.record_event("link_break_detected")
        if not peer_alive:
            self._metrics.record_dead_next_hop(1 + self.queue_length(next_hop))
        self._busy[next_hop] = False
        remaining = self.flush(next_hop)
        self._on_link_failure(next_hop, packet, remaining)
