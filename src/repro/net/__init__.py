"""Network substrate: packets, queues, nodes and the network container.

This package holds everything the paper's simulation environment needs that
is neither physical layer (:mod:`repro.channel`), medium access
(:mod:`repro.mac`) nor routing logic (:mod:`repro.routing`,
:mod:`repro.core`):

* :mod:`~repro.net.packet` — the data packet and the base packet type;
* :mod:`~repro.net.queue` — drop-tail FCFS queues with the paper's
  10-packet capacity and 3 s maximum-residence rule;
* :mod:`~repro.net.datalink` — per-neighbour store-and-forward transmitter
  with link-layer ACK, retry and break detection;
* :mod:`~repro.net.node` — a mobile terminal binding all layers together;
* :mod:`~repro.net.network` — the set of terminals plus topology queries.
"""

from repro.net.packet import Packet, DataPacket
from repro.net.queue import DropTailQueue, QueueDrop
from repro.net.node import Node
from repro.net.network import Network

__all__ = ["Packet", "DataPacket", "DropTailQueue", "QueueDrop", "Node", "Network"]
