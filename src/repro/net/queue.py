"""Drop-tail FCFS queues with a maximum-residence rule.

The paper's buffer model (Section III-A): each connection between two
adjacent terminals has a 10-packet data buffer; a packet may wait at most
3 seconds in a buffer before being discarded.  :class:`DropTailQueue`
implements exactly that and reports every drop with a reason so the metrics
layer can attribute losses the way the paper discusses them (congestion
versus residence timeout).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Generic, List, Optional, Tuple, TypeVar

from repro.errors import ConfigurationError

__all__ = ["DropTailQueue", "QueueDrop"]

T = TypeVar("T")


class QueueDrop(enum.Enum):
    """Why a packet left the queue without being served."""

    FULL = "queue_full"
    EXPIRED = "residence_timeout"
    FLUSHED = "flushed"


class DropTailQueue(Generic[T]):
    """Bounded FCFS queue with per-item residence timeout.

    Args:
        capacity: maximum queued items (paper: 10).
        max_residence: maximum seconds an item may wait; ``None`` disables
            the rule.  Expiry is enforced lazily on :meth:`pop` and
            :meth:`expire` (there is no per-item timer, keeping the event
            queue small).
        on_drop: optional callback ``(item, reason)`` invoked for every
            dropped item.
    """

    def __init__(
        self,
        capacity: int,
        max_residence: Optional[float] = None,
        on_drop: Optional[Callable[[T, QueueDrop], None]] = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"queue capacity must be positive, got {capacity}")
        if max_residence is not None and max_residence <= 0:
            raise ConfigurationError(f"max_residence must be positive, got {max_residence}")
        self._capacity = capacity
        self._max_residence = max_residence
        self._on_drop = on_drop
        self._items: Deque[Tuple[float, T]] = deque()
        self.drops_full = 0
        self.drops_expired = 0

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of queued items."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def is_full(self) -> bool:
        """True if a push would be dropped."""
        return len(self._items) >= self._capacity

    # ------------------------------------------------------------------
    def push(self, item: T, now: float) -> bool:
        """Enqueue ``item`` at time ``now``.

        Returns True on success; False if the queue was full (the item is
        dropped, ``on_drop`` fires with :attr:`QueueDrop.FULL`).
        """
        self.expire(now)
        if len(self._items) >= self._capacity:
            self.drops_full += 1
            self._drop(item, QueueDrop.FULL)
            return False
        self._items.append((now, item))
        return True

    def pop(self, now: float) -> Optional[T]:
        """Dequeue the oldest non-expired item, or None if empty."""
        self.expire(now)
        if not self._items:
            return None
        return self._items.popleft()[1]

    def peek(self, now: float) -> Optional[T]:
        """The item :meth:`pop` would return, without removing it."""
        self.expire(now)
        return self._items[0][1] if self._items else None

    def requeue_front(self, item: T, enqueued_at: float) -> None:
        """Put ``item`` back at the head, preserving its original arrival time.

        Used by the data link when a transmission fails and the packet will
        be retried: its residence clock must keep running from the original
        enqueue, or the 3 s rule would be defeated by retries.
        """
        self._items.appendleft((enqueued_at, item))

    def expire(self, now: float) -> int:
        """Drop all items older than the residence limit.  Returns count."""
        if self._max_residence is None:
            return 0
        dropped = 0
        deadline = now - self._max_residence
        while self._items and self._items[0][0] < deadline:
            _, item = self._items.popleft()
            self.drops_expired += 1
            dropped += 1
            self._drop(item, QueueDrop.EXPIRED)
        return dropped

    def flush(self) -> List[T]:
        """Remove and return all items (without firing ``on_drop``)."""
        items = [item for _, item in self._items]
        self._items.clear()
        return items

    def drain(self) -> List[Tuple[float, T]]:
        """Remove and return all ``(enqueue_time, item)`` pairs."""
        pairs = list(self._items)
        self._items.clear()
        return pairs

    def entries(self) -> List[Tuple[float, T]]:
        """Snapshot of ``(enqueue_time, item)`` pairs (oldest first)."""
        return list(self._items)

    @property
    def oldest_enqueue_time(self) -> Optional[float]:
        """Arrival time of the head item, or None if empty."""
        return self._items[0][0] if self._items else None

    # ------------------------------------------------------------------
    def _drop(self, item: T, reason: QueueDrop) -> None:
        if self._on_drop is not None:
            self._on_drop(item, reason)
