"""A mobile terminal: mobility + MAC + data link + routing in one object."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.errors import ConfigurationError
from repro.geometry.vector import Vec2
from repro.mac.csma import CsmaMac
from repro.mobility.base import MobilityModel
from repro.net.datalink import DataLink
from repro.net.packet import DataPacket, Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.routing.base import RoutingProtocol

__all__ = ["Node"]


class Node:
    """One mobile terminal.

    The node is mostly glue: it owns its mobility model, its common-channel
    MAC and its data-link transmitter, and dispatches received packets to
    the attached routing protocol.  The network container
    (:class:`repro.net.network.Network`) wires the pieces together.
    """

    def __init__(self, node_id: int, mobility: MobilityModel) -> None:
        self.id = node_id
        self.mobility = mobility
        self.mac: Optional[CsmaMac] = None  # set by Network
        self.datalink: Optional[DataLink] = None  # set by Network
        self.routing: Optional["RoutingProtocol"] = None  # set by attach_routing
        # One-entry memo: range/collision checks query many pairs at the
        # same instant, and trajectory evaluation is the simulator's
        # hottest path.  Correct because trajectories are pure functions
        # of time.
        self._pos_t = -1.0
        self._pos_v: Optional[Vec2] = None

    # ------------------------------------------------------------------
    def position(self, t: float) -> Vec2:
        """Exact position at simulation time ``t``."""
        if t == self._pos_t:
            return self._pos_v
        value = self.mobility.position(t)
        self._pos_t = t
        self._pos_v = value
        return value

    # ------------------------------------------------------------------
    def attach_routing(self, protocol: "RoutingProtocol") -> None:
        """Install the routing protocol instance driving this node."""
        self.routing = protocol

    # ------------------------------------------------------------------
    # Outbound
    # ------------------------------------------------------------------
    def send_control(self, packet: Packet) -> bool:
        """Broadcast a routing packet on the common channel."""
        if self.mac is None:
            raise ConfigurationError(f"node {self.id} has no MAC attached")
        return self.mac.send(packet)

    def send_data(self, packet: DataPacket, next_hop: int) -> bool:
        """Queue a data packet on the CDMA data channel toward ``next_hop``."""
        if self.datalink is None:
            raise ConfigurationError(f"node {self.id} has no data link attached")
        return self.datalink.send(packet, next_hop)

    # ------------------------------------------------------------------
    # Inbound (called by Network dispatch)
    # ------------------------------------------------------------------
    def receive_control(self, packet: Packet, from_id: int) -> None:
        """A routing packet arrived on the common channel."""
        if self.routing is not None:
            self.routing.handle_control(packet, from_id)

    def receive_data(self, packet: DataPacket, from_id: int) -> None:
        """A data packet arrived on a data channel."""
        if self.routing is not None:
            self.routing.handle_data(packet, from_id)

    def on_link_failure(self, next_hop: int, packet: DataPacket, queued: List[DataPacket]) -> None:
        """The data link exhausted retries toward ``next_hop``."""
        if self.routing is not None:
            self.routing.handle_link_failure(next_hop, packet, queued)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        proto = type(self.routing).__name__ if self.routing else "none"
        return f"Node(id={self.id}, routing={proto})"
