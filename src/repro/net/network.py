"""The network container: terminals, channel, medium and dispatch.

:class:`Network` assembles the simulation environment of the paper's
Section III-A: it owns the :class:`~repro.channel.model.ChannelModel`, the
:class:`~repro.mac.medium.CommonChannelMedium` and all
:class:`~repro.net.node.Node` objects, wires each node's MAC and data link
to the shared substrate, and answers topology queries (positions,
neighbour sets) for every layer.

Topology queries delegate to a :class:`~repro.topology.TopologyIndex` — a
uniform spatial hash grid over per-epoch-cached positions — so
``neighbors()`` costs a cell-neighbourhood scan instead of the seed's
O(n) mobility re-evaluation per query.  The ``Network`` methods remain
the stable facade; new code that needs richer queries (arbitrary radii,
bulk maps) can reach ``network.topology`` directly.

Control-plane dispatch is batched: the MAC resolves a whole broadcast
into one :class:`~repro.mac.csma.ReceptionBatch` and hands it to
:meth:`Network.deliver_control_batch`, which walks the surviving
receivers through a precomputed ``node_id -> handler`` table.  The table
snapshots each node's ``receive_control`` bound method the first time a
batch is dispatched (and is invalidated when nodes are added), so tests
and tools that stub a node's handler before the simulation starts are
still honoured, while steady-state dispatch costs one dict lookup and one
call per reception instead of a facade-method / node-lookup / attribute
chain.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.channel.model import ChannelConfig, ChannelModel
from repro.errors import ConfigurationError, TopologyError
from repro.geometry.field import Field
from repro.geometry.vector import Vec2
from repro.mac.bank import BackoffBank, ContentionScheduler
from repro.mac.csma import MAC_BACKENDS, CsmaMac, MacConfig, ReceptionBatch
from repro.mac.medium import CommonChannelMedium
from repro.metrics.collector import MetricsCollector
from repro.mobility.bank import MOBILITY_BACKENDS, MobilityBank
from repro.mobility.base import MobilityModel
from repro.net.datalink import DataLink, DataLinkConfig
from repro.net.node import Node
from repro.net.packet import DataPacket
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams, derive_seed
from repro.sim.timers import TimerWheel
from repro.topology import TopologyIndex

__all__ = ["Network"]


class Network:
    """All terminals plus the shared physical substrate."""

    def __init__(
        self,
        sim: Simulator,
        field: Field,
        streams: RandomStreams,
        metrics: MetricsCollector,
        channel_config: Optional[ChannelConfig] = None,
        mac_config: Optional[MacConfig] = None,
        datalink_config: Optional[DataLinkConfig] = None,
        position_epoch_s: float = 0.0,
        channel_backend: str = "vectorized",
        mac_backend: str = "scalar",
        mobility_backend: str = "scalar",
    ) -> None:
        self.sim = sim
        self.field = field
        self.streams = streams
        self.metrics = metrics
        channel_config = channel_config or ChannelConfig()
        self.topology = TopologyIndex(
            field,
            radius=channel_config.path_loss.tx_range,
            quantum=position_epoch_s,
        )
        # The channel reaches the topology index directly so neighbour-set
        # CSI queries can gather candidate positions as one array batch.
        self.channel = ChannelModel(
            channel_config,
            streams,
            self.position,
            backend=channel_backend,
            topology=self.topology,
        )
        self._mac_config = mac_config or MacConfig()
        self.medium = CommonChannelMedium(
            self.channel,
            cs_range_m=self._mac_config.cs_range_factor * self.channel.tx_range,
            topology=self.topology,
        )
        if mac_backend not in MAC_BACKENDS:
            raise ConfigurationError(
                f"unknown MAC backend {mac_backend!r}; known: {', '.join(MAC_BACKENDS)}"
            )
        self.mac_backend = mac_backend
        # Batched attempt scheduling: one BackoffBank + ContentionScheduler
        # shared by every node's MAC, and one TimerWheel coalescing the
        # data links' ACK/retry deadlines onto the same batch instants.
        # None in scalar mode — per-node scheduling, the reference path.
        self.mac_scheduler: Optional[ContentionScheduler] = None
        self.ack_wheel: Optional[TimerWheel] = None
        if mac_backend == "batched":
            bank = BackoffBank(derive_seed(streams.seed, "mac/backoff-bank"))
            self.mac_scheduler = ContentionScheduler(
                sim, self.medium, bank, slot_align_s=self._mac_config.slot_align_s
            )
            self.ack_wheel = TimerWheel(sim, quantum_s=self._mac_config.slot_align_s)
        if mobility_backend not in MOBILITY_BACKENDS:
            raise ConfigurationError(
                f"unknown mobility backend {mobility_backend!r}; "
                f"known: {', '.join(MOBILITY_BACKENDS)}"
            )
        self.mobility_backend = mobility_backend
        # Batched mobility: one MobilityBank holds every node's trajectory
        # as segment arrays; add_node re-homes each model onto a bank row
        # and the topology index builds snapshots from one coords_at call.
        # None in scalar mode — per-node models, the reference path.
        self.mobility_bank: Optional[MobilityBank] = None
        if mobility_backend == "batched":
            self.mobility_bank = MobilityBank(
                derive_seed(streams.seed, "mobility/bank"), field
            )
            self.topology.set_bulk_source(self.mobility_bank.coords_at)
        self._datalink_config = datalink_config or DataLinkConfig()
        self._nodes: Dict[int, Node] = {}
        # Fault state: node_id -> set of down-reasons ("churn", "energy",
        # ("blackout", idx), ...).  A node is down while its set is
        # non-empty, so overlapping fault causes compose and a node only
        # comes back when its *last* cause clears.  Empty sets are removed.
        self._down: Dict[int, set] = {}
        # Precomputed control-plane handler table (node_id -> bound
        # receive_control); built lazily on first batch dispatch so
        # handlers stubbed after construction are captured.
        self._control_handlers: Optional[Dict[int, Callable]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, mobility: MobilityModel, node_id: Optional[int] = None) -> Node:
        """Create a terminal with the given mobility model and wire it up."""
        nid = node_id if node_id is not None else len(self._nodes)
        if nid in self._nodes:
            raise TopologyError(f"node id {nid} already exists")
        if self.mobility_bank is not None:
            # Re-home the model onto a bank row: the node's position()
            # calls and the topology's bulk snapshot builds then read the
            # same segment arrays.
            mobility = self.mobility_bank.adopt(nid, mobility)
        node = Node(nid, mobility)
        node.mac = CsmaMac(
            node_id=nid,
            sim=self.sim,
            medium=self.medium,
            channel=self.channel,
            metrics=self.metrics,
            config=self._mac_config,
            rng=self.streams.stream(f"mac/{nid}"),
            dispatch=self.deliver_control_batch,
            neighbors=self.neighbors,
            scheduler=self.mac_scheduler,
        )
        node.datalink = DataLink(
            node_id=nid,
            sim=self.sim,
            channel=self.channel,
            metrics=self.metrics,
            config=self._datalink_config,
            deliver=self._deliver_data,
            # Late-bound so routing protocols (attached after construction)
            # and tests that stub the handler are always reached.
            on_link_failure=lambda nh, pkt, rest, n=node: n.on_link_failure(nh, pkt, rest),
            wheel=self.ack_wheel,
            alive=self.is_alive,
        )
        self._nodes[nid] = node
        self.topology.add(nid, node.position)
        self._control_handlers = None  # membership changed: rebuild on next batch
        return node

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    @property
    def node_ids(self) -> List[int]:
        """All node ids, ascending."""
        return sorted(self._nodes)

    @property
    def node_count(self) -> int:
        """Number of terminals."""
        return len(self._nodes)

    def node(self, node_id: int) -> Node:
        """Look up a node by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TopologyError(f"unknown node id {node_id}") from None

    def nodes(self) -> List[Node]:
        """All nodes, ascending by id."""
        return [self._nodes[nid] for nid in sorted(self._nodes)]

    def position(self, node_id: int, t: float) -> Vec2:
        """Position of ``node_id`` at time ``t`` (epoch-cached; exact when
        the index quantum is 0, the default)."""
        return self.topology.position(node_id, t)

    def neighbors(self, node_id: int, t: float) -> List[int]:
        """Ids of all nodes within transmission range of ``node_id`` at
        ``t``, ascending (grid-backed)."""
        return self.topology.neighbors(node_id, t)

    def adjacency(self, t: float) -> Dict[int, List[int]]:
        """Full neighbour map at time ``t`` (used by link-state install)."""
        return self.topology.neighbor_map(t)

    #: Alias for :meth:`adjacency` matching the topology-index vocabulary.
    neighbor_map = adjacency

    # ------------------------------------------------------------------
    # Fault injection (node up/down)
    # ------------------------------------------------------------------
    def is_alive(self, node_id: int) -> bool:
        """False while ``node_id`` is down for any reason."""
        return node_id not in self._down

    def fail_node(self, node_id: int, reason: object = "crash") -> bool:
        """Take ``node_id`` down ("radio off").

        The MAC stops transmitting, the data link drops its queues and
        abandons in-flight ARQ, the topology index hides the node from
        snapshots (so it leaves every neighbour set and delivery set), and
        the dispatch table stops routing receptions to it.  Routing state
        *on* the node is untouched — it decays through the protocols' own
        timeouts, never through oracle knowledge.

        Returns True if the node was up and is now down; False if it was
        already down (the extra ``reason`` is still recorded so recovery
        waits for every cause to clear).
        """
        node = self.node(node_id)
        reasons = self._down.get(node_id)
        if reasons is not None:
            reasons.add(reason)
            return False
        self._down[node_id] = {reason}
        node.mac.set_enabled(False)
        node.datalink.shutdown()
        self.topology.set_active(node_id, False)
        self._control_handlers = None
        return True

    def recover_node(self, node_id: int, reason: object = "crash") -> bool:
        """Clear one down-reason; the node restarts when the last clears.

        Returns True if this call actually brought the node back up.
        """
        self.node(node_id)
        reasons = self._down.get(node_id)
        if reasons is None:
            return False
        reasons.discard(reason)
        if reasons:
            return False
        del self._down[node_id]
        self._nodes[node_id].mac.set_enabled(True)
        self.topology.set_active(node_id, True)
        self._control_handlers = None
        return True

    # ------------------------------------------------------------------
    # Dispatch (MAC/data-link delivery callbacks)
    # ------------------------------------------------------------------
    def invalidate_dispatch(self) -> None:
        """Force the control-handler table to rebuild on the next batch.

        Call after replacing a node's ``receive_control`` handler once the
        simulation is already dispatching (rare; tests and tools that stub
        handlers before the first transmission never need it).
        """
        self._control_handlers = None

    def _build_control_handlers(self) -> Dict[int, Callable]:
        handlers = {
            nid: node.receive_control
            for nid, node in self._nodes.items()
            if nid not in self._down
        }
        self._control_handlers = handlers
        return handlers

    def deliver_control_batch(self, batch: ReceptionBatch) -> None:
        """Deliver one resolved broadcast to every surviving receiver.

        Receivers are visited in the order the MAC resolved them (the
        topology index returns neighbours ascending by id), so handler
        side effects — scheduled events, queued transmissions — happen in
        the same deterministic order as per-receiver dispatch did.
        """
        handlers = self._control_handlers
        if handlers is None:
            handlers = self._build_control_handlers()
        packet = batch.packet
        sender = batch.sender
        lost = batch.lost
        for receiver in batch.receivers:
            if receiver not in lost:
                # .get: a receiver resolved into the batch can be absent
                # from the table if it crashed (down nodes are excluded
                # when the table rebuilds) — a dead radio decodes nothing.
                handler = handlers.get(receiver)
                if handler is not None:
                    handler(packet, sender)

    def _deliver_data(self, receiver: int, packet: DataPacket, sender: int) -> None:
        self._nodes[receiver].receive_data(packet, sender)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Network(nodes={len(self._nodes)})"
