"""Packet types.

All packets carry an explicit ``size_bytes`` because both delay (data
channel transmission time) and routing overhead (common channel bit
counting) are driven by sizes.  The paper's data packet is 512 bytes.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.errors import PacketError

__all__ = ["Packet", "DataPacket", "DATA_PACKET_BYTES", "ACK_BYTES"]

#: Size of a data packet in bytes (paper Section III-A).
DATA_PACKET_BYTES = 512

#: Size of a link-layer data acknowledgment in bytes.  The paper counts ACK
#: bits into routing overhead but does not give a size; 20 bytes is a
#: typical compact link-layer ACK.
ACK_BYTES = 20

_packet_uid = itertools.count(1)


class Packet:
    """Base packet: every transmittable unit has a size and a unique id."""

    __slots__ = ("uid", "size_bytes", "created_at")

    kind = "packet"

    def __init__(self, size_bytes: int, created_at: float) -> None:
        if size_bytes <= 0:
            raise PacketError(f"packet size must be positive, got {size_bytes}")
        self.uid = next(_packet_uid)
        self.size_bytes = int(size_bytes)
        self.created_at = float(created_at)

    @property
    def size_bits(self) -> int:
        """Packet size in bits."""
        return self.size_bytes * 8

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(uid={self.uid}, {self.size_bytes}B)"


class DataPacket(Packet):
    """An application data packet travelling hop by hop.

    Besides addressing, the packet accumulates the measurements the paper's
    route-quality metrics need: the number of hops actually traversed and
    the throughput of every link it crossed (Figure 5).  The ``update_flag``
    marks the first packet sent after a RICA route switch (Section II-C).
    """

    __slots__ = (
        "src",
        "dst",
        "seq",
        "flow_id",
        "hops_traversed",
        "link_rates_bps",
        "update_flag",
    )

    kind = "data"

    def __init__(
        self,
        src: int,
        dst: int,
        seq: int,
        created_at: float,
        size_bytes: int = DATA_PACKET_BYTES,
        flow_id: Optional[int] = None,
    ) -> None:
        super().__init__(size_bytes, created_at)
        if src == dst:
            raise PacketError(f"data packet src == dst == {src}")
        self.src = src
        self.dst = dst
        self.seq = seq
        self.flow_id = flow_id if flow_id is not None else -1
        self.hops_traversed = 0
        self.link_rates_bps: List[float] = []
        self.update_flag = False

    def record_hop(self, rate_bps: float) -> None:
        """Record the successful traversal of one link at ``rate_bps``."""
        self.hops_traversed += 1
        self.link_rates_bps.append(rate_bps)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DataPacket(uid={self.uid}, {self.src}->{self.dst}, seq={self.seq}, "
            f"hops={self.hops_traversed})"
        )
