"""Immutable 2-D vectors.

A tiny, allocation-light vector type used for terminal positions and
velocities.  Kept deliberately simple — the hot paths of the simulator work
with the raw ``x``/``y`` floats.
"""

from __future__ import annotations

import math
from typing import Iterator, NamedTuple

__all__ = ["Vec2", "distance"]


class Vec2(NamedTuple):
    """An immutable 2-D point/vector in metres."""

    x: float
    y: float

    def __add__(self, other: "Vec2") -> "Vec2":  # type: ignore[override]
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def scaled(self, k: float) -> "Vec2":
        """Return this vector scaled by ``k``."""
        return Vec2(self.x * k, self.y * k)

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def lerp(self, other: "Vec2", t: float) -> "Vec2":
        """Linear interpolation: ``self`` at t=0, ``other`` at t=1."""
        return Vec2(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)

    def unit(self) -> "Vec2":
        """Unit vector in this direction (zero vector maps to zero)."""
        n = self.norm()
        if n == 0.0:
            return Vec2(0.0, 0.0)
        return Vec2(self.x / n, self.y / n)

    def __iter__(self) -> Iterator[float]:  # NamedTuple already iterable; kept for clarity
        yield self.x
        yield self.y


def distance(a: Vec2, b: Vec2) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a.x - b.x, a.y - b.y)
