"""Uniform spatial hash grid over a rectangular field.

Pure geometry: cell indexing, the cell neighbourhood covering a radius
query, and bulk distance helpers.  The grid knows nothing about time or
nodes — :class:`repro.topology.TopologyIndex` layers position caching and
neighbour-set maintenance on top of it.

Coordinates are clamped onto the field before indexing.  Clamping is
monotone and 1-Lipschitz per axis, so for any query point ``q`` and radius
``r``, every point within ``r`` of ``q`` lands in a cell inside
:meth:`UniformGrid.cells_near(q, r)` — stray positions slightly outside
the field are binned into the border cells and still found.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Tuple

from repro.errors import ConfigurationError
from repro.geometry.vector import Vec2

__all__ = ["UniformGrid", "bulk_distances"]

Cell = Tuple[int, int]


class UniformGrid:
    """Cell math for an axis-aligned ``[0, width] x [0, height]`` grid."""

    __slots__ = ("width", "height", "cell_size", "cols", "rows")

    def __init__(self, width: float, height: float, cell_size: float) -> None:
        if width <= 0 or height <= 0:
            raise ConfigurationError(f"grid extent must be positive, got {width}x{height}")
        if cell_size <= 0:
            raise ConfigurationError(f"cell size must be positive, got {cell_size}")
        self.width = float(width)
        self.height = float(height)
        self.cell_size = float(cell_size)
        self.cols = max(1, math.ceil(self.width / self.cell_size))
        self.rows = max(1, math.ceil(self.height / self.cell_size))

    @property
    def cell_count(self) -> int:
        """Total number of cells."""
        return self.cols * self.rows

    def _col(self, x: float) -> int:
        c = int(min(max(x, 0.0), self.width) / self.cell_size)
        return min(c, self.cols - 1)

    def _row(self, y: float) -> int:
        r = int(min(max(y, 0.0), self.height) / self.cell_size)
        return min(r, self.rows - 1)

    def cell_of(self, p: Vec2) -> Cell:
        """The ``(col, row)`` cell containing ``p`` (clamped onto the field)."""
        return (self._col(p.x), self._row(p.y))

    def cells_near(self, p: Vec2, radius: float) -> Iterator[Cell]:
        """Every cell that can contain a point within ``radius`` of ``p``."""
        lo_c = self._col(p.x - radius)
        hi_c = self._col(p.x + radius)
        lo_r = self._row(p.y - radius)
        hi_r = self._row(p.y + radius)
        for col in range(lo_c, hi_c + 1):
            for row in range(lo_r, hi_r + 1):
                yield (col, row)

    def reach_for(self, radius: float) -> int:
        """Cells per axis a ``radius`` query must reach beyond its own cell.

        ``ceil(radius / cell_size)`` covers any origin within the cell:
        clamping is 1-Lipschitz per axis, so a point within ``radius``
        of any origin in cell ``c`` lands at most ``reach`` cells away.
        """
        return math.ceil(radius / self.cell_size) if radius > 0 else 0

    def cell_block(self, cell: Cell, reach: int) -> Iterator[Cell]:
        """The clamped ``(2*reach + 1)²`` block of cells around ``cell``."""
        col, row = cell
        for c in range(max(0, col - reach), min(self.cols - 1, col + reach) + 1):
            for w in range(max(0, row - reach), min(self.rows - 1, row + reach) + 1):
                yield (c, w)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"UniformGrid({self.cols}x{self.rows} cells of {self.cell_size:.0f}m)"


def bulk_distances(origin: Vec2, points: Iterable[Vec2]) -> List[float]:
    """Distances from ``origin`` to each point, in input order."""
    ox, oy = origin.x, origin.y
    hypot = math.hypot
    return [hypot(ox - p.x, oy - p.y) for p in points]
