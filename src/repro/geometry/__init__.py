"""2-D geometry primitives: vectors, the rectangular field, spatial grid."""

from repro.geometry.vector import Vec2, distance
from repro.geometry.field import Field
from repro.geometry.grid import UniformGrid, bulk_distances

__all__ = ["Vec2", "distance", "Field", "UniformGrid", "bulk_distances"]
