"""2-D geometry primitives: vectors and the rectangular simulation field."""

from repro.geometry.vector import Vec2, distance
from repro.geometry.field import Field

__all__ = ["Vec2", "distance", "Field"]
