"""The rectangular simulation field.

The paper's testing field is 1000 m x 1000 m.  The field knows how to draw
uniform random points within itself and how to clamp stray coordinates (a
safety net for mobility models).
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.errors import ConfigurationError
from repro.geometry.vector import Vec2

__all__ = ["Field"]


class Field:
    """An axis-aligned rectangle ``[0, width] x [0, height]`` in metres."""

    def __init__(self, width: float = 1000.0, height: float = 1000.0) -> None:
        if width <= 0 or height <= 0:
            raise ConfigurationError(f"field dimensions must be positive, got {width}x{height}")
        self.width = float(width)
        self.height = float(height)

    @property
    def area(self) -> float:
        """Field area in square metres."""
        return self.width * self.height

    @property
    def diagonal(self) -> float:
        """Length of the field diagonal (an upper bound on any distance)."""
        return (self.width**2 + self.height**2) ** 0.5

    def contains(self, p: Vec2, eps: float = 1e-9) -> bool:
        """True if ``p`` lies inside the field (with tolerance ``eps``)."""
        return -eps <= p.x <= self.width + eps and -eps <= p.y <= self.height + eps

    def clamp(self, p: Vec2) -> Vec2:
        """Project ``p`` onto the field."""
        return Vec2(min(max(p.x, 0.0), self.width), min(max(p.y, 0.0), self.height))

    def random_point(self, rng: random.Random) -> Vec2:
        """Uniform random point inside the field."""
        return Vec2(rng.uniform(0.0, self.width), rng.uniform(0.0, self.height))

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(width, height)``."""
        return (self.width, self.height)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Field({self.width:.0f}m x {self.height:.0f}m)"
