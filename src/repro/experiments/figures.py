"""Figure presets: one runnable experiment per paper figure panel.

Every table/figure in the paper's evaluation (Figures 2-6) has a
:class:`FigureSpec` here.  ``run_figure`` executes it (scaled down by
default so the whole harness runs on a laptop; ``paper_scale=True``
restores the full 500 s x 25-trial x 7-speed grid) and returns a
:class:`FigureResult` whose ``format_table()`` prints the same rows or
series the paper plots.  EXPERIMENTS.md records paper-vs-measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import AggregateMetrics
from repro.analysis.tables import format_series, format_table
from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweep import run_speed_sweep, run_trials
from repro.routing.registry import available_protocols

__all__ = ["FigureSpec", "FigureResult", "figure_spec", "list_figures", "run_figure"]

#: Mean-speed grid (km/h).  The paper sweeps 0-72 km/h.
PAPER_SPEEDS_KMH = [0.0, 12.0, 24.0, 36.0, 48.0, 60.0, 72.0]
QUICK_SPEEDS_KMH = [0.0, 24.0, 48.0, 72.0]

#: The mobility used for the route-quality bars (paper: 72 km/h) and, by
#: our documented assumption, the Figure 6 time series (moderate mobility).
FIG5_SPEED_KMH = 72.0
FIG6_SPEED_KMH = 36.0


@dataclass(frozen=True)
class FigureSpec:
    """One paper figure panel and how to regenerate it."""

    figure_id: str
    title: str
    kind: str  # "speed_sweep" | "bar" | "timeseries"
    metric: str  # attribute of AggregateMetrics
    rate_pps: float
    protocols: Sequence[str] = field(default_factory=available_protocols)
    speeds_kmh: Optional[Sequence[float]] = None  # speed_sweep only
    fixed_speed_kmh: float = FIG5_SPEED_KMH  # bar / timeseries
    paper_expectation: str = ""


@dataclass
class FigureResult:
    """Executed figure: per-protocol aggregates plus rendering helpers."""

    spec: FigureSpec
    speeds_kmh: List[float]
    per_protocol: Dict[str, List[AggregateMetrics]]
    duration_s: float
    trials: int

    def metric_rows(self) -> List[List[object]]:
        """Table rows: one per speed (sweeps) or one per protocol (bars)."""
        metric = self.spec.metric
        if self.spec.kind == "speed_sweep":
            rows = []
            for i, speed in enumerate(self.speeds_kmh):
                row: List[object] = [speed]
                for proto in self.spec.protocols:
                    row.append(getattr(self.per_protocol[proto][i], metric))
                rows.append(row)
            return rows
        return [
            [proto, getattr(self.per_protocol[proto][0], metric)]
            for proto in self.spec.protocols
        ]

    def series(self, protocol: str) -> List[float]:
        """Throughput time series for ``protocol`` (timeseries figures)."""
        return self.per_protocol[protocol][0].throughput_series_kbps

    def value(self, protocol: str, speed_kmh: Optional[float] = None) -> float:
        """The plotted metric for ``protocol`` (at ``speed_kmh`` if a sweep)."""
        aggs = self.per_protocol[protocol]
        if self.spec.kind != "speed_sweep" or speed_kmh is None:
            return getattr(aggs[0], self.spec.metric)
        idx = self.speeds_kmh.index(speed_kmh)
        return getattr(aggs[idx], self.spec.metric)

    def format_table(self) -> str:
        """ASCII rendering in the shape the paper plots."""
        title = f"{self.spec.figure_id}: {self.spec.title} (duration={self.duration_s:.0f}s, trials={self.trials})"
        if self.spec.kind == "speed_sweep":
            headers = ["speed_kmh"] + list(self.spec.protocols)
            return format_table(headers, self.metric_rows(), title)
        if self.spec.kind == "bar":
            return format_table(["protocol", self.spec.metric], self.metric_rows(), title)
        # timeseries
        blocks = [title]
        bin_s = 4.0
        for proto in self.spec.protocols:
            series = self.series(proto)
            times = [i * bin_s for i in range(len(series))]
            blocks.append(format_series(f"{proto} (kbps per {bin_s:.0f}s bin)", times, series))
        return "\n".join(blocks)


_SPECS: Dict[str, FigureSpec] = {}


def _register(spec: FigureSpec) -> None:
    _SPECS[spec.figure_id] = spec


_register(
    FigureSpec(
        figure_id="fig2a",
        title="Average end-to-end delay vs speed, 10 pkt/s",
        kind="speed_sweep",
        metric="avg_delay_ms",
        rate_pps=10.0,
        paper_expectation=(
            "RICA lowest, BGCA close behind; ABR delay grows with speed; "
            "link state competitive when static, degrades sharply with mobility"
        ),
    )
)
_register(
    FigureSpec(
        figure_id="fig2b",
        title="Average end-to-end delay vs speed, 20 pkt/s",
        kind="speed_sweep",
        metric="avg_delay_ms",
        rate_pps=20.0,
        paper_expectation="same ordering as fig2a at higher load",
    )
)
_register(
    FigureSpec(
        figure_id="fig3a",
        title="Successful delivery percentage vs speed, 10 pkt/s",
        kind="speed_sweep",
        metric="delivery_pct",
        rate_pps=10.0,
        paper_expectation="RICA > BGCA > ABR > AODV; link state collapses with speed",
    )
)
_register(
    FigureSpec(
        figure_id="fig3b",
        title="Successful delivery percentage vs speed, 20 pkt/s",
        kind="speed_sweep",
        metric="delivery_pct",
        rate_pps=20.0,
        paper_expectation="same ordering as fig3a, lower absolute levels",
    )
)
_register(
    FigureSpec(
        figure_id="fig4a",
        title="Routing overhead (kbps) vs speed, 10 pkt/s",
        kind="speed_sweep",
        metric="overhead_kbps",
        rate_pps=10.0,
        paper_expectation="ABR < AODV < BGCA (~1.5x AODV) < RICA (~4x AODV) << link state",
    )
)
_register(
    FigureSpec(
        figure_id="fig4b",
        title="Routing overhead (kbps) vs speed, 20 pkt/s",
        kind="speed_sweep",
        metric="overhead_kbps",
        rate_pps=20.0,
        paper_expectation="as fig4a; load has little influence on overhead",
    )
)
_register(
    FigureSpec(
        figure_id="fig5a",
        title="Average link throughput per protocol (72 km/h)",
        kind="bar",
        metric="avg_link_throughput_kbps",
        rate_pps=10.0,
        fixed_speed_kmh=FIG5_SPEED_KMH,
        paper_expectation="link state highest; RICA >= BGCA well above ABR ~ AODV",
    )
)
_register(
    FigureSpec(
        figure_id="fig5b",
        title="Average number of hops per protocol (72 km/h)",
        kind="bar",
        metric="avg_hops",
        rate_pps=10.0,
        fixed_speed_kmh=FIG5_SPEED_KMH,
        paper_expectation="link state highest (loops); ABR longer than AODV/BGCA; RICA lowest",
    )
)
_register(
    FigureSpec(
        figure_id="fig6a",
        title="Aggregate network throughput vs time, 20 pkt/s",
        kind="timeseries",
        metric="throughput_series_kbps",
        rate_pps=20.0,
        fixed_speed_kmh=FIG6_SPEED_KMH,
        paper_expectation="BGCA and RICA on top throughout",
    )
)
_register(
    FigureSpec(
        figure_id="fig6b",
        title="Aggregate network throughput vs time, 60 pkt/s",
        kind="timeseries",
        metric="throughput_series_kbps",
        rate_pps=60.0,
        fixed_speed_kmh=FIG6_SPEED_KMH,
        paper_expectation="BGCA and RICA on top; gap widens at high load",
    )
)


def list_figures() -> List[str]:
    """All figure ids, in paper order."""
    return sorted(_SPECS)


def figure_spec(figure_id: str) -> FigureSpec:
    """Look up a figure's spec."""
    try:
        return _SPECS[figure_id]
    except KeyError:
        known = ", ".join(sorted(_SPECS))
        raise ConfigurationError(f"unknown figure {figure_id!r}; known: {known}") from None


def run_figure(
    figure_id: str,
    duration_s: Optional[float] = None,
    trials: Optional[int] = None,
    seed: int = 1,
    paper_scale: bool = False,
    protocols: Optional[Sequence[str]] = None,
    speeds_kmh: Optional[Sequence[float]] = None,
    n_nodes: Optional[int] = None,
) -> FigureResult:
    """Execute one figure experiment.

    Scaled-down defaults (30 s, 2 trials, 4 speeds) keep the harness fast;
    ``paper_scale=True`` restores 500 s, 25 trials and the 7-speed grid.
    """
    spec = figure_spec(figure_id)
    if paper_scale:
        duration = duration_s or 500.0
        n_trials = trials or 25
        speeds = list(speeds_kmh or spec.speeds_kmh or PAPER_SPEEDS_KMH)
    else:
        duration = duration_s or 30.0
        n_trials = trials or 2
        speeds = list(speeds_kmh or spec.speeds_kmh or QUICK_SPEEDS_KMH)
    protos = list(protocols or spec.protocols)
    spec = replace(spec, protocols=protos)  # result renders what actually ran
    base = ScenarioConfig(
        rate_pps=spec.rate_pps,
        duration_s=duration,
        seed=seed,
        n_nodes=n_nodes or 50,
    )
    if spec.kind == "speed_sweep":
        per_protocol = run_speed_sweep(base, protos, speeds, trials=n_trials)
        return FigureResult(spec, speeds, per_protocol, duration, n_trials)
    # bar / timeseries: single fixed speed
    speed = spec.fixed_speed_kmh
    per_protocol = {
        name: [run_trials(base.with_(protocol=name, mean_speed_kmh=speed), n_trials)]
        for name in protos
    }
    return FigureResult(spec, [speed], per_protocol, duration, n_trials)
