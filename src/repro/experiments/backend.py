"""Pluggable execution backends for campaign/sweep grids.

A campaign is an embarrassingly parallel list of independent grid cells:
each cell's trial seeds are derived from the *cell's own* scenario config
(``derive_seed(config.seed, "trial/i")``), never from execution order, so
any backend that preserves result order produces output identical to the
serial run.  :class:`SerialBackend` runs cells in-process;
:class:`ProcessPoolBackend` fans them out over a ``multiprocessing`` pool
(``repro campaign --jobs N`` on the CLI).

The work function handed to :meth:`ExecutionBackend.map` must be a
module-level callable and its items picklable (the process pool ships
both to workers).
"""

from __future__ import annotations

import multiprocessing
import sys
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "resolve_backend",
]


class ExecutionBackend(ABC):
    """Strategy for executing a list of independent work items."""

    @abstractmethod
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> Iterator[Any]:
        """Apply ``fn`` to every item, yielding results in item order.

        Lazy: results stream out as they complete (in order), so callers
        can report progress while later items are still running.
        """


class SerialBackend(ExecutionBackend):
    """Run every cell in the calling process, one after another."""

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> Iterator[Any]:
        for item in items:
            yield fn(item)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "SerialBackend()"


class ProcessPoolBackend(ExecutionBackend):
    """Fan cells out over a process pool.

    Results are streamed with ``Pool.imap``, which preserves submission
    order — combined with per-cell seed derivation this makes parallel
    runs byte-identical to serial ones.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> Iterator[Any]:
        items = list(items)
        workers = min(self.jobs, len(items))
        if workers <= 1:
            for item in items:
                yield fn(item)
            return
        # Fork inherits sys.path and imported state but is only reliably
        # safe on Linux (macOS system frameworks are fork-hostile, which
        # is why CPython switched the darwin default to spawn).
        method = "fork" if sys.platform == "linux" else None
        ctx = multiprocessing.get_context(method)
        with ctx.Pool(processes=workers) as pool:
            yield from pool.imap(fn, items, chunksize=1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ProcessPoolBackend(jobs={self.jobs})"


def resolve_backend(
    backend: Optional[ExecutionBackend] = None, jobs: Optional[int] = None
) -> ExecutionBackend:
    """Pick the backend: an explicit instance wins, then ``jobs``, then serial."""
    if backend is not None:
        if jobs is not None:
            raise ConfigurationError("pass either backend or jobs, not both")
        return backend
    if jobs is None or jobs <= 1:
        return SerialBackend()
    return ProcessPoolBackend(jobs)
