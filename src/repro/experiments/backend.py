"""Pluggable, fault-tolerant execution backends for campaign/sweep grids.

A campaign is an embarrassingly parallel list of independent grid cells:
each cell's trial seeds are derived from the *cell's own* scenario config
(``derive_seed(config.seed, "trial/i")``), never from execution order or
attempt number, so any backend that preserves result order produces
output identical to the serial run — including a retried cell, which
re-runs with the exact seeds of its first attempt.

:class:`SerialBackend` runs cells in-process; :class:`ProcessPoolBackend`
fans them out over a ``concurrent.futures`` process pool (``repro
campaign --jobs N`` on the CLI) and survives the three real-world
campaign killers:

* a cell raising an exception (retried with exponential backoff);
* a worker process dying — OOM kill, segfault, ``kill -9`` — which
  surfaces as :class:`BrokenProcessPool` and poisons the whole pool;
* a cell hanging forever (bounded by ``RetryPolicy.cell_timeout_s``).

The fault-tolerant entry point is :meth:`ExecutionBackend.map_outcomes`,
which yields one :class:`CellOutcome` per item, in item order — either a
value or a structured :class:`CellFailure` after retries are exhausted.
:meth:`ExecutionBackend.map` is the strict wrapper (raise on first
failure), byte-compatible with the historical interface.

The work function handed to either must be a module-level callable and
its items picklable (the process pool ships both to workers).
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.errors import ConfigurationError, ExecutionError

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "RetryPolicy",
    "CellFailure",
    "CellOutcome",
    "resolve_backend",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How hard a backend fights for each cell before giving up.

    The defaults (no retries, no timeout) reproduce the historical
    fail-fast behaviour exactly; ``repro campaign --max-retries/
    --cell-timeout`` turns resilience on.
    """

    #: Extra attempts per cell after the first (0 = fail fast).
    max_retries: int = 0
    #: First retry waits this long; subsequent retries multiply by
    #: ``backoff_factor`` (exponential backoff).
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    #: Wall-clock bound on one cell attempt (None = unbounded).  Enforced
    #: by the process-pool backend, which can kill a hung worker; the
    #: serial backend cannot interrupt in-process work and ignores it.
    cell_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ConfigurationError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ConfigurationError("cell_timeout_s must be positive (or None)")

    def backoff_s(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (0-based)."""
        return self.backoff_base_s * self.backoff_factor**attempt


@dataclass
class CellFailure:
    """Terminal failure of one grid cell, after all retries."""

    index: int
    #: "exception" (fn raised), "timeout" (cell_timeout_s exceeded) or
    #: "worker_crash" (the worker process died).
    kind: str
    error: str
    attempts: int
    #: The original exception for "exception" failures (not serialised).
    exception: Optional[BaseException] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly rendering for failure reports."""
        return {
            "kind": self.kind,
            "error": self.error,
            "attempts": self.attempts,
        }

    def to_exception(self) -> BaseException:
        """The exception strict ``map`` raises for this failure."""
        if self.exception is not None and self.kind == "exception":
            return self.exception
        return ExecutionError(
            f"cell {self.index} failed ({self.kind} after "
            f"{self.attempts} attempt(s)): {self.error}",
            failure=self,
        )


@dataclass
class CellOutcome:
    """Result of one grid cell: a value, or a structured failure."""

    index: int
    value: Any = None
    failure: Optional[CellFailure] = None

    @property
    def ok(self) -> bool:
        """True when the cell produced a value."""
        return self.failure is None


class ExecutionBackend(ABC):
    """Strategy for executing a list of independent work items."""

    @abstractmethod
    def map_outcomes(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[CellOutcome]:
        """Apply ``fn`` to every item, yielding outcomes in item order.

        Lazy: outcomes stream out as they complete (in order), so callers
        can report progress while later items are still running.  Never
        raises for a cell failure — the failure rides in the outcome.
        """

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> Iterator[Any]:
        """Strict variant: yield bare values, raise on the first failure."""
        for outcome in self.map_outcomes(fn, items):
            if outcome.failure is not None:
                raise outcome.failure.to_exception()
            yield outcome.value


def _serial_outcomes(
    fn: Callable[[Any], Any], items: Sequence[Any], policy: RetryPolicy
) -> Iterator[CellOutcome]:
    """In-process execution with the retry half of the policy."""
    for idx, item in enumerate(items):
        attempts = 0
        while True:
            attempts += 1
            try:
                value = fn(item)
            except Exception as exc:  # noqa: BLE001 - boundary by design
                if attempts > policy.max_retries:
                    yield CellOutcome(
                        idx,
                        failure=CellFailure(idx, "exception", repr(exc), attempts, exc),
                    )
                    break
                time.sleep(policy.backoff_s(attempts - 1))
            else:
                yield CellOutcome(idx, value=value)
                break


class SerialBackend(ExecutionBackend):
    """Run every cell in the calling process, one after another."""

    def __init__(self, policy: Optional[RetryPolicy] = None) -> None:
        self.policy = policy or RetryPolicy()

    def map_outcomes(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[CellOutcome]:
        return _serial_outcomes(fn, items, self.policy)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "SerialBackend()"


class ProcessPoolBackend(ExecutionBackend):
    """Fan cells out over a process pool, surviving worker failures.

    Results stream in submission order — combined with per-cell seed
    derivation this makes parallel runs byte-identical to serial ones.
    Cells that raise are resubmitted in place (the pool keeps serving the
    others); a worker *crash* or cell *timeout* poisons the executor, so
    the backend harvests every finished result, tears the pool down
    (terminating stragglers), and rebuilds it for the unresolved cells.
    After ``max_retries`` such incidents the survivors run one-per-
    executor, so a crash is attributed to exactly the cell that caused it.
    """

    def __init__(self, jobs: int, policy: Optional[RetryPolicy] = None) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.policy = policy or RetryPolicy()

    # ------------------------------------------------------------------
    def map_outcomes(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[CellOutcome]:
        items = list(items)
        if not items:
            return
        policy = self.policy
        workers = min(self.jobs, len(items))
        if workers <= 1 and policy.cell_timeout_s is None:
            # No parallelism and no need for a killable worker: stay
            # in-process (also keeps fn/items pickling out of the path).
            yield from _serial_outcomes(fn, items, policy)
            return
        ctx = self._mp_context()
        outcomes: Dict[int, CellOutcome] = {}
        attempts = [0] * len(items)
        unresolved = list(range(len(items)))
        incidents = 0
        next_emit = 0
        executor: Optional[ProcessPoolExecutor] = None
        try:
            while next_emit < len(items):
                if unresolved and incidents > policy.max_retries:
                    # Pool kept dying: exact-attribution fallback, one
                    # cell per single-worker executor.
                    for idx in unresolved:
                        outcomes[idx] = self._run_isolated(
                            ctx, fn, items[idx], idx, attempts
                        )
                    unresolved = []
                elif unresolved:
                    executor = ProcessPoolExecutor(
                        max_workers=min(workers, len(unresolved)), mp_context=ctx
                    )
                    incident = self._run_round(
                        executor, fn, items, unresolved, attempts, outcomes
                    )
                    if incident is None:
                        executor.shutdown(wait=True)
                        executor = None
                        unresolved = []
                    else:
                        self._teardown(executor)
                        executor = None
                        incidents += 1
                        unresolved = [i for i in unresolved if i not in outcomes]
                        if unresolved and incidents <= policy.max_retries:
                            time.sleep(policy.backoff_s(incidents - 1))
                while next_emit < len(items) and next_emit in outcomes:
                    yield outcomes.pop(next_emit)
                    next_emit += 1
        finally:
            # The historical leak: a consumer abandoning the generator
            # mid-iteration (or a raised failure in strict map) must not
            # strand a live executor.
            if executor is not None:
                self._teardown(executor)

    # ------------------------------------------------------------------
    def _run_round(
        self,
        executor: ProcessPoolExecutor,
        fn: Callable[[Any], Any],
        items: List[Any],
        unresolved: List[int],
        attempts: List[int],
        outcomes: Dict[int, CellOutcome],
    ) -> Optional[str]:
        """Submit every unresolved cell; collect results in index order.

        Returns None when the round fully resolved (every cell got a
        value or a recorded exception-failure), or the incident kind
        ("worker_crash"/"timeout") that poisoned the pool — in which case
        finished results are harvested and the suspect cell is charged.
        """
        policy = self.policy
        futures = {idx: executor.submit(fn, items[idx]) for idx in unresolved}
        for idx in unresolved:
            while idx not in outcomes:
                future = futures[idx]
                try:
                    value = future.result(timeout=policy.cell_timeout_s)
                except BrokenProcessPool as exc:
                    self._harvest(futures, unresolved, attempts, outcomes, skip=idx)
                    self._charge_incident(idx, "worker_crash", exc, attempts, outcomes)
                    return "worker_crash"
                except FuturesTimeout as exc:
                    if future.done():
                        # Python >= 3.11 aliases futures' TimeoutError to
                        # the builtin: a done future means fn itself
                        # raised TimeoutError — an ordinary cell error.
                        if self._charge_error(idx, exc, attempts, outcomes):
                            break
                        time.sleep(policy.backoff_s(attempts[idx] - 1))
                        futures[idx] = executor.submit(fn, items[idx])
                        continue
                    self._harvest(futures, unresolved, attempts, outcomes, skip=idx)
                    self._charge_incident(idx, "timeout", exc, attempts, outcomes)
                    return "timeout"
                except Exception as exc:  # noqa: BLE001 - fn raised in worker
                    if self._charge_error(idx, exc, attempts, outcomes):
                        break
                    time.sleep(policy.backoff_s(attempts[idx] - 1))
                    futures[idx] = executor.submit(fn, items[idx])
                else:
                    attempts[idx] += 1
                    outcomes[idx] = CellOutcome(idx, value=value)
        return None

    def _charge_error(
        self,
        idx: int,
        exc: BaseException,
        attempts: List[int],
        outcomes: Dict[int, CellOutcome],
    ) -> bool:
        """Count one failed attempt; record the failure when exhausted.

        Returns True when the cell is terminally failed (caller stops
        retrying it).
        """
        attempts[idx] += 1
        if attempts[idx] > self.policy.max_retries:
            outcomes[idx] = CellOutcome(
                idx,
                failure=CellFailure(idx, "exception", repr(exc), attempts[idx], exc),
            )
            return True
        return False

    def _charge_incident(
        self,
        idx: int,
        kind: str,
        exc: BaseException,
        attempts: List[int],
        outcomes: Dict[int, CellOutcome],
    ) -> None:
        """Charge the cell we were waiting on when the pool went down."""
        attempts[idx] += 1
        if attempts[idx] > self.policy.max_retries:
            outcomes[idx] = CellOutcome(
                idx, failure=CellFailure(idx, kind, repr(exc), attempts[idx])
            )

    def _harvest(
        self,
        futures: Dict[int, Any],
        unresolved: List[int],
        attempts: List[int],
        outcomes: Dict[int, CellOutcome],
        skip: int,
    ) -> None:
        """Bank results that finished before the pool went down.

        Cells whose futures were poisoned by the dying pool (they raise
        :class:`BrokenProcessPool`) are left unresolved — and uncharged —
        for the next round; genuine fn errors are charged normally.
        """
        for idx in unresolved:
            if idx == skip or idx in outcomes:
                continue
            future = futures.get(idx)
            if future is None or not future.done():
                continue
            try:
                value = future.result(timeout=0)
            except BrokenProcessPool:
                continue
            except Exception as exc:  # noqa: BLE001 - fn raised in worker
                self._charge_error(idx, exc, attempts, outcomes)
            else:
                attempts[idx] += 1
                outcomes[idx] = CellOutcome(idx, value=value)

    def _run_isolated(
        self,
        ctx,
        fn: Callable[[Any], Any],
        item: Any,
        idx: int,
        attempts: List[int],
    ) -> CellOutcome:
        """Run one cell in its own single-worker executor, with retries."""
        policy = self.policy
        while True:
            executor = ProcessPoolExecutor(max_workers=1, mp_context=ctx)
            kind, exc = "exception", None
            try:
                future = executor.submit(fn, item)
                try:
                    value = future.result(timeout=policy.cell_timeout_s)
                except BrokenProcessPool as err:
                    kind, exc = "worker_crash", err
                except FuturesTimeout as err:
                    kind = "exception" if future.done() else "timeout"
                    exc = err
                except Exception as err:  # noqa: BLE001 - fn raised in worker
                    exc = err
                else:
                    attempts[idx] += 1
                    return CellOutcome(idx, value=value)
            finally:
                self._teardown(executor)
            attempts[idx] += 1
            if attempts[idx] > policy.max_retries:
                keep = exc if kind == "exception" else None
                return CellOutcome(
                    idx,
                    failure=CellFailure(idx, kind, repr(exc), attempts[idx], keep),
                )
            time.sleep(policy.backoff_s(attempts[idx] - 1))

    # ------------------------------------------------------------------
    @staticmethod
    def _mp_context():
        # Fork inherits sys.path and imported state but is only reliably
        # safe on Linux (macOS system frameworks are fork-hostile, which
        # is why CPython switched the darwin default to spawn).
        return multiprocessing.get_context("fork" if sys.platform == "linux" else None)

    @staticmethod
    def _teardown(executor: ProcessPoolExecutor) -> None:
        """Kill the pool without waiting on hung or dead workers."""
        processes = list(getattr(executor, "_processes", {}).values())
        for proc in processes:
            proc.terminate()
        executor.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck in uninterruptible IO
                proc.kill()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ProcessPoolBackend(jobs={self.jobs}, policy={self.policy})"


def resolve_backend(
    backend: Optional[ExecutionBackend] = None,
    jobs: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
) -> ExecutionBackend:
    """Pick the backend: an explicit instance wins, then ``jobs``, then serial."""
    if backend is not None:
        if jobs is not None:
            raise ConfigurationError("pass either backend or jobs, not both")
        if policy is not None:
            raise ConfigurationError(
                "pass the policy to the backend constructor, not resolve_backend"
            )
        return backend
    if jobs is None or jobs <= 1:
        return SerialBackend(policy)
    return ProcessPoolBackend(jobs, policy)
