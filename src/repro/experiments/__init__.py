"""Experiment harness: scenarios, sweeps and the paper's figure presets."""

from repro.experiments.scenario import ScenarioConfig, Scenario, build_scenario, run_scenario
from repro.experiments.sweep import run_trials, run_speed_sweep
from repro.experiments.figures import (
    FigureSpec,
    FigureResult,
    figure_spec,
    list_figures,
    run_figure,
)
from repro.experiments.campaign import (
    CampaignResult,
    CampaignSpec,
    load_results,
    run_campaign,
    save_results,
)
from repro.experiments.backend import (
    CellFailure,
    CellOutcome,
    ExecutionBackend,
    ProcessPoolBackend,
    RetryPolicy,
    SerialBackend,
    resolve_backend,
)

__all__ = [
    "ScenarioConfig",
    "Scenario",
    "build_scenario",
    "run_scenario",
    "run_trials",
    "run_speed_sweep",
    "FigureSpec",
    "FigureResult",
    "figure_spec",
    "list_figures",
    "run_figure",
    "CampaignResult",
    "CampaignSpec",
    "load_results",
    "run_campaign",
    "save_results",
    "CellFailure",
    "CellOutcome",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "RetryPolicy",
    "SerialBackend",
    "resolve_backend",
]
