"""Scenario assembly and execution.

:class:`ScenarioConfig` captures the paper's simulation environment
(Section III-A) with its published defaults: 50 terminals in a
1000 m x 1000 m field, random-waypoint mobility with a 3 s pause and
speed ~ U(0, MAXSPEED) where MAXSPEED is twice the *mean* speed the
figures' x-axes show, 250 m range, 10 Poisson flows of 512-byte packets,
10-packet per-link buffers with the 3 s residence rule, and a 250 kbps
CSMA/CA common channel.

:func:`build_scenario` assembles the object graph (for tests and examples
that want to poke at internals); :func:`run_scenario` builds, runs and
returns the :class:`~repro.metrics.report.MetricsReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.channel.model import CHANNEL_BACKENDS, ChannelConfig
from repro.errors import ConfigurationError
from repro.faults import FaultConfig, FaultInjector
from repro.geometry.field import Field
from repro.mac.csma import MAC_BACKENDS, MacConfig
from repro.metrics.collector import MetricsCollector
from repro.metrics.report import MetricsReport
from repro.mobility.bank import MOBILITY_BACKENDS
from repro.mobility.direction import RandomDirection
from repro.mobility.waypoint import RandomWaypoint
from repro.net.datalink import DataLinkConfig
from repro.net.network import Network
from repro.routing.base import ProtocolConfig, RoutingProtocol
from repro.routing.registry import create_protocol, protocol_class
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.trace import Tracer
from repro.traffic.pairs import Flow, choose_flows
from repro.traffic.poisson import PoissonSource

__all__ = ["ScenarioConfig", "Scenario", "build_scenario", "run_scenario"]

_KMH_TO_MS = 1000.0 / 3600.0


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to run one simulation (paper defaults)."""

    protocol: str = "rica"
    n_nodes: int = 50
    field_size_m: float = 1000.0
    #: Mean terminal speed in km/h (the figures' x-axis).  MAXSPEED of the
    #: uniform speed distribution is twice this value.
    mean_speed_kmh: float = 36.0
    pause_s: float = 3.0
    n_flows: int = 10
    rate_pps: float = 10.0
    packet_bytes: int = 512
    duration_s: float = 500.0
    seed: int = 1
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    mac: MacConfig = field(default_factory=MacConfig)
    datalink: DataLinkConfig = field(default_factory=DataLinkConfig)
    protocol_config: Optional[ProtocolConfig] = None
    throughput_bin_s: float = 4.0
    #: Packets generated before this time are excluded from all metrics
    #: (steady-state measurement); 0 reproduces the paper's whole-run
    #: averaging.
    warmup_s: float = 0.0
    #: Mobility model: "waypoint" (the paper's), "direction" (extension).
    mobility_model: str = "waypoint"
    #: Fading backend: "vectorized" (numpy FadingBank, the default) or
    #: "scalar" (per-pair Python processes; the differential reference).
    channel_backend: str = "vectorized"
    #: MAC attempt-scheduler backend: "scalar" (the default — per-event
    #: CSMA state machine, byte-identical to the paper-faithful seed) or
    #: "batched" (shared BackoffBank + slot-aligned contention rounds +
    #: bulk ACK timers; pair with ``mac.slot_align_s`` > 0 for the batch
    #: win — see docs/ARCHITECTURE.md, "The MAC attempt scheduler").
    mac_backend: str = "scalar"
    #: Topology-index position quantum (s).  0 samples positions at exact
    #: query times; > 0 freezes them per quantum (faster, positions stale
    #: by at most one quantum — see docs/ARCHITECTURE.md).
    position_epoch_s: float = 0.0
    #: Mobility backend: "scalar" (the default — per-node Python models,
    #: byte-identical to the paper-faithful seed) or "batched" (one
    #: MobilityBank of segment arrays with counter-based substreams;
    #: topology snapshots become a single masked lerp — see
    #: docs/PERFORMANCE.md).  Batched runs are deterministic per seed but
    #: draw their trajectories from the counter streams, so they form
    #: their own reference universe (same contract as channel_backend).
    mobility_backend: str = "scalar"
    #: RREQ-aggregation jitter window (s) for the on-demand protocols.  0
    #: (the default) is the paper's immediate-relay flooding; > 0 holds
    #: each relay for a random fraction of the window, coalescing duplicate
    #: copies and suppressing relays whose area neighbours already covered
    #: (see docs/ARCHITECTURE.md, "The reception pipeline").
    rreq_aggregation_s: float = 0.0
    #: Deterministic fault injection (node churn, blackouts, energy death);
    #: None (the default) runs fault-free and is byte-identical to a build
    #: that predates the fault subsystem.  See repro.faults.
    faults: Optional[FaultConfig] = None
    #: Attach a structured tracer (repro.trace) to every protocol instance.
    enable_trace: bool = False

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ConfigurationError("need at least 2 nodes")
        if self.mean_speed_kmh < 0:
            raise ConfigurationError("mean_speed_kmh must be >= 0")
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if not (0.0 <= self.warmup_s < self.duration_s):
            raise ConfigurationError("warmup_s must lie in [0, duration_s)")
        if self.position_epoch_s < 0:
            raise ConfigurationError("position_epoch_s must be >= 0")
        if self.rreq_aggregation_s < 0:
            raise ConfigurationError("rreq_aggregation_s must be >= 0")
        if self.rreq_aggregation_s > 0 and self.protocol_config is not None:
            raise ConfigurationError(
                "rreq_aggregation_s conflicts with an explicit protocol_config; "
                "set rreq_aggregation_s on the protocol_config instead"
            )
        if self.mobility_model not in ("waypoint", "direction"):
            raise ConfigurationError(
                f"unknown mobility model {self.mobility_model!r}; "
                "known: waypoint, direction"
            )
        if self.channel_backend not in CHANNEL_BACKENDS:
            raise ConfigurationError(
                f"unknown channel backend {self.channel_backend!r}; "
                f"known: {', '.join(CHANNEL_BACKENDS)}"
            )
        if self.mac_backend not in MAC_BACKENDS:
            raise ConfigurationError(
                f"unknown MAC backend {self.mac_backend!r}; "
                f"known: {', '.join(MAC_BACKENDS)}"
            )
        if self.mobility_backend not in MOBILITY_BACKENDS:
            raise ConfigurationError(
                f"unknown mobility backend {self.mobility_backend!r}; "
                f"known: {', '.join(MOBILITY_BACKENDS)}"
            )
        if self.faults is not None:
            if not isinstance(self.faults, FaultConfig):
                raise ConfigurationError(
                    f"faults must be a FaultConfig, got {type(self.faults).__name__}"
                )
            self.faults.validate_horizon(self.duration_s)
        protocol_class(self.protocol)  # validate the name early

    @property
    def max_speed_ms(self) -> float:
        """MAXSPEED in m/s (paper: speed ~ U(0, MAXSPEED), mean = MAX/2)."""
        return 2.0 * self.mean_speed_kmh * _KMH_TO_MS

    def with_(self, **changes) -> "ScenarioConfig":
        """A modified copy (convenience over dataclasses.replace)."""
        return replace(self, **changes)


@dataclass
class Scenario:
    """The assembled object graph of one run (pre-execution)."""

    config: ScenarioConfig
    sim: Simulator
    network: Network
    metrics: MetricsCollector
    protocols: List[RoutingProtocol]
    flows: List[Flow]
    sources: List[PoissonSource]
    #: Structured event log (None unless config.enable_trace).
    tracer: Optional["Tracer"] = None
    #: Armed fault timeline (None unless config.faults is set).
    fault_injector: Optional[FaultInjector] = None

    def start(self) -> None:
        """Arm faults, protocols and traffic (idempotent setup step).

        Split out of :meth:`run` so stepped execution (tests driving
        ``sim.step()`` themselves) arms the exact same event population —
        including the fault schedule — as a plain ``run()``.
        """
        if self.fault_injector is not None:
            self.fault_injector.start()
        for proto in self.protocols:
            proto.start()
        for source in self.sources:
            source.start()

    def run(self) -> MetricsReport:
        """Execute the scenario and return the metrics report."""
        self.start()
        self.sim.run(until=self.config.duration_s)
        for proto in self.protocols:
            proto.stop()
        return self.metrics.report()


def build_scenario(config: ScenarioConfig) -> Scenario:
    """Assemble simulator, network, protocols and traffic for ``config``."""
    streams = RandomStreams(config.seed)
    sim = Simulator()
    metrics = MetricsCollector(
        config.duration_s,
        throughput_bin_s=config.throughput_bin_s,
        warmup_s=config.warmup_s,
    )
    field_ = Field(config.field_size_m, config.field_size_m)
    network = Network(
        sim,
        field_,
        streams,
        metrics,
        channel_config=config.channel,
        mac_config=config.mac,
        datalink_config=config.datalink,
        position_epoch_s=config.position_epoch_s,
        channel_backend=config.channel_backend,
        mac_backend=config.mac_backend,
        mobility_backend=config.mobility_backend,
    )
    mobility_cls = RandomWaypoint if config.mobility_model == "waypoint" else RandomDirection
    for i in range(config.n_nodes):
        mobility = mobility_cls(
            field_,
            streams.stream(f"mobility/{i}"),
            max_speed=config.max_speed_ms,
            pause_time=config.pause_s,
        )
        network.add_node(mobility)

    flows = choose_flows(
        config.n_flows,
        config.n_nodes,
        config.rate_pps,
        streams.stream("traffic/pairs"),
        packet_bytes=config.packet_bytes,
    )
    flow_rates: Dict[Tuple[int, int], float] = {(f.src, f.dst): f.rate_bps for f in flows}

    proto_config = config.protocol_config
    if proto_config is None:
        cls = protocol_class(config.protocol)
        # Each protocol module ships its own config subclass with defaults;
        # fall back to the shared base when the class has none.
        proto_config = _default_config_for(cls)
        # The scenario-level window only applies to configs built here; a
        # caller-supplied protocol_config keeps its own aggregation setting
        # (and is never mutated by the scenario knob).
        proto_config.rreq_aggregation_s = config.rreq_aggregation_s
    proto_config.flow_rates_bps.update(flow_rates)

    protocols = [
        create_protocol(config.protocol, node, network, metrics, proto_config)
        for node in network.nodes()
    ]
    tracer = None
    if config.enable_trace:
        tracer = Tracer()
        for proto in protocols:
            proto.tracer = tracer
    sources = [
        PoissonSource(
            sim,
            network.node(flow.src),
            flow,
            streams.stream(f"traffic/{flow.flow_id}"),
            metrics,
            until=config.duration_s,
        )
        for flow in flows
    ]
    fault_injector = None
    if config.faults is not None and config.faults.enabled():
        fault_injector = FaultInjector.from_config(
            sim, network, metrics, config.faults, config.seed, config.duration_s
        )
    return Scenario(
        config=config,
        sim=sim,
        network=network,
        metrics=metrics,
        protocols=protocols,
        flows=flows,
        sources=sources,
        tracer=tracer,
        fault_injector=fault_injector,
    )


def _default_config_for(cls) -> ProtocolConfig:
    """Instantiate the protocol's own config subclass when it has one."""
    from repro.core.rica import RicaConfig, RicaProtocol
    from repro.routing.abr import AbrConfig, AbrProtocol
    from repro.routing.bgca import BgcaConfig, BgcaProtocol
    from repro.routing.link_state import LinkStateConfig, LinkStateProtocol

    defaults = {
        RicaProtocol: RicaConfig,
        AbrProtocol: AbrConfig,
        BgcaProtocol: BgcaConfig,
        LinkStateProtocol: LinkStateConfig,
    }
    return defaults.get(cls, ProtocolConfig)()


def run_scenario(config: ScenarioConfig) -> MetricsReport:
    """Build and execute one scenario."""
    return build_scenario(config).run()
