"""Multi-trial execution and parameter sweeps.

Sweep points are independent grid cells; like campaigns they execute
through a pluggable :class:`~repro.experiments.backend.ExecutionBackend`
(``jobs=N`` fans points out over a process pool with results identical to
the serial run).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import AggregateMetrics, aggregate_reports
from repro.experiments.backend import ExecutionBackend, resolve_backend
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.metrics.report import MetricsReport
from repro.sim.rng import derive_seed

__all__ = ["run_trials", "run_speed_sweep"]


def run_trials(config: ScenarioConfig, trials: int) -> AggregateMetrics:
    """Run ``trials`` independent repetitions and average them.

    Each trial gets a seed derived from the base seed and the trial index,
    so trials are independent but the whole sweep stays reproducible.
    """
    reports: List[MetricsReport] = []
    for trial in range(trials):
        seed = derive_seed(config.seed, f"trial/{trial}") % (2**31)
        reports.append(run_scenario(config.with_(seed=seed)))
    return aggregate_reports(reports)


def _run_point(item: Tuple[ScenarioConfig, int]) -> AggregateMetrics:
    """One sweep point (module-level so process pools can pickle it)."""
    config, trials = item
    return run_trials(config, trials)


def run_speed_sweep(
    base: ScenarioConfig,
    protocols: Sequence[str],
    mean_speeds_kmh: Sequence[float],
    trials: int = 1,
    backend: Optional[ExecutionBackend] = None,
    jobs: Optional[int] = None,
) -> Dict[str, List[AggregateMetrics]]:
    """The paper's core experiment shape: metric vs. mean mobile speed.

    Returns ``{protocol: [aggregate for each speed, in input order]}``.
    Seeds are derived per point from ``base.seed``, so serial and
    parallel execution produce identical results.
    """
    items = [
        (base.with_(protocol=name, mean_speed_kmh=speed), trials)
        for name in protocols
        for speed in mean_speeds_kmh
    ]
    aggs = list(resolve_backend(backend, jobs).map(_run_point, items))
    n_speeds = len(mean_speeds_kmh)
    return {
        name: aggs[i * n_speeds : (i + 1) * n_speeds]
        for i, name in enumerate(protocols)
    }
