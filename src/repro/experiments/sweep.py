"""Multi-trial execution and parameter sweeps."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.stats import AggregateMetrics, aggregate_reports
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.metrics.report import MetricsReport
from repro.sim.rng import derive_seed

__all__ = ["run_trials", "run_speed_sweep"]


def run_trials(config: ScenarioConfig, trials: int) -> AggregateMetrics:
    """Run ``trials`` independent repetitions and average them.

    Each trial gets a seed derived from the base seed and the trial index,
    so trials are independent but the whole sweep stays reproducible.
    """
    reports: List[MetricsReport] = []
    for trial in range(trials):
        seed = derive_seed(config.seed, f"trial/{trial}") % (2**31)
        reports.append(run_scenario(config.with_(seed=seed)))
    return aggregate_reports(reports)


def run_speed_sweep(
    base: ScenarioConfig,
    protocols: Sequence[str],
    mean_speeds_kmh: Sequence[float],
    trials: int = 1,
) -> Dict[str, List[AggregateMetrics]]:
    """The paper's core experiment shape: metric vs. mean mobile speed.

    Returns ``{protocol: [aggregate for each speed, in input order]}``.
    """
    results: Dict[str, List[AggregateMetrics]] = {}
    for name in protocols:
        per_speed = []
        for speed in mean_speeds_kmh:
            cfg = base.with_(protocol=name, mean_speed_kmh=speed)
            per_speed.append(run_trials(cfg, trials))
        results[name] = per_speed
    return results
