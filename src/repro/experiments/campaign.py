"""Experiment campaigns: run grids of scenarios, persist and reload results.

A *campaign* is the unit of reproduction work: a named grid of scenarios
(protocol x speed x load), executed with per-cell trial averaging, and
serialised to JSON so analysis (EXPERIMENTS.md, plots) never needs to
re-simulate.  ``scripts/collect_results.py`` is a thin wrapper around this
module.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.stats import AggregateMetrics
from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweep import run_trials

__all__ = ["CampaignSpec", "CampaignResult", "run_campaign", "save_results", "load_results"]


@dataclass(frozen=True)
class CampaignSpec:
    """A grid of scenarios sharing one base configuration."""

    name: str
    base: ScenarioConfig
    protocols: Sequence[str]
    mean_speeds_kmh: Sequence[float]
    rates_pps: Sequence[float]
    trials: int = 1

    def __post_init__(self) -> None:
        if not self.protocols:
            raise ConfigurationError("campaign needs at least one protocol")
        if not self.mean_speeds_kmh or not self.rates_pps:
            raise ConfigurationError("campaign needs speeds and rates")
        if self.trials < 1:
            raise ConfigurationError("trials must be >= 1")

    @property
    def cells(self) -> int:
        """Number of (protocol, speed, rate) grid cells."""
        return len(self.protocols) * len(self.mean_speeds_kmh) * len(self.rates_pps)


@dataclass
class CampaignResult:
    """Executed campaign: cell key -> aggregate metrics."""

    name: str
    duration_s: float
    trials: int
    #: keys are "protocol/speed/rate" strings (JSON-friendly).
    cells: Dict[str, AggregateMetrics] = field(default_factory=dict)

    @staticmethod
    def key(protocol: str, speed_kmh: float, rate_pps: float) -> str:
        """The cell key for a grid point."""
        return f"{protocol}/{speed_kmh:g}/{rate_pps:g}"

    def get(self, protocol: str, speed_kmh: float, rate_pps: float) -> AggregateMetrics:
        """The aggregate for one grid point."""
        return self.cells[self.key(protocol, speed_kmh, rate_pps)]

    def series(
        self,
        protocol: str,
        rate_pps: float,
        speeds: Sequence[float],
        metric: str,
    ) -> List[float]:
        """One metric across a speed sweep (a figure line)."""
        return [getattr(self.get(protocol, s, rate_pps), metric) for s in speeds]


def run_campaign(
    spec: CampaignSpec,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Execute every cell of the grid (trial-averaged)."""
    result = CampaignResult(spec.name, spec.base.duration_s, spec.trials)
    for rate in spec.rates_pps:
        for protocol in spec.protocols:
            for speed in spec.mean_speeds_kmh:
                config = spec.base.with_(
                    protocol=protocol, mean_speed_kmh=speed, rate_pps=rate
                )
                key = CampaignResult.key(protocol, speed, rate)
                result.cells[key] = run_trials(config, spec.trials)
                if progress is not None:
                    progress(key)
    return result


def save_results(result: CampaignResult, path: str) -> None:
    """Serialise a campaign result to JSON."""
    payload = {
        "name": result.name,
        "duration_s": result.duration_s,
        "trials": result.trials,
        "cells": {key: asdict(agg) for key, agg in result.cells.items()},
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)


def load_results(path: str) -> CampaignResult:
    """Reload a campaign result saved by :func:`save_results`."""
    with open(path) as fh:
        payload = json.load(fh)
    cells = {
        key: AggregateMetrics(**fields) for key, fields in payload["cells"].items()
    }
    return CampaignResult(
        name=payload["name"],
        duration_s=payload["duration_s"],
        trials=payload["trials"],
        cells=cells,
    )
