"""Experiment campaigns: run grids of scenarios, persist and reload results.

A *campaign* is the unit of reproduction work: a named grid of scenarios
(protocol x speed x load), executed with per-cell trial averaging, and
serialised to JSON so analysis (EXPERIMENTS.md, plots) never needs to
re-simulate.  ``scripts/collect_results.py`` is a thin wrapper around this
module.

Cells are independent, so execution is delegated to a pluggable
:class:`~repro.experiments.backend.ExecutionBackend`: ``run_campaign(...,
jobs=N)`` (or ``repro campaign --jobs N``) fans the grid out over a
process pool, with per-cell seed derivation guaranteeing results
byte-identical to the serial run.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import AggregateMetrics
from repro.errors import ConfigurationError
from repro.experiments.backend import (
    ExecutionBackend,
    RetryPolicy,
    resolve_backend,
)
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweep import run_trials

__all__ = ["CampaignSpec", "CampaignResult", "run_campaign", "save_results", "load_results"]


@dataclass(frozen=True)
class CampaignSpec:
    """A grid of scenarios sharing one base configuration."""

    name: str
    base: ScenarioConfig
    protocols: Sequence[str]
    mean_speeds_kmh: Sequence[float]
    rates_pps: Sequence[float]
    trials: int = 1

    def __post_init__(self) -> None:
        if not self.protocols:
            raise ConfigurationError("campaign needs at least one protocol")
        if not self.mean_speeds_kmh or not self.rates_pps:
            raise ConfigurationError("campaign needs speeds and rates")
        if self.trials < 1:
            raise ConfigurationError("trials must be >= 1")

    @property
    def cells(self) -> int:
        """Number of (protocol, speed, rate) grid cells."""
        return len(self.protocols) * len(self.mean_speeds_kmh) * len(self.rates_pps)

    def cell_configs(self) -> List[Tuple[str, ScenarioConfig]]:
        """The grid as ``(key, config)`` pairs in canonical execution order."""
        out: List[Tuple[str, ScenarioConfig]] = []
        for rate in self.rates_pps:
            for protocol in self.protocols:
                for speed in self.mean_speeds_kmh:
                    config = self.base.with_(
                        protocol=protocol, mean_speed_kmh=speed, rate_pps=rate
                    )
                    out.append((CampaignResult.key(protocol, speed, rate), config))
        return out


@dataclass
class CampaignResult:
    """Executed campaign: cell key -> aggregate metrics."""

    name: str
    duration_s: float
    trials: int
    #: keys are "protocol/speed/rate" strings (JSON-friendly).
    cells: Dict[str, AggregateMetrics] = field(default_factory=dict)
    #: Cells that failed after all retries: key -> structured failure
    #: record ({"kind", "error", "attempts"}).  Empty on a clean run.
    failures: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when every cell produced a result."""
        return not self.failures

    @staticmethod
    def key(protocol: str, speed_kmh: float, rate_pps: float) -> str:
        """The cell key for a grid point."""
        return f"{protocol}/{speed_kmh:g}/{rate_pps:g}"

    def get(self, protocol: str, speed_kmh: float, rate_pps: float) -> AggregateMetrics:
        """The aggregate for one grid point."""
        return self.cells[self.key(protocol, speed_kmh, rate_pps)]

    def series(
        self,
        protocol: str,
        rate_pps: float,
        speeds: Sequence[float],
        metric: str,
    ) -> List[float]:
        """One metric across a speed sweep (a figure line)."""
        return [getattr(self.get(protocol, s, rate_pps), metric) for s in speeds]


def _run_cell(item: Tuple[str, ScenarioConfig, int]) -> Tuple[str, AggregateMetrics]:
    """Execute one grid cell (module-level so process pools can pickle it)."""
    key, config, trials = item
    return key, run_trials(config, trials)


def run_campaign(
    spec: CampaignSpec,
    progress: Optional[Callable[[str], None]] = None,
    backend: Optional[ExecutionBackend] = None,
    jobs: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
) -> CampaignResult:
    """Execute every cell of the grid (trial-averaged).

    Args:
        spec: the campaign grid.
        progress: optional callback invoked with each cell key as its
            result is collected (in canonical order).
        backend: explicit execution backend; mutually exclusive with
            ``jobs``.
        jobs: shorthand for a process-pool backend with ``jobs`` workers
            (``None``/1 runs serially).  Results are byte-identical to the
            serial run regardless of worker count.
        policy: retry/timeout policy for the constructed backend (mutually
            exclusive with ``backend``; build the backend with its policy
            instead).  With retries enabled the campaign degrades
            gracefully: cells that fail every attempt land in
            ``CampaignResult.failures`` instead of aborting the run.
    """
    result = CampaignResult(spec.name, spec.base.duration_s, spec.trials)
    items = [(key, config, spec.trials) for key, config in spec.cell_configs()]
    resolved = resolve_backend(backend, jobs, policy)
    # Graceful degradation is opt-in: only a policy that actually enables
    # resilience (retries or a timeout) turns failures into report entries;
    # the bare default keeps the historical fail-fast contract.
    pol = getattr(resolved, "policy", None)
    tolerant = pol is not None and (pol.max_retries > 0 or pol.cell_timeout_s is not None)
    for outcome in resolved.map_outcomes(_run_cell, items):
        key = items[outcome.index][0]
        if outcome.failure is not None:
            if not tolerant:
                raise outcome.failure.to_exception()
            result.failures[key] = outcome.failure.as_dict()
        else:
            _, agg = outcome.value
            result.cells[key] = agg
        if progress is not None:
            progress(key)
    return result


def save_results(result: CampaignResult, path: str) -> None:
    """Serialise a campaign result to JSON."""
    payload = {
        "name": result.name,
        "duration_s": result.duration_s,
        "trials": result.trials,
        "cells": {key: asdict(agg) for key, agg in result.cells.items()},
    }
    if result.failures:
        # Only written when present, so clean-run JSON is byte-identical
        # to files produced before the failure report existed.
        payload["failures"] = result.failures
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)


def load_results(path: str) -> CampaignResult:
    """Reload a campaign result saved by :func:`save_results`."""
    with open(path) as fh:
        payload = json.load(fh)
    cells = {
        key: AggregateMetrics(**fields) for key, fields in payload["cells"].items()
    }
    return CampaignResult(
        name=payload["name"],
        duration_s=payload["duration_s"],
        trials=payload["trials"],
        cells=cells,
        failures=payload.get("failures", {}),
    )
