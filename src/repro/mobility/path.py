"""Scripted waypoint paths — deterministic trajectories for tests/examples.

A :class:`WaypointPath` visits an explicit list of ``(time, position)``
anchors, interpolating linearly between them and holding the last position
afterwards.  Integration tests use it to stage precise link-break moments.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.geometry.vector import Vec2
from repro.mobility.base import MobilityModel

__all__ = ["WaypointPath"]


class WaypointPath(MobilityModel):
    """Piecewise-linear trajectory through explicit ``(time, point)`` anchors."""

    def __init__(self, anchors: Sequence[Tuple[float, Vec2]]) -> None:
        if not anchors:
            raise ConfigurationError("WaypointPath requires at least one anchor")
        times = [t for t, _ in anchors]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigurationError("WaypointPath anchor times must be strictly increasing")
        if times[0] < 0:
            raise ConfigurationError("WaypointPath anchor times must be non-negative")
        self._anchors: List[Tuple[float, Vec2]] = list(anchors)

    @property
    def anchors(self) -> Tuple[Tuple[float, Vec2], ...]:
        """The validated ``(time, point)`` anchors, in order."""
        return tuple(self._anchors)

    def position(self, t: float) -> Vec2:
        anchors = self._anchors
        if t <= anchors[0][0]:
            return anchors[0][1]
        if t >= anchors[-1][0]:
            return anchors[-1][1]
        # Linear scan is fine: test paths have a handful of anchors.
        for (t0, p0), (t1, p1) in zip(anchors, anchors[1:]):
            if t0 <= t <= t1:
                frac = (t - t0) / (t1 - t0)
                return p0.lerp(p1, frac)
        raise AssertionError("unreachable")  # pragma: no cover

    def speed_at(self, t: float) -> float:
        anchors = self._anchors
        if t < anchors[0][0] or t >= anchors[-1][0]:
            return 0.0
        for (t0, p0), (t1, p1) in zip(anchors, anchors[1:]):
            if t0 <= t < t1:
                return p0.distance_to(p1) / (t1 - t0)
        return 0.0
