"""Random-waypoint mobility (the paper's model).

Each terminal repeats: pick a uniform random destination in the field, move
to it in a straight line at a speed drawn uniformly from ``(0, max_speed]``,
pause for ``pause_time`` seconds (3 s in the paper), pick again.

Positions are *exact*: the trajectory is a lazily-extended list of linear
segments, and :meth:`RandomWaypoint.position` evaluates the segment covering
``t`` in closed form.  Segments are generated deterministically from the
model's private random stream, so out-of-order queries return identical
results.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.geometry.field import Field
from repro.geometry.vector import Vec2
from repro.mobility.base import MobilityModel

__all__ = ["RandomWaypoint", "Segment"]

# Never draw a speed below this (m/s): the classic random-waypoint pitfall
# of near-zero speeds producing quasi-infinite segments.
_MIN_SPEED = 0.01


class Segment:
    """One linear leg of a trajectory (or a pause when ``a == b``).

    Zero-length-pause convention: a segment with ``t_end <= t_start`` is an
    *instantaneous* pause and always evaluates to its anchor ``a`` — the
    division in :meth:`position` is guarded, never taken.  Models rely on
    this to keep the move/pause alternation uniform even when
    ``pause_time == 0`` (every move is still followed by a pause segment,
    just a zero-length one), and the initial state of every random model is
    the zero-length pause ``Segment(0, 0, origin, origin)``.
    """

    __slots__ = ("t_start", "t_end", "a", "b")

    def __init__(self, t_start: float, t_end: float, a: Vec2, b: Vec2) -> None:
        self.t_start = t_start
        self.t_end = t_end
        self.a = a
        self.b = b

    def position(self, t: float) -> Vec2:
        """Position at ``t`` (must lie within the segment).

        Zero-length segments (``t_end <= t_start``) return ``a`` exactly;
        otherwise the anchor-form lerp ``a + (b - a) * frac`` — the same
        expression :class:`repro.mobility.bank.MobilityBank` vectorizes, so
        scalar and batched evaluation agree bit-for-bit.
        """
        if self.t_end <= self.t_start:
            return self.a
        frac = (t - self.t_start) / (self.t_end - self.t_start)
        return self.a.lerp(self.b, frac)

    @property
    def is_pause(self) -> bool:
        """True if this segment is a pause at a waypoint."""
        return self.a == self.b

    @property
    def speed(self) -> float:
        """Speed along this segment in m/s (0 for pauses)."""
        if self.t_end <= self.t_start:
            return 0.0
        return self.a.distance_to(self.b) / (self.t_end - self.t_start)


class RandomWaypoint(MobilityModel):
    """The random-waypoint model with uniform speeds and fixed pauses.

    Speeds are drawn ``uniform(0, max_speed)`` and then clamped from below
    to ``_MIN_SPEED`` (0.01 m/s).  The clamp exists because the unclamped
    model is ill-posed: a draw arbitrarily close to 0 produces a travel
    segment of arbitrarily long duration, so mean speed decays over time
    and a single unlucky draw can pin a terminal mid-flight for the whole
    run (the "speed decay" pathology of naive random waypoint).  Clamping
    at 1 cm/s bounds segment duration without measurably distorting the
    paper's MAXSPEED ∈ [1, 20] m/s operating range.

    Args:
        field: the field to roam.
        rng: private random stream for this terminal.
        max_speed: MAXSPEED in m/s; speeds are ~ U(0, max_speed].  A value
            of 0 degenerates to a static terminal at the start position.
        pause_time: pause at each waypoint, seconds (paper: 3 s).
        start: optional start position; defaults to a uniform random point.
    """

    def __init__(
        self,
        field: Field,
        rng: random.Random,
        max_speed: float,
        pause_time: float = 3.0,
        start: Optional[Vec2] = None,
    ) -> None:
        if max_speed < 0:
            raise ConfigurationError(f"max_speed must be >= 0, got {max_speed}")
        if pause_time < 0:
            raise ConfigurationError(f"pause_time must be >= 0, got {pause_time}")
        self._field = field
        self._rng = rng
        self._max_speed = float(max_speed)
        self._pause = float(pause_time)
        origin = start if start is not None else field.random_point(rng)
        self._segments: List[Segment] = [Segment(0.0, 0.0, origin, origin)]
        self._starts: List[float] = [0.0]  # parallel array for bisect

    @property
    def max_speed(self) -> float:
        """Configured MAXSPEED in m/s."""
        return self._max_speed

    @property
    def pause_time(self) -> float:
        """Configured pause at each waypoint in seconds."""
        return self._pause

    @property
    def origin(self) -> Vec2:
        """Position at t = 0 (the initial zero-length pause's anchor)."""
        return self._segments[0].a

    def position(self, t: float) -> Vec2:
        if t < 0:
            t = 0.0
        seg = self._segment_at(t)
        if seg.t_end <= seg.t_start:
            return seg.a
        return seg.position(min(max(t, seg.t_start), seg.t_end))

    def speed_at(self, t: float) -> float:
        """Speed at ``t``, with *held-frontier* end-of-trajectory semantics.

        ``max_speed == 0`` is the only way the trajectory ends: the initial
        zero-length pause stays the last segment forever, and any query at
        or past its ``t_end`` reports 0.0 (the terminal is parked).  For a
        moving terminal the trajectory is extended on demand, so the "past
        the last segment" branch is unreachable and every instant reports
        the covering segment's speed (0 during pauses).
        """
        seg = self._segment_at(t)
        if t >= seg.t_end and seg is self._segments[-1]:
            return 0.0
        return seg.speed

    def _segment_at(self, t: float) -> Segment:
        if t < 0:
            t = 0.0
        self._extend_to(t)
        idx = bisect.bisect_right(self._starts, t) - 1
        return self._segments[max(idx, 0)]

    def _extend_to(self, t: float) -> None:
        """Generate trajectory segments until they cover time ``t``."""
        if self._max_speed <= 0.0:
            return  # static: the initial zero-length pause covers all time
        last = self._segments[-1]
        while last.t_end <= t:
            last = self._next_segment(last)
            self._segments.append(last)
            self._starts.append(last.t_start)

    def _next_segment(self, last: Segment) -> Segment:
        if last.is_pause:
            # Depart: choose destination and speed.
            dest = self._field.random_point(self._rng)
            speed = max(self._rng.uniform(0.0, self._max_speed), _MIN_SPEED)
            travel = last.b.distance_to(dest) / speed
            return Segment(last.t_end, last.t_end + travel, last.b, dest)
        # Arrive: pause at the waypoint.  A zero pause still inserts an
        # instantaneous segment so the move/pause alternation is uniform.
        return Segment(last.t_end, last.t_end + self._pause, last.b, last.b)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RandomWaypoint(max_speed={self._max_speed:.1f} m/s, "
            f"pause={self._pause:.1f}s, segments={len(self._segments)})"
        )
