"""Mobility models.

The paper uses the classic random-waypoint model: each terminal picks a
uniform random destination in the field, moves there at a speed drawn
uniformly from ``(0, MAXSPEED]``, pauses 3 seconds, and repeats
(:class:`~repro.mobility.waypoint.RandomWaypoint`).

All models implement :class:`~repro.mobility.base.MobilityModel`, whose key
property is that :meth:`~repro.mobility.base.MobilityModel.position` is an
exact closed-form function of time — there is no per-tick integration, so
any layer may sample a position at any instant at O(segments traversed)
amortised cost.

:class:`~repro.mobility.bank.MobilityBank` is the vectorized counterpart:
every node's trajectory lives as rows of segment arrays with counter-based
substreams, so a whole-network position snapshot is one masked numpy lerp
(``ScenarioConfig.mobility_backend="batched"``; see docs/PERFORMANCE.md).
"""

from repro.mobility.base import MobilityModel
from repro.mobility.static import StaticPosition
from repro.mobility.waypoint import RandomWaypoint
from repro.mobility.direction import RandomDirection
from repro.mobility.path import WaypointPath
from repro.mobility.bank import MOBILITY_BACKENDS, BankTrajectory, MobilityBank

__all__ = [
    "MobilityModel",
    "StaticPosition",
    "RandomWaypoint",
    "RandomDirection",
    "WaypointPath",
    "MobilityBank",
    "BankTrajectory",
    "MOBILITY_BACKENDS",
]
