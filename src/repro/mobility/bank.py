"""Vectorized mobility state: the MobilityBank.

``TopologyIndex`` rebuilds a position snapshot at every distinct query
instant, and with the MAC attempt scheduler batched (PR 6) those builds —
n Python ``position()`` calls each — dominate flood-storm wall time.  The
bank collapses a build into one masked numpy lerp by holding *every*
node's current trajectory as rows of segment arrays:

``t_start / t_end / ax / ay / bx / by``
    one row per node, one column per trajectory segment, padded with
    ``+inf`` start times so vectorized segment selection never sees unused
    slots.  A segment is exactly :class:`repro.mobility.waypoint.Segment`
    in columnar form, including the zero-length-pause convention.

Randomness is *counter-based*, mirroring :class:`repro.channel.bank.FadingBank`
and :class:`repro.mac.bank.BackoffBank`: row ``i`` owns the key
``derive_key(seed, i)`` and draw ``k`` is the pure function
``splitmix64(key + k * SPLITMIX_GAMMA)``, so trajectories depend only on
``(seed, node_id)`` — never on how queries are batched or interleaved.
:class:`repro.sim.rng.CounterRandom` exposes the identical draw sequence
through the ``random.Random`` API, which is how the differential tests
drive the *scalar* models to bitwise-equal trajectories.

Bit-exactness is the design constraint throughout: segment *assembly*
(destination draws, ``math.hypot`` travel times, random-direction boundary
intersections via the shared :func:`repro.mobility.direction.boundary_hit`)
stays scalar per new segment — it is rare and amortized — while only the
per-snapshot evaluation ``a + (b - a) * frac`` is vectorized, using the
same operand order as ``Vec2.lerp``.  Scalar and batched evaluation of the
same segment row therefore agree to the last ulp.

Selected behind ``ScenarioConfig.mobility_backend`` (``repro run
--mobility-backend batched``).  The scalar default remains byte-identical
to the pre-bank simulator; the batched backend is deterministic per seed
but draws node trajectories from the counter streams, so its reports form
their own (internally consistent) universe — the same contract
``channel_backend`` established.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.field import Field
from repro.geometry.vector import Vec2
from repro.mobility.base import MobilityModel
from repro.mobility.direction import RandomDirection, boundary_hit
from repro.mobility.path import WaypointPath
from repro.mobility.static import StaticPosition
from repro.mobility.waypoint import RandomWaypoint, _MIN_SPEED
from repro.sim.rng import SPLITMIX_GAMMA, derive_key, splitmix64

__all__ = ["MobilityBank", "BankTrajectory", "MOBILITY_BACKENDS"]

#: Valid values for ``ScenarioConfig.mobility_backend``.
MOBILITY_BACKENDS = ("scalar", "batched")

_M64 = (1 << 64) - 1
_PO53 = 2.0**-53
_TWO_PI = 2.0 * math.pi

# Row kinds.
_STATIC = 0
_WAYPOINT = 1
_DIRECTION = 2
_PATH = 3
_PROXY = 4


class MobilityBank:
    """Array-of-segment-state storage for every node's trajectory.

    Rows are registered densely: node ``i`` must be added as the ``i``-th
    row (the bank's arrays *are* the id space, exactly like the topology
    grid's slot arrays).  Random models draw from per-row counter
    substreams; deterministic models (static, scripted paths) are stored
    verbatim.  Unknown :class:`MobilityModel` subclasses are supported as
    *proxy* rows — their positions are filled by scalar calls inside
    :meth:`coords_at`, so exotic models stay usable under the batched
    backend at scalar cost for those rows only.
    """

    def __init__(self, seed: int, field: Field, capacity: int = 16) -> None:
        self._seed = int(seed)
        self._field = field
        self._n = 0
        cap_r = max(int(capacity), 1)
        cap_s = 8
        self._alloc(cap_r, cap_s)
        # Per-row scalar state kept as Python lists: segment assembly is
        # scalar anyway, and Python ints avoid uint64 round-trips.
        self._key_int: List[int] = []
        self._ctr: List[int] = []
        self._max_speed: List[float] = []
        self._pause: List[float] = []
        self._proxy: Dict[int, MobilityModel] = {}
        self._any_strict = False
        #: Total segments materialized (diagnostic; grows monotonically).
        self.segments_generated = 0

    # ------------------------------------------------------------------
    # storage

    def _alloc(self, cap_r: int, cap_s: int) -> None:
        self._ts = np.full((cap_r, cap_s), np.inf)
        self._te = np.zeros((cap_r, cap_s))
        self._ax = np.zeros((cap_r, cap_s))
        self._ay = np.zeros((cap_r, cap_s))
        self._bx = np.zeros((cap_r, cap_s))
        self._by = np.zeros((cap_r, cap_s))
        self._nseg = np.zeros(cap_r, dtype=np.intp)
        self._frontier = np.full(cap_r, np.inf)
        self._kind = np.zeros(cap_r, dtype=np.uint8)
        self._strict = np.zeros(cap_r, dtype=bool)
        self._rowidx = np.arange(cap_r)

    def _grow_rows(self) -> None:
        old_r, cap_s = self._ts.shape
        new_r = old_r * 2
        for name in ("_ts", "_te", "_ax", "_ay", "_bx", "_by"):
            old = getattr(self, name)
            grown = np.full((new_r, cap_s), np.inf) if name == "_ts" else np.zeros((new_r, cap_s))
            grown[:old_r] = old
            setattr(self, name, grown)
        for name, fill, dtype in (
            ("_nseg", 0, np.intp),
            ("_kind", 0, np.uint8),
            ("_strict", False, bool),
        ):
            old = getattr(self, name)
            grown = np.full(new_r, fill, dtype=dtype)
            grown[:old_r] = old
            setattr(self, name, grown)
        frontier = np.full(new_r, np.inf)
        frontier[:old_r] = self._frontier
        self._frontier = frontier
        self._rowidx = np.arange(new_r)

    def _grow_segs(self, need: int) -> None:
        cap_r, old_s = self._ts.shape
        new_s = old_s
        while new_s < need:
            new_s *= 2
        for name in ("_ts", "_te", "_ax", "_ay", "_bx", "_by"):
            old = getattr(self, name)
            grown = np.full((cap_r, new_s), np.inf) if name == "_ts" else np.zeros((cap_r, new_s))
            grown[:, :old_s] = old
            setattr(self, name, grown)

    def _new_row(self, node_id: int, kind: int) -> int:
        if node_id != self._n:
            raise ConfigurationError(
                f"MobilityBank rows must be registered densely: expected id {self._n}, got {node_id}"
            )
        if self._n == self._ts.shape[0]:
            self._grow_rows()
        i = self._n
        self._n += 1
        self._kind[i] = kind
        self._key_int.append(derive_key(self._seed, i))
        self._ctr.append(0)
        self._max_speed.append(0.0)
        self._pause.append(0.0)
        return i

    def _append_segment(
        self, i: int, ts: float, te: float, ax: float, ay: float, bx: float, by: float
    ) -> None:
        j = int(self._nseg[i])
        if j == self._ts.shape[1]:
            self._grow_segs(j + 1)
        self._ts[i, j] = ts
        self._te[i, j] = te
        self._ax[i, j] = ax
        self._ay[i, j] = ay
        self._bx[i, j] = bx
        self._by[i, j] = by
        self._nseg[i] = j + 1
        self.segments_generated += 1

    # ------------------------------------------------------------------
    # counter-based draws (bit-compatible with CounterRandom)

    def _uniform(self, i: int, a: float, b: float) -> float:
        z = splitmix64((self._key_int[i] + self._ctr[i] * SPLITMIX_GAMMA) & _M64)
        self._ctr[i] += 1
        return a + (b - a) * ((z >> 11) * _PO53)

    # ------------------------------------------------------------------
    # registration

    def add_waypoint(
        self,
        node_id: int,
        max_speed: float,
        pause_time: float = 3.0,
        start: Optional[Vec2] = None,
    ) -> None:
        """Register a random-waypoint row (draws its origin if ``start`` is None)."""
        if max_speed < 0:
            raise ConfigurationError(f"max_speed must be >= 0, got {max_speed}")
        if pause_time < 0:
            raise ConfigurationError(f"pause_time must be >= 0, got {pause_time}")
        i = self._new_row(node_id, _WAYPOINT)
        self._max_speed[i] = float(max_speed)
        self._pause[i] = float(pause_time)
        if start is None:
            start = Vec2(
                self._uniform(i, 0.0, self._field.width),
                self._uniform(i, 0.0, self._field.height),
            )
        self._append_segment(i, 0.0, 0.0, start.x, start.y, start.x, start.y)
        # A zero max_speed parks the terminal on its initial zero-length
        # pause forever, exactly like the scalar model's early return.
        self._frontier[i] = math.inf if max_speed <= 0.0 else 0.0

    def add_direction(
        self,
        node_id: int,
        max_speed: float,
        pause_time: float = 3.0,
        start: Optional[Vec2] = None,
    ) -> None:
        """Register a random-direction row (same boundary rule as the scalar model)."""
        if max_speed < 0:
            raise ConfigurationError(f"max_speed must be >= 0, got {max_speed}")
        if pause_time < 0:
            raise ConfigurationError(f"pause_time must be >= 0, got {pause_time}")
        i = self._new_row(node_id, _DIRECTION)
        self._max_speed[i] = float(max_speed)
        self._pause[i] = float(pause_time)
        if start is None:
            start = Vec2(
                self._uniform(i, 0.0, self._field.width),
                self._uniform(i, 0.0, self._field.height),
            )
        self._append_segment(i, 0.0, 0.0, start.x, start.y, start.x, start.y)
        self._frontier[i] = math.inf if max_speed <= 0.0 else 0.0

    def add_static(self, node_id: int, position: Vec2) -> None:
        """Register a pinned terminal (one segment covering all time)."""
        i = self._new_row(node_id, _STATIC)
        self._append_segment(
            i, 0.0, math.inf, position.x, position.y, position.x, position.y
        )

    def add_path(self, node_id: int, anchors: Sequence[Tuple[float, Vec2]]) -> None:
        """Register a scripted piecewise-linear path (WaypointPath semantics)."""
        if not anchors:
            raise ConfigurationError("path rows require at least one anchor")
        times = [t for t, _ in anchors]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigurationError("path anchor times must be strictly increasing")
        if times[0] < 0:
            raise ConfigurationError("path anchor times must be non-negative")
        i = self._new_row(node_id, _PATH)
        # Path rows use *strict* segment selection (t_start < t) so a query
        # exactly at an interior anchor evaluates the earlier segment at
        # frac = 1.0 — matching WaypointPath's `t0 <= t <= t1` first-match
        # scan bit-for-bit (the lerp endpoint can differ from the next
        # segment's start anchor by an ulp).
        self._strict[i] = True
        self._any_strict = True
        t0, p0 = anchors[0]
        if t0 > 0.0:
            self._append_segment(i, 0.0, t0, p0.x, p0.y, p0.x, p0.y)
        for (ta, pa), (tb, pb) in zip(anchors, anchors[1:]):
            self._append_segment(i, ta, tb, pa.x, pa.y, pb.x, pb.y)
        tl, pl = anchors[-1]
        self._append_segment(i, tl, math.inf, pl.x, pl.y, pl.x, pl.y)

    def add_model(self, node_id: int, model: MobilityModel) -> None:
        """Register an arbitrary model as a proxy row (scalar evaluation)."""
        i = self._new_row(node_id, _PROXY)
        self._proxy[i] = model

    def adopt(self, node_id: int, model: MobilityModel) -> MobilityModel:
        """Re-home a scalar model's configuration onto a bank row.

        Known model types become native rows: the origin (position at
        t = 0) is taken from the model so batched and scalar scenarios
        start from identical placements, while subsequent waypoints/speeds
        come from the row's counter substream.  Unknown types become proxy
        rows and keep their scalar behaviour.  Returns the
        :class:`MobilityModel` the node should use from now on.
        """
        if isinstance(model, BankTrajectory):
            raise ConfigurationError("model is already bank-backed")
        if isinstance(model, RandomWaypoint):
            self.add_waypoint(node_id, model.max_speed, model.pause_time, start=model.origin)
        elif isinstance(model, RandomDirection):
            self.add_direction(node_id, model.max_speed, model.pause_time, start=model.origin)
        elif isinstance(model, WaypointPath):
            self.add_path(node_id, model.anchors)
        elif isinstance(model, StaticPosition):
            self.add_static(node_id, model.position(0.0))
        else:
            self.add_model(node_id, model)
            return model
        return BankTrajectory(self, node_id)

    @property
    def n(self) -> int:
        """Number of registered rows."""
        return self._n

    # ------------------------------------------------------------------
    # trajectory extension (scalar assembly, counter-stream draws)

    def _append_next(self, i: int) -> None:
        """Append the next move/pause segment to row ``i`` (mirrors the
        scalar models' ``_next_segment`` decision tree exactly)."""
        j = int(self._nseg[i]) - 1
        te = float(self._te[i, j])
        bx = float(self._bx[i, j])
        by = float(self._by[i, j])
        is_pause = self._ax[i, j] == bx and self._ay[i, j] == by
        kind = self._kind[i]
        if kind == _WAYPOINT:
            if is_pause:
                dx = self._uniform(i, 0.0, self._field.width)
                dy = self._uniform(i, 0.0, self._field.height)
                speed = max(self._uniform(i, 0.0, self._max_speed[i]), _MIN_SPEED)
                travel = math.hypot(bx - dx, by - dy) / speed
                self._append_segment(i, te, te + travel, bx, by, dx, dy)
            else:
                self._append_segment(i, te, te + self._pause[i], bx, by, bx, by)
        else:  # _DIRECTION
            if not is_pause:
                self._append_segment(i, te, te + self._pause[i], bx, by, bx, by)
            else:
                heading = self._uniform(i, 0.0, _TWO_PI)
                speed = max(self._uniform(i, 0.0, self._max_speed[i]), _MIN_SPEED)
                origin = Vec2(bx, by)
                dest = boundary_hit(self._field, origin, heading)
                travel = origin.distance_to(dest) / speed
                if travel <= 0:  # on the boundary heading outward: re-aim
                    heading += math.pi
                    dest = boundary_hit(self._field, origin, heading)
                    travel = max(origin.distance_to(dest) / speed, 1e-6)
                self._append_segment(i, te, te + travel, bx, by, dest.x, dest.y)
        self._frontier[i] = self._te[i, int(self._nseg[i]) - 1]

    def _extend_all(self, t: float) -> None:
        """Extend every row whose trajectory does not yet cover ``t``."""
        while True:
            need = np.nonzero(self._frontier[: self._n] <= t)[0]
            if need.size == 0:
                return
            for i in need.tolist():
                self._append_next(i)

    def _extend_row(self, i: int, t: float) -> None:
        while self._frontier[i] <= t:
            self._append_next(i)

    # ------------------------------------------------------------------
    # evaluation

    def coords_at(self, t: float) -> np.ndarray:
        """All positions at time ``t`` as an ``(n, 2)`` float64 array.

        One masked lerp over the covering segments — the batched
        replacement for n scalar ``position()`` calls.  The caller owns
        the returned array.
        """
        n = self._n
        out = np.empty((n, 2))
        if n == 0:
            return out
        if t < 0.0:
            t = 0.0
        self._extend_all(t)
        ts = self._ts[:n]
        le = np.count_nonzero(ts <= t, axis=1)
        if self._any_strict:
            lt = np.count_nonzero(ts < t, axis=1)
            counts = np.where(self._strict[:n], lt, le)
        else:
            counts = le
        idx = counts - 1
        np.maximum(idx, 0, out=idx)
        r = self._rowidx[:n]
        s = ts[r, idx]
        e = self._te[r, idx]
        ax = self._ax[r, idx]
        ay = self._ay[r, idx]
        bx = self._bx[r, idx]
        by = self._by[r, idx]
        tt = np.minimum(np.maximum(t, s), e)
        denom = e - s
        safe = denom > 0.0
        frac = np.where(safe, (tt - s) / np.where(safe, denom, 1.0), 0.0)
        out[:, 0] = ax + (bx - ax) * frac
        out[:, 1] = ay + (by - ay) * frac
        for i, model in self._proxy.items():
            p = model.position(t)
            out[i, 0] = p.x
            out[i, 1] = p.y
        return out

    def _covering(self, i: int, t: float) -> int:
        """Index of the segment covering ``t`` on row ``i`` (inclusive or
        strict selection per the row's flag); trajectory must already
        cover ``t``."""
        m = int(self._nseg[i])
        side = "left" if self._strict[i] else "right"
        idx = int(np.searchsorted(self._ts[i, :m], t, side=side)) - 1
        return max(idx, 0)

    def position_of(self, node_id: int, t: float) -> Vec2:
        """Scalar position query — bit-identical to the vectorized path."""
        self._check_row(node_id)
        if node_id in self._proxy:
            return self._proxy[node_id].position(t)
        if t < 0.0:
            t = 0.0
        self._extend_row(node_id, t)
        j = self._covering(node_id, t)
        s = float(self._ts[node_id, j])
        e = float(self._te[node_id, j])
        ax = float(self._ax[node_id, j])
        ay = float(self._ay[node_id, j])
        if e <= s:
            return Vec2(ax, ay)
        bx = float(self._bx[node_id, j])
        by = float(self._by[node_id, j])
        frac = (min(max(t, s), e) - s) / (e - s)
        return Vec2(ax + (bx - ax) * frac, ay + (by - ay) * frac)

    def speed_of(self, node_id: int, t: float) -> float:
        """Instantaneous speed, matching each scalar model's conventions."""
        self._check_row(node_id)
        if node_id in self._proxy:
            return self._proxy[node_id].speed_at(t)
        if t < 0.0:
            t = 0.0
        self._extend_row(node_id, t)
        kind = self._kind[node_id]
        if kind == _STATIC:
            return 0.0
        # Inclusive selection for speeds across all kinds: at a boundary
        # the *later* segment's speed wins (waypoint bisect_right,
        # direction's `t_start <= t < t_end` scan, and WaypointPath's
        # half-open anchor intervals all agree on this).
        m = int(self._nseg[node_id])
        j = max(int(np.searchsorted(self._ts[node_id, :m], t, side="right")) - 1, 0)
        s = float(self._ts[node_id, j])
        e = float(self._te[node_id, j])
        if kind == _DIRECTION and not (s <= t < e):
            return 0.0  # parked zero-speed row
        if kind == _WAYPOINT and t >= e and j == m - 1:
            return 0.0  # held frontier: zero-speed row parked forever
        if e <= s or not math.isfinite(e):
            return 0.0
        dx = self._ax[node_id, j] - self._bx[node_id, j]
        dy = self._ay[node_id, j] - self._by[node_id, j]
        return math.hypot(dx, dy) / (e - s)

    def _check_row(self, node_id: int) -> None:
        if not 0 <= node_id < self._n:
            raise ConfigurationError(f"unknown MobilityBank row {node_id}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MobilityBank(n={self._n}, segments={self.segments_generated}, "
            f"cap={self._ts.shape})"
        )


class BankTrajectory(MobilityModel):
    """A node-facing :class:`MobilityModel` view over one bank row.

    Nodes keep their ``mobility.position(t)`` API; the calls land on the
    shared arrays so scalar residual queries (``lost_receivers`` /
    ``collided`` in the MAC medium) read the same trajectory the
    vectorized snapshot builds do.
    """

    __slots__ = ("_bank", "_node_id")

    def __init__(self, bank: MobilityBank, node_id: int) -> None:
        self._bank = bank
        self._node_id = node_id

    def position(self, t: float) -> Vec2:
        return self._bank.position_of(self._node_id, t)

    def speed_at(self, t: float) -> float:
        return self._bank.speed_of(self._node_id, t)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BankTrajectory(row={self._node_id})"
