"""Random-direction mobility (extension beyond the paper).

The random-waypoint model is known to concentrate terminals near the field
centre; the random-direction model avoids that bias: each terminal picks a
uniform heading and speed, travels until it hits the field boundary,
pauses, then picks a new heading.  Offered as an extension so the
sensitivity of the paper's results to the mobility model can be studied
(see ``benchmarks/test_ablation_mobility.py``).

Boundary-handling rule (explicit, because every variant in the literature
differs here): a leg always ends *on* the field boundary — the destination
is the first intersection of the heading ray with the rectangle's edges,
computed by :func:`boundary_hit` and clamped onto the field.  There is no
reflection, wrap-around, or in-field leg truncation.  After the pause the
next heading is drawn uniformly from ``[0, 2π)`` regardless of which edge
the terminal sits on; if that heading points *outward* (zero travel
distance), the heading is flipped by π and re-aimed once, with the travel
time floored at 1 µs so the segment is never degenerate.  Consequently
terminals touch edges often but never leave ``[0, width] x [0, height]``.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.errors import ConfigurationError
from repro.geometry.field import Field
from repro.geometry.vector import Vec2
from repro.mobility.base import MobilityModel
from repro.mobility.waypoint import Segment

__all__ = ["RandomDirection", "boundary_hit"]

_MIN_SPEED = 0.01


def boundary_hit(field: Field, origin: Vec2, heading: float) -> Vec2:
    """First intersection of a heading ray with the field boundary.

    Shared by the scalar model and :class:`repro.mobility.bank.MobilityBank`
    (segment assembly stays scalar in both, so batched trajectories use the
    very same cos/sin/division sequence).  Degenerate rays — starting on an
    edge and pointing outward, or axis-parallel along an edge — return
    ``origin`` unchanged; the caller re-aims.
    """
    dx, dy = math.cos(heading), math.sin(heading)
    best = math.inf
    if dx > 1e-12:
        best = min(best, (field.width - origin.x) / dx)
    elif dx < -1e-12:
        best = min(best, -origin.x / dx)
    if dy > 1e-12:
        best = min(best, (field.height - origin.y) / dy)
    elif dy < -1e-12:
        best = min(best, -origin.y / dy)
    if not math.isfinite(best) or best < 0:
        return origin
    return field.clamp(Vec2(origin.x + dx * best, origin.y + dy * best))


class RandomDirection(MobilityModel):
    """Travel on a uniform heading to the boundary, pause, repeat.

    See the module docstring for the exact boundary-handling rule.  Speeds
    are ``uniform(0, max_speed)`` clamped to ``_MIN_SPEED`` for the same
    speed-decay reason documented on :class:`RandomWaypoint`.
    """

    def __init__(
        self,
        field: Field,
        rng: random.Random,
        max_speed: float,
        pause_time: float = 3.0,
        start: Vec2 = None,
    ) -> None:
        if max_speed < 0:
            raise ConfigurationError(f"max_speed must be >= 0, got {max_speed}")
        if pause_time < 0:
            raise ConfigurationError(f"pause_time must be >= 0, got {pause_time}")
        self._field = field
        self._rng = rng
        self._max_speed = float(max_speed)
        self._pause = float(pause_time)
        origin = start if start is not None else field.random_point(rng)
        self._segments: List[Segment] = [Segment(0.0, 0.0, origin, origin)]

    @property
    def max_speed(self) -> float:
        """Configured maximum speed in m/s."""
        return self._max_speed

    @property
    def pause_time(self) -> float:
        """Configured pause at each boundary hit in seconds."""
        return self._pause

    @property
    def origin(self) -> Vec2:
        """Position at t = 0 (the initial zero-length pause's anchor)."""
        return self._segments[0].a

    def position(self, t: float) -> Vec2:
        if t < 0:
            t = 0.0
        self._extend_to(t)
        # Linear scan from the back: queries are usually near the frontier.
        for seg in reversed(self._segments):
            if seg.t_start <= t:
                if seg.t_end <= seg.t_start:
                    return seg.a
                return seg.position(min(t, seg.t_end))
        return self._segments[0].a  # pragma: no cover - defensive

    def speed_at(self, t: float) -> float:
        """Speed at ``t``; 0 during pauses and for parked terminals.

        Like :meth:`RandomWaypoint.speed_at`, the trajectory only *ends*
        when ``max_speed == 0``; then (and during pauses) the scan finds no
        covering ``[t_start, t_end)`` interval and 0.0 is reported.
        """
        if t < 0:
            t = 0.0
        self._extend_to(t)
        for seg in reversed(self._segments):
            if seg.t_start <= t < seg.t_end:
                return seg.speed
        return 0.0

    def _extend_to(self, t: float) -> None:
        if self._max_speed <= 0:
            return
        last = self._segments[-1]
        while last.t_end <= t:
            last = self._next_segment(last)
            self._segments.append(last)

    def _next_segment(self, last: Segment) -> Segment:
        if not last.is_pause:
            return Segment(last.t_end, last.t_end + self._pause, last.b, last.b)
        heading = self._rng.uniform(0.0, 2.0 * math.pi)
        speed = max(self._rng.uniform(0.0, self._max_speed), _MIN_SPEED)
        dest = boundary_hit(self._field, last.b, heading)
        travel = last.b.distance_to(dest) / speed
        if travel <= 0:  # started on the boundary heading outward: re-aim
            heading += math.pi
            dest = boundary_hit(self._field, last.b, heading)
            travel = max(last.b.distance_to(dest) / speed, 1e-6)
        return Segment(last.t_end, last.t_end + travel, last.b, dest)
