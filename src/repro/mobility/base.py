"""Mobility model interface."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.geometry.vector import Vec2

__all__ = ["MobilityModel"]


class MobilityModel(ABC):
    """Abstract mobility model: a trajectory queried by absolute time.

    Implementations must be *monotone-query friendly*: queries may arrive
    with non-decreasing ``t`` from the simulator, but implementations are
    required to answer correctly for any ``t >= 0`` (tests query out of
    order).
    """

    @abstractmethod
    def position(self, t: float) -> Vec2:
        """Exact position at absolute simulation time ``t`` (seconds)."""

    def speed_at(self, t: float) -> float:
        """Instantaneous speed at time ``t`` in m/s (0 when pausing).

        Default implementation differentiates numerically; concrete models
        override with the exact value.
        """
        dt = 1e-3
        a = self.position(max(0.0, t - dt))
        b = self.position(t + dt)
        return a.distance_to(b) / (2 * dt)
