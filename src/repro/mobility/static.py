"""Static (non-moving) terminals — the paper's MAXSPEED = 0 case."""

from __future__ import annotations

from repro.geometry.vector import Vec2
from repro.mobility.base import MobilityModel

__all__ = ["StaticPosition"]


class StaticPosition(MobilityModel):
    """A terminal pinned at a fixed position."""

    def __init__(self, position: Vec2) -> None:
        self._position = position

    def position(self, t: float) -> Vec2:
        return self._position

    def speed_at(self, t: float) -> float:
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StaticPosition({self._position.x:.1f}, {self._position.y:.1f})"
