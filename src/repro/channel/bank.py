"""The vectorized per-pair fading store: contiguous AR(1) state arrays.

:class:`FadingBank` replaces the dict-of-objects
(:class:`~repro.channel.fading.CompositeFadingProcess` per pair) fading
store with numpy-backed state: one row per active unordered node pair,
holding the shadowing and fast-fading AR(1) states side by side in
contiguous float64 arrays.  A whole neighbour set advances in one
vectorized transition

    x(t + dt) = rho * x(t) + sqrt(1 - rho^2) * sigma * N(0, 1),
    rho = exp(-dt / tau)

— the exact lazy Gauss-Markov update of
:class:`~repro.channel.fading.GaussMarkovProcess`, applied per row with
per-row ``dt`` (rows are advanced lazily, only when sampled).

**Determinism** comes from counter-based per-pair substreams instead of
stateful generators: the k-th innovation pair of pair ``(lo, hi)`` is a
pure function of ``(seed, lo, hi, k)`` — a splitmix64 stream keyed by the
pair, fed through Box-Muller.  Results are therefore reproducible per
seed and *independent of batch composition*: whether a pair is advanced
alone or inside a 50-neighbour batch, it consumes the same draws.  The
same counters drive both the vectorized batch path and the scalar
single-pair fast path (:meth:`FadingBank.sample_pair`), so mixed call
patterns stay deterministic.

The bank is the "vectorized" backend of
:class:`~repro.channel.model.ChannelModel`; the per-pair object store
remains available as ``backend="scalar"``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.channel.fading import BACKWARDS_TOLERANCE_S
from repro.errors import ConfigurationError, SimulationError

__all__ = ["FadingBank"]

#: Mask for 64-bit wrapping arithmetic in the scalar draw path.
_M64 = (1 << 64) - 1
#: splitmix64 sequence increment (Weyl constant).
_GAMMA = 0x9E3779B97F4A7C15
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB
#: 2**-32 — maps a 32-bit word onto [0, 1).
_PO32 = 2.0**-32
_TWO_PI = 2.0 * math.pi
#: Same backwards-sampling tolerance as GaussMarkovProcess.
_BACKWARDS_TOL_S = BACKWARDS_TOLERANCE_S

# uint64 copies of the constants so vector ops never leave uint64.
_U_GAMMA = np.uint64(_GAMMA)
_U_MASK32 = np.uint64(0xFFFFFFFF)
_U_MIX_1 = np.uint64(_MIX_1)
_U_MIX_2 = np.uint64(_MIX_2)


def _mix_vec(z: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer, vectorized over uint64 arrays."""
    z = (z ^ (z >> np.uint64(30))) * _U_MIX_1
    z = (z ^ (z >> np.uint64(27))) * _U_MIX_2
    return z ^ (z >> np.uint64(31))


def _mix_int(z: int) -> int:
    """splitmix64 finalizer on Python ints (wraps modulo 2**64)."""
    z = ((z ^ (z >> 30)) * _MIX_1) & _M64
    z = ((z ^ (z >> 27)) * _MIX_2) & _M64
    return z ^ (z >> 31)


class FadingBank:
    """Contiguous AR(1) fading state for every active node pair.

    Args:
        seed: substream root; pair ``(lo, hi)`` draws from a splitmix64
            stream keyed by ``(seed, lo, hi)``.
        shadow_sigma_db / shadow_tau_s: shadowing deviation and coherence.
        fast_sigma_db / fast_tau_s: fast-fading deviation and coherence.
        capacity: initial row capacity (grows by doubling).
    """

    def __init__(
        self,
        seed: int,
        shadow_sigma_db: float = 6.0,
        shadow_tau_s: float = 10.0,
        fast_sigma_db: float = 3.0,
        fast_tau_s: float = 0.5,
        capacity: int = 256,
    ) -> None:
        if shadow_sigma_db < 0 or fast_sigma_db < 0:
            raise ConfigurationError("fading sigmas must be >= 0")
        if shadow_tau_s <= 0 or fast_tau_s <= 0:
            raise ConfigurationError("fading coherence times must be positive")
        self._seed = int(seed) & _M64
        self._sigma_s = float(shadow_sigma_db)
        self._sigma_f = float(fast_sigma_db)
        self._tau_s = float(shadow_tau_s)
        self._tau_f = float(fast_tau_s)
        self._neg_inv_tau_s = -1.0 / self._tau_s
        self._neg_inv_tau_f = -1.0 / self._tau_f
        # Column vectors broadcasting the two AR(1) processes over a
        # (2, m) batch: row 0 is shadowing, row 1 fast fading.
        self._nit2 = np.array([[self._neg_inv_tau_s], [self._neg_inv_tau_f]])
        self._sig2 = np.array([[self._sigma_s], [self._sigma_f]])
        cap = max(int(capacity), 16)
        #: AR(1) states: ``_x[0]`` shadowing, ``_x[1]`` fast fading (dB).
        self._x = np.zeros((2, cap))
        self._t = np.zeros(cap)
        self._key = np.zeros(cap, dtype=np.uint64)
        self._ctr = np.zeros(cap, dtype=np.uint64)
        self._row_of: Dict[Tuple[int, int], int] = {}
        #: Symmetric per-origin view of ``_row_of`` (``_by_origin[a][b]``
        #: == ``_by_origin[b][a]``): the batched row gather does one plain
        #: dict lookup per neighbour instead of building a sorted tuple.
        self._by_origin: Dict[int, Dict[int, int]] = {}
        #: Python-int mirror of ``_key`` (write-once at allocation): the
        #: scalar fast path reads it without a numpy scalar conversion.
        self._key_int: List[int] = []
        self._n = 0
        #: Per-origin memo of the last neighbour set's row array (route
        #: monitors re-query near-identical sets every tick).
        self._rows_memo: Dict[int, Tuple[List[int], np.ndarray]] = {}
        #: Diagnostics: innovation pairs consumed across all rows.
        self.draws = 0

    # ------------------------------------------------------------------
    # Row management
    # ------------------------------------------------------------------
    @property
    def pair_count(self) -> int:
        """Number of pairs with allocated fading state."""
        return self._n

    def total_sigma_db(self) -> float:
        """Stationary standard deviation of the composite process."""
        return math.hypot(self._sigma_s, self._sigma_f)

    def _grow(self) -> None:
        cap = 2 * self._t.shape[0]
        new_x = np.zeros((2, cap))
        new_x[:, : self._n] = self._x[:, : self._n]
        self._x = new_x
        for name in ("_t", "_key", "_ctr"):
            old = getattr(self, name)
            new = np.zeros(cap, dtype=old.dtype)
            new[: self._n] = old[: self._n]
            setattr(self, name, new)

    def _alloc(self, lo: int, hi: int) -> int:
        if self._n == self._t.shape[0]:
            self._grow()
        row = self._n
        self._n += 1
        key = _mix_int(_mix_int(self._seed + _GAMMA * (lo + 1)) + _GAMMA * (hi + 1))
        # Draw 0 seeds the stationary start (counter 0), like the scalar
        # process drawing its t=0 state from the steady-state law.
        n1, n2 = self._draw_scalar(key, 0)
        self._key[row] = key
        self._key_int.append(key)
        self._ctr[row] = 1
        self._x[0, row] = self._sigma_s * n1
        self._x[1, row] = self._sigma_f * n2
        self._t[row] = 0.0
        self._row_of[lo, hi] = row
        self._by_origin.setdefault(lo, {})[hi] = row
        self._by_origin.setdefault(hi, {})[lo] = row
        self.draws += 1
        return row

    def row(self, a: int, b: int) -> int:
        """Row index of the unordered pair (allocated on first use)."""
        key = (a, b) if a < b else (b, a)
        row = self._row_of.get(key)
        if row is None:
            row = self._alloc(*key)
        return row

    def rows(self, a: int, others: Sequence[int]) -> np.ndarray:
        """Row indices of every ``a``<->``b`` pair for ``b`` in ``others``.

        Memoised per origin: consecutive queries for the same neighbour
        set (the steady-state of every periodic monitor) reuse the
        previous index array.  Pair -> row assignments never change, so
        the memo can only go stale by the *set* changing, which the list
        comparison detects.
        """
        memo = self._rows_memo.get(a)
        if memo is not None and memo[0] == others:
            return memo[1]
        sub = self._by_origin.get(a)
        if sub is None:
            sub = self._by_origin.setdefault(a, {})
        get = sub.get
        alloc = self._alloc
        out: List[int] = []
        append = out.append
        for b in others:
            row = get(b)
            if row is None:
                row = alloc(a, b) if a < b else alloc(b, a)
            append(row)
        arr = np.fromiter(out, dtype=np.intp, count=len(out))
        self._rows_memo[a] = (list(others), arr)
        return arr

    # ------------------------------------------------------------------
    # Counter-based innovations
    # ------------------------------------------------------------------
    def _draw_scalar(self, key: int, k: int) -> Tuple[float, float]:
        """Innovation pair ``k`` of the stream keyed by ``key`` (pure).

        One splitmix64 output supplies both Box-Muller uniforms (32 bits
        each): ``u1`` from the high word — offset into (0, 1] so the log
        is finite — and ``u2`` from the low word.
        """
        z = _mix_int((key + k * _GAMMA) & _M64)
        u1 = ((z >> 32) + 1) * _PO32  # (0, 1]
        u2 = (z & 0xFFFFFFFF) * _PO32  # [0, 1)
        r = math.sqrt(-2.0 * math.log(u1))
        ang = _TWO_PI * u2
        return r * math.cos(ang), r * math.sin(ang)

    @staticmethod
    def _draw_vec(keys: np.ndarray, ctrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_draw_scalar`: a (2, m) standard-normal batch
        (row 0 feeds shadowing, row 1 fast fading)."""
        z = _mix_vec(keys + ctrs * _U_GAMMA)
        u1 = ((z >> np.uint64(32)) + np.uint64(1)) * _PO32
        u2 = (z & _U_MASK32) * _PO32
        r = np.sqrt(np.log(u1) * -2.0)
        ang = _TWO_PI * u2
        out = np.empty((2, keys.shape[0]))
        np.cos(ang, out=out[0])
        np.sin(ang, out=out[1])
        out *= r
        return out

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_rows(self, rows: np.ndarray, t: float) -> np.ndarray:
        """Total fading (dB) of every row in ``rows`` at time ``t``.

        Rows are advanced lazily with the exact AR(1) transition for each
        row's elapsed ``dt``; equal-time queries return the cached state.
        """
        if not rows.size:
            return np.empty(0)
        last = self._t[rows]
        dt = t - last
        mn = dt.min()
        all_advance = mn > 0.0
        if not all_advance:
            if mn < -_BACKWARDS_TOL_S:
                raise SimulationError(
                    f"FadingBank sampled backwards in time: {t} < {last.max()}"
                )
            adv = dt > 0.0
            if not adv.any():
                x = self._x[:, rows]
                return x[0] + x[1]
            sub = rows[adv]
            dt = dt[adv]
        else:
            sub = rows
        rho = np.exp(dt * self._nit2)  # (2, m): row 0 shadow, row 1 fast
        inn = self._sig2 * np.sqrt(np.maximum(1.0 - rho * rho, 0.0))
        norms = self._draw_vec(self._key[sub], self._ctr[sub])
        new = rho * self._x[:, sub]
        new += inn * norms
        self._x[:, sub] = new
        self._t[sub] = t
        # Buffered fancy-index add: duplicated rows (symmetric pairs fed
        # from both directions of an adjacency) advance exactly once.
        self._ctr[sub] += np.uint64(1)
        self.draws += int(np.unique(sub).size)
        if all_advance:
            return new[0] + new[1]
        x = self._x[:, rows]
        return x[0] + x[1]

    def sample_pairs(self, a: int, others: Sequence[int], t: float) -> np.ndarray:
        """Total fading (dB) of every ``a``<->``b`` channel at time ``t``."""
        return self.sample_rows(self.rows(a, others), t)

    def sample_pair(self, a: int, b: int, t: float) -> float:
        """Scalar fast path: total fading (dB) of one pair at time ``t``.

        Shares rows — and the per-pair draw counters — with the batched
        path, so single-pair probes interleave with neighbour-set queries
        without perturbing determinism.
        """
        row = self.row(a, b)
        t_arr = self._t
        last = t_arr.item(row)
        dt = t - last
        x = self._x
        if dt <= 0.0:
            if dt < -_BACKWARDS_TOL_S:
                raise SimulationError(
                    f"FadingBank sampled backwards in time: {t} < {last}"
                )
            return x.item(0, row) + x.item(1, row)
        rho_s = math.exp(dt * self._neg_inv_tau_s)
        rho_f = math.exp(dt * self._neg_inv_tau_f)
        inn_s = self._sigma_s * math.sqrt(max(1.0 - rho_s * rho_s, 0.0))
        inn_f = self._sigma_f * math.sqrt(max(1.0 - rho_f * rho_f, 0.0))
        ctr = self._ctr
        k = ctr.item(row)
        n1, n2 = self._draw_scalar(self._key_int[row], k)
        shadow = rho_s * x.item(0, row) + inn_s * n1
        fast = rho_f * x.item(1, row) + inn_f * n2
        x[0, row] = shadow
        x[1, row] = fast
        t_arr[row] = t
        ctr[row] = k + 1
        self.draws += 1
        return shadow + fast

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FadingBank(pairs={self._n}, draws={self.draws})"
