"""The per-pair channel store queried by the MAC and routing layers.

:class:`ChannelModel` combines the distance-dependent mean SNR with
per-pair fading to produce each pair's instantaneous SNR, CSI class,
throughput and CSI hop distance.  Channels are symmetric —
``state(a, b, t) == state(b, a, t)`` — matching the paper's implicit
assumption that the CSI measured on a received packet predicts the
quality of the reverse transmission.

Two interchangeable fading backends sit underneath:

* ``"vectorized"`` (default) — a :class:`~repro.channel.bank.FadingBank`:
  contiguous numpy AR(1) state arrays, one row per active pair, advanced
  lazily with counter-based per-pair substreams.  Neighbour-set queries
  (:meth:`ChannelModel.states`, :meth:`ChannelModel.csi_hop_distances`)
  run as one array pipeline — batched distances → vectorized path loss →
  bank sample → ``searchsorted`` classification — so the Python cost per
  query is O(1) in the neighbour count.
* ``"scalar"`` — the original dict of per-pair
  :class:`~repro.channel.fading.CompositeFadingProcess` objects (kept as
  the differential-testing reference and for numpy-free analysis).

Both backends are deterministic per seed; they draw from different
substream constructions, so their sample paths differ while matching in
distribution (pinned by ``tests/test_channel_vectorized.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.channel.abicm import AbicmScheme
from repro.channel.bank import FadingBank
from repro.channel.csi import (
    CLASS_BY_INDEX,
    HOP_DISTANCE_BY_INDEX,
    ChannelClass,
    CsiThresholds,
)
from repro.channel.fading import CompositeFadingProcess
from repro.channel.propagation import PathLossModel
from repro.errors import ConfigurationError
from repro.geometry.vector import Vec2
from repro.sim.rng import RandomStreams, derive_seed

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology import TopologyIndex

__all__ = ["ChannelModel", "ChannelConfig", "CHANNEL_BACKENDS"]

PositionFn = Callable[[int, float], Vec2]

#: Recognised fading backends.
CHANNEL_BACKENDS = ("vectorized", "scalar")

#: Below this neighbour count a batched query loops over the bank's
#: scalar fast path instead: numpy's per-call dispatch overhead beats the
#: work it saves on tiny sets (the crossover sits around 15-25 pairs).
#: Determinism is unaffected — both paths consume the same per-pair
#: counters.
SMALL_SET_CUTOFF = 16


@dataclass(frozen=True)
class ChannelConfig:
    """All tunables of the physical channel in one place."""

    path_loss: PathLossModel = field(default_factory=PathLossModel)
    thresholds: CsiThresholds = field(default_factory=CsiThresholds)
    abicm: AbicmScheme = field(default_factory=AbicmScheme)
    shadow_sigma_db: float = 6.0
    shadow_tau_s: float = 10.0
    fast_sigma_db: float = 3.0
    fast_tau_s: float = 0.5

    def __post_init__(self) -> None:
        if self.shadow_sigma_db < 0 or self.fast_sigma_db < 0:
            raise ConfigurationError("fading sigmas must be >= 0")
        if self.shadow_tau_s <= 0 or self.fast_tau_s <= 0:
            raise ConfigurationError("fading coherence times must be positive")


class ChannelModel:
    """Symmetric, lazily-instantiated channels between node pairs.

    Args:
        config: channel tunables.
        streams: random stream factory.  The scalar backend gives each
            pair stream ``"channel/<lo>-<hi>"``; the vectorized backend
            derives its counter-based substream root from the same master
            seed (stream ``"channel/bank"``).
        position_fn: callback ``(node_id, t) -> Vec2`` supplying exact node
            positions (the network layer provides this).
        backend: ``"vectorized"`` (numpy fading bank, the default) or
            ``"scalar"`` (per-pair Python processes).
        topology: optional :class:`~repro.topology.TopologyIndex`; when
            attached, neighbour-set queries gather candidate positions and
            distances through its batched array path.
    """

    def __init__(
        self,
        config: ChannelConfig,
        streams: RandomStreams,
        position_fn: PositionFn,
        backend: str = "vectorized",
        topology: Optional["TopologyIndex"] = None,
    ) -> None:
        if backend not in CHANNEL_BACKENDS:
            raise ConfigurationError(
                f"unknown channel backend {backend!r}; known: {', '.join(CHANNEL_BACKENDS)}"
            )
        self._config = config
        self._streams = streams
        self._position_fn = position_fn
        self._topology = topology
        self.backend = backend
        self._fading: Dict[Tuple[int, int], CompositeFadingProcess] = {}
        self._bank: Optional[FadingBank] = None
        if backend == "vectorized":
            self._bank = FadingBank(
                derive_seed(streams.seed, "channel/bank"),
                shadow_sigma_db=config.shadow_sigma_db,
                shadow_tau_s=config.shadow_tau_s,
                fast_sigma_db=config.fast_sigma_db,
                fast_tau_s=config.fast_tau_s,
            )
        # Memoised per-class lookups: IntEnum (or raw class value) indexes
        # a tuple, replacing dict hashing on the per-sample fast path.
        self._hop_by_class: Tuple[float, ...] = HOP_DISTANCE_BY_INDEX
        self._hop_array = np.array(HOP_DISTANCE_BY_INDEX)
        self._rate_by_class: Tuple[float, ...] = tuple(
            config.abicm.throughput(c) for c in sorted(ChannelClass)
        )
        #: Aggregate diagnostic: SNR samples taken (counted per batch, not
        #: inside the per-pair loop).
        self.samples_taken = 0

    @property
    def config(self) -> ChannelConfig:
        """The channel configuration in force."""
        return self._config

    @property
    def tx_range(self) -> float:
        """Hard transmission range in metres."""
        return self._config.path_loss.tx_range

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def distance(self, a: int, b: int, t: float) -> float:
        """Distance between nodes ``a`` and ``b`` at time ``t`` (metres)."""
        return self._position_fn(a, t).distance_to(self._position_fn(b, t))

    def in_range(self, a: int, b: int, t: float) -> bool:
        """True if ``a`` and ``b`` are within transmission range at ``t``."""
        if a == b:
            return False
        return self._config.path_loss.in_range(self.distance(a, b, t))

    def within(self, a: int, b: int, t: float, range_m: float) -> bool:
        """True if ``a`` and ``b`` are within ``range_m`` metres at ``t``.

        Used by the MAC for carrier sensing and interference, whose reach
        exceeds the decode range (a transmitter too far away to decode can
        still raise the sensed energy and corrupt receptions).
        """
        if a == b:
            return False
        return self.distance(a, b, t) <= range_m

    # ------------------------------------------------------------------
    # Channel state (single pair)
    # ------------------------------------------------------------------
    def snr_db(self, a: int, b: int, t: float) -> float:
        """Instantaneous SNR (dB) of the a<->b channel at time ``t``."""
        self.samples_taken += 1
        mean = self._config.path_loss.mean_snr_db(self.distance(a, b, t))
        if self._bank is not None:
            return mean + self._bank.sample_pair(a, b, t)
        return mean + self._fading_process(a, b).sample(t)

    def state(self, a: int, b: int, t: float) -> ChannelClass:
        """CSI class of the a<->b channel at time ``t``."""
        return self._config.thresholds.classify(self.snr_db(a, b, t))

    def throughput_bps(self, a: int, b: int, t: float) -> float:
        """Effective throughput (bps) after adaptive coding/modulation."""
        return self._rate_by_class[self.state(a, b, t)]

    def csi_hop_distance(self, a: int, b: int, t: float) -> float:
        """CSI-based hop distance of the a<->b link at time ``t``."""
        return self._hop_by_class[self.state(a, b, t)]

    def link_metrics(self, a: int, b: int, t: float) -> Tuple[float, float]:
        """One channel sample serving both routing accumulators:
        ``(csi_hop_distance, throughput_bps)`` of the a<->b link."""
        cls = self.state(a, b, t)
        return self._hop_by_class[cls], self._rate_by_class[cls]

    def transmission_time(self, a: int, b: int, t: float, bits: int) -> float:
        """Seconds to transmit ``bits`` over the a<->b data channel at ``t``."""
        return self._config.abicm.transmission_time(self.state(a, b, t), bits)

    # ------------------------------------------------------------------
    # Batched lookups (one array pipeline for a whole neighbour set)
    # ------------------------------------------------------------------
    def _batch_snr(self, a: int, others: Sequence[int], t: float) -> np.ndarray:
        """Vectorized fading pipeline: distances → mean SNR → bank sample."""
        if self._topology is not None:
            d = self._topology.distances_from(a, others, t)
        else:
            origin = self._position_fn(a, t)
            pfn = self._position_fn
            d = np.fromiter(
                (origin.distance_to(pfn(b, t)) for b in others),
                dtype=float,
                count=len(others),
            )
        snr = self._config.path_loss.mean_snr_db_array(d)
        snr += self._bank.sample_pairs(a, others, t)
        self.samples_taken += len(others)
        return snr

    def _small_states(self, a: int, others: Sequence[int], t: float) -> Dict[int, ChannelClass]:
        """Tiny-set path: the bank's scalar samples, one origin fetch."""
        origin = self._position_fn(a, t)
        pfn = self._position_fn
        mean = self._config.path_loss.mean_snr_db
        classify = self._config.thresholds.classify
        sample = self._bank.sample_pair
        self.samples_taken += len(others)
        return {
            b: classify(mean(origin.distance_to(pfn(b, t))) + sample(a, b, t))
            for b in others
        }

    def states(self, a: int, others: Sequence[int], t: float) -> Dict[int, ChannelClass]:
        """CSI classes of every a<->b channel for ``b`` in ``others``.

        Equivalent to ``{b: self.state(a, b, t) for b in others}`` but,
        on the vectorized backend, computed as one array pipeline —
        O(1) Python calls per query instead of O(neighbours) — for sets
        past :data:`SMALL_SET_CUTOFF` (tiny sets loop over the scalar
        fast path, which is cheaper than numpy dispatch).
        """
        if self._bank is not None:
            if not others:
                return {}
            if len(others) <= SMALL_SET_CUTOFF:
                return self._small_states(a, others, t)
            idx = self._config.thresholds.classify_indices(self._batch_snr(a, others, t))
            classes = CLASS_BY_INDEX
            return {b: classes[i] for b, i in zip(others, idx.tolist())}
        origin = self._position_fn(a, t)
        classify = self._config.thresholds.classify
        result = {b: classify(self._snr_db_from(origin, a, b, t)) for b in others}
        self.samples_taken += len(result)
        return result

    def csi_hop_distances(self, a: int, others: Sequence[int], t: float) -> Dict[int, float]:
        """CSI hop distances of every a<->b link for ``b`` in ``others``."""
        if self._bank is not None:
            if not others:
                return {}
            if len(others) <= SMALL_SET_CUTOFF:
                hop = self._hop_by_class
                return {b: hop[s] for b, s in self._small_states(a, others, t).items()}
            idx = self._config.thresholds.classify_indices(self._batch_snr(a, others, t))
            return dict(zip(others, self._hop_array[idx].tolist()))
        hop = self._hop_by_class
        return {b: hop[s] for b, s in self.states(a, others, t).items()}

    def csi_hop_map(
        self, adjacency: Dict[int, Sequence[int]], t: float
    ) -> Dict[int, Dict[int, float]]:
        """CSI hop distances of every link of a whole adjacency at ``t``.

        Equivalent to ``{a: self.csi_hop_distances(a, nbrs, t) for a, nbrs
        in adjacency.items()}`` but, on the vectorized backend, the entire
        network scans as *one* flattened array pipeline: every (origin,
        neighbour) pair's distance, mean SNR, fading sample and class in
        single numpy passes.  Symmetric pairs appearing on both rows
        advance once and read the same sample, preserving
        ``state(a, b) == state(b, a)``.
        """
        if self._bank is None or self._topology is None:
            return {
                a: self.csi_hop_distances(a, others, t) for a, others in adjacency.items()
            }
        coords, slot_of = self._topology.coords_view(t)
        rows_of = self._bank.rows
        row_parts = []
        a_slots: list = []
        counts: list = []
        b_flat: list = []
        for a, others in adjacency.items():
            if not others:
                continue
            a_slots.append(a if slot_of is None else slot_of[a])
            counts.append(len(others))
            b_flat.extend(others)
            row_parts.append(rows_of(a, others))
        if not row_parts:
            return {a: {} for a in adjacency}
        if slot_of is None:
            idx_b = np.asarray(b_flat, dtype=np.intp)
        else:
            idx_b = np.fromiter(
                (slot_of[b] for b in b_flat), dtype=np.intp, count=len(b_flat)
            )
        idx_a = np.repeat(np.asarray(a_slots, dtype=np.intp), counts)
        pa = coords[idx_a]
        pb = coords[idx_b]
        d = np.hypot(pb[:, 0] - pa[:, 0], pb[:, 1] - pa[:, 1])
        snr = self._config.path_loss.mean_snr_db_array(d)
        snr += self._bank.sample_rows(np.concatenate(row_parts), t)
        self.samples_taken += len(snr)
        hops = self._hop_array[self._config.thresholds.classify_indices(snr)].tolist()
        out: Dict[int, Dict[int, float]] = {}
        pos = 0
        for a, others in adjacency.items():
            n = len(others)
            out[a] = dict(zip(others, hops[pos : pos + n]))
            pos += n
        return out

    # ------------------------------------------------------------------
    # Scalar-backend internals
    # ------------------------------------------------------------------
    def _snr_db_from(self, origin: Vec2, a: int, b: int, t: float) -> float:
        """SNR with the origin position precomputed (shared by the scalar
        batched lookup, which fetches it once per neighbour set)."""
        mean = self._config.path_loss.mean_snr_db(
            origin.distance_to(self._position_fn(b, t))
        )
        return mean + self._fading_process(a, b).sample(t)

    def _fading_process(self, a: int, b: int) -> CompositeFadingProcess:
        key = (a, b) if a < b else (b, a)
        proc = self._fading.get(key)
        if proc is None:
            cfg = self._config
            proc = CompositeFadingProcess(
                self._streams.stream(f"channel/{key[0]}-{key[1]}"),
                shadow_sigma_db=cfg.shadow_sigma_db,
                shadow_tau_s=cfg.shadow_tau_s,
                fast_sigma_db=cfg.fast_sigma_db,
                fast_tau_s=cfg.fast_tau_s,
            )
            self._fading[key] = proc
        return proc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        pairs = self._bank.pair_count if self._bank is not None else len(self._fading)
        return (
            f"ChannelModel(backend={self.backend}, pairs={pairs}, "
            f"samples={self.samples_taken})"
        )
