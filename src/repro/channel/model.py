"""The per-pair channel store queried by the MAC and routing layers.

:class:`ChannelModel` owns one :class:`~repro.channel.fading.CompositeFadingProcess`
per unordered node pair (created lazily the first time a pair interacts) and
combines it with the distance-dependent mean SNR to produce the pair's
instantaneous SNR, CSI class, throughput and CSI hop distance.  Channels are
symmetric — ``state(a, b, t) == state(b, a, t)`` — matching the paper's
implicit assumption that the CSI measured on a received packet predicts the
quality of the reverse transmission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple

from repro.channel.abicm import AbicmScheme
from repro.channel.csi import ChannelClass, CsiThresholds, hop_distance
from repro.channel.fading import CompositeFadingProcess
from repro.channel.propagation import PathLossModel
from repro.errors import ConfigurationError
from repro.geometry.vector import Vec2
from repro.sim.rng import RandomStreams

__all__ = ["ChannelModel", "ChannelConfig"]

PositionFn = Callable[[int, float], Vec2]


@dataclass(frozen=True)
class ChannelConfig:
    """All tunables of the physical channel in one place."""

    path_loss: PathLossModel = field(default_factory=PathLossModel)
    thresholds: CsiThresholds = field(default_factory=CsiThresholds)
    abicm: AbicmScheme = field(default_factory=AbicmScheme)
    shadow_sigma_db: float = 6.0
    shadow_tau_s: float = 10.0
    fast_sigma_db: float = 3.0
    fast_tau_s: float = 0.5

    def __post_init__(self) -> None:
        if self.shadow_sigma_db < 0 or self.fast_sigma_db < 0:
            raise ConfigurationError("fading sigmas must be >= 0")
        if self.shadow_tau_s <= 0 or self.fast_tau_s <= 0:
            raise ConfigurationError("fading coherence times must be positive")


class ChannelModel:
    """Symmetric, lazily-instantiated channels between node pairs.

    Args:
        config: channel tunables.
        streams: random stream factory; each pair gets stream
            ``"channel/<lo>-<hi>"``.
        position_fn: callback ``(node_id, t) -> Vec2`` supplying exact node
            positions (the network layer provides this).
    """

    def __init__(
        self,
        config: ChannelConfig,
        streams: RandomStreams,
        position_fn: PositionFn,
    ) -> None:
        self._config = config
        self._streams = streams
        self._position_fn = position_fn
        self._fading: Dict[Tuple[int, int], CompositeFadingProcess] = {}
        self.samples_taken = 0  # diagnostic counter

    @property
    def config(self) -> ChannelConfig:
        """The channel configuration in force."""
        return self._config

    @property
    def tx_range(self) -> float:
        """Hard transmission range in metres."""
        return self._config.path_loss.tx_range

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def distance(self, a: int, b: int, t: float) -> float:
        """Distance between nodes ``a`` and ``b`` at time ``t`` (metres)."""
        return self._position_fn(a, t).distance_to(self._position_fn(b, t))

    def in_range(self, a: int, b: int, t: float) -> bool:
        """True if ``a`` and ``b`` are within transmission range at ``t``."""
        if a == b:
            return False
        return self._config.path_loss.in_range(self.distance(a, b, t))

    def within(self, a: int, b: int, t: float, range_m: float) -> bool:
        """True if ``a`` and ``b`` are within ``range_m`` metres at ``t``.

        Used by the MAC for carrier sensing and interference, whose reach
        exceeds the decode range (a transmitter too far away to decode can
        still raise the sensed energy and corrupt receptions).
        """
        if a == b:
            return False
        return self.distance(a, b, t) <= range_m

    # ------------------------------------------------------------------
    # Channel state
    # ------------------------------------------------------------------
    def snr_db(self, a: int, b: int, t: float) -> float:
        """Instantaneous SNR (dB) of the a<->b channel at time ``t``."""
        return self._snr_db_from(self._position_fn(a, t), a, b, t)

    def _snr_db_from(self, origin: Vec2, a: int, b: int, t: float) -> float:
        """SNR with the origin position precomputed (shared by the batched
        lookups, which fetch it once per neighbour set)."""
        mean = self._config.path_loss.mean_snr_db(
            origin.distance_to(self._position_fn(b, t))
        )
        self.samples_taken += 1
        return mean + self._fading_process(a, b).sample(t)

    def state(self, a: int, b: int, t: float) -> ChannelClass:
        """CSI class of the a<->b channel at time ``t``."""
        return self._config.thresholds.classify(self.snr_db(a, b, t))

    def throughput_bps(self, a: int, b: int, t: float) -> float:
        """Effective throughput (bps) after adaptive coding/modulation."""
        return self._config.abicm.throughput(self.state(a, b, t))

    def csi_hop_distance(self, a: int, b: int, t: float) -> float:
        """CSI-based hop distance of the a<->b link at time ``t``."""
        return hop_distance(self.state(a, b, t))

    # ------------------------------------------------------------------
    # Batched lookups (one origin-position fetch for a whole neighbour set)
    # ------------------------------------------------------------------
    def states(self, a: int, others: Sequence[int], t: float) -> Dict[int, ChannelClass]:
        """CSI classes of every a<->b channel for ``b`` in ``others``.

        Equivalent to ``{b: self.state(a, b, t) for b in others}`` but
        samples the origin position once; with the network's topology
        index supplying ``position_fn``, the per-pair cost is one cached
        position lookup plus the fading sample.
        """
        origin = self._position_fn(a, t)
        classify = self._config.thresholds.classify
        return {b: classify(self._snr_db_from(origin, a, b, t)) for b in others}

    def csi_hop_distances(self, a: int, others: Sequence[int], t: float) -> Dict[int, float]:
        """CSI hop distances of every a<->b link for ``b`` in ``others``."""
        return {b: hop_distance(s) for b, s in self.states(a, others, t).items()}

    def transmission_time(self, a: int, b: int, t: float, bits: int) -> float:
        """Seconds to transmit ``bits`` over the a<->b data channel at ``t``."""
        return self._config.abicm.transmission_time(self.state(a, b, t), bits)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _fading_process(self, a: int, b: int) -> CompositeFadingProcess:
        key = (a, b) if a < b else (b, a)
        proc = self._fading.get(key)
        if proc is None:
            cfg = self._config
            proc = CompositeFadingProcess(
                self._streams.stream(f"channel/{key[0]}-{key[1]}"),
                shadow_sigma_db=cfg.shadow_sigma_db,
                shadow_tau_s=cfg.shadow_tau_s,
                fast_sigma_db=cfg.fast_sigma_db,
                fast_tau_s=cfg.fast_tau_s,
            )
            self._fading[key] = proc
        return proc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ChannelModel(pairs={len(self._fading)}, samples={self.samples_taken})"
