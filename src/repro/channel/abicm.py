"""ABICM — adaptive bit-interleaved coded modulation (observable effect).

The paper relies on Lau's ABICM scheme [5]: the transmitter adapts the
amount of error protection to the channel state, so the *effective
throughput* of a link is a function of its CSI class.  The physical-layer
details are irrelevant to routing; what the network sees is the class →
throughput table below (paper Section II-A).  This module is the documented
substitution for the proprietary ABICM implementation (see DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.channel.csi import ChannelClass
from repro.errors import ConfigurationError

__all__ = ["AbicmScheme", "CLASS_THROUGHPUT_BPS"]


#: Effective link throughput per CSI class, bits/second (paper Section II-A).
CLASS_THROUGHPUT_BPS: Dict[ChannelClass, float] = {
    ChannelClass.A: 250_000.0,
    ChannelClass.B: 150_000.0,
    ChannelClass.C: 75_000.0,
    ChannelClass.D: 50_000.0,
}


@dataclass(frozen=True)
class AbicmScheme:
    """Class → effective throughput mapping after adaptive coding/modulation.

    The default table is the paper's.  A custom table (e.g. for ablations
    that coarsen or refine the quantisation) must preserve monotonicity:
    better classes may not be slower.
    """

    throughput_bps: Dict[ChannelClass, float] = field(
        default_factory=lambda: dict(CLASS_THROUGHPUT_BPS)
    )

    def __post_init__(self) -> None:
        missing = [c for c in ChannelClass if c not in self.throughput_bps]
        if missing:
            raise ConfigurationError(f"AbicmScheme table missing classes: {missing}")
        rates = [self.throughput_bps[c] for c in sorted(ChannelClass)]
        if any(r <= 0 for r in rates):
            raise ConfigurationError("AbicmScheme throughputs must be positive")
        if any(hi < lo for hi, lo in zip(rates, rates[1:])):
            raise ConfigurationError("AbicmScheme throughputs must not increase as class worsens")
        # Memoised class-value -> rate tuple: the per-sample fast path
        # indexes this instead of hashing into the dict (frozen dataclass,
        # hence object.__setattr__).
        object.__setattr__(self, "_rate_by_index", tuple(rates))

    def throughput(self, cls: ChannelClass) -> float:
        """Effective throughput (bps) of a link in class ``cls``."""
        return self._rate_by_index[cls]

    def transmission_time(self, cls: ChannelClass, bits: int) -> float:
        """Seconds to push ``bits`` through a link in class ``cls``."""
        if bits < 0:
            raise ConfigurationError(f"bits must be >= 0, got {bits}")
        return bits / self._rate_by_index[cls]

    def hop_distance(self, cls: ChannelClass) -> float:
        """CSI hop distance implied by this table (class A normalised to 1).

        For the paper's table this equals :data:`repro.channel.csi.HOP_DISTANCE`.
        """
        return self.throughput_bps[ChannelClass.A] / self.throughput_bps[cls]
