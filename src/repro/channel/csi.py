"""Channel state information (CSI) classes and the CSI hop-distance metric.

The paper defines four channel quality classes A-D and a *CSI-based hop
distance*: a class-A link counts as 1 hop; lower classes count as the ratio
of class-A throughput to their own (B = 250/150 = 5/3, C = 250/75 = 10/3,
D = 250/50 = 5), because the transmission delay scales inversely with
throughput.  Channel-adaptive protocols (RICA, BGCA) minimise path length
under this metric.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "ChannelClass",
    "CsiThresholds",
    "hop_distance",
    "HOP_DISTANCE",
    "HOP_DISTANCE_BY_INDEX",
    "CLASS_BY_INDEX",
]


class ChannelClass(enum.IntEnum):
    """Channel quality class, ordered best (A) to worst (D)."""

    A = 0
    B = 1
    C = 2
    D = 3

    @property
    def label(self) -> str:
        """Single-letter label as used in the paper's figures."""
        return self.name


#: CSI hop distance per class (paper Section II-A).
HOP_DISTANCE = {
    ChannelClass.A: 1.0,
    ChannelClass.B: 5.0 / 3.0,
    ChannelClass.C: 10.0 / 3.0,
    ChannelClass.D: 5.0,
}

#: The same table as a tuple indexed by ``ChannelClass`` value — the
#: per-sample fast path (an IntEnum indexes a tuple directly).
HOP_DISTANCE_BY_INDEX = tuple(HOP_DISTANCE[c] for c in sorted(ChannelClass))

#: Class objects indexed by value, for mapping classify_array results back.
CLASS_BY_INDEX = tuple(sorted(ChannelClass))


def hop_distance(cls: ChannelClass) -> float:
    """CSI-based hop distance of a single link of class ``cls``."""
    return HOP_DISTANCE_BY_INDEX[cls]


@dataclass(frozen=True)
class CsiThresholds:
    """SNR thresholds (dB) quantising instantaneous SNR into classes.

    A link with SNR >= ``a_db`` is class A; >= ``b_db`` class B; >= ``c_db``
    class C; anything below is class D.  Defaults are chosen so that, with
    the default propagation and fading parameters, links sampled over
    random-waypoint node pairs inside transmission range spread over all
    four classes with a healthy mix (validated by the statistical tests in
    ``tests/channel/test_model.py``).
    """

    a_db: float = 18.0
    b_db: float = 12.0
    c_db: float = 6.0

    def __post_init__(self) -> None:
        if not (self.a_db > self.b_db > self.c_db):
            raise ConfigurationError(
                f"CSI thresholds must be strictly decreasing, got "
                f"A={self.a_db}, B={self.b_db}, C={self.c_db}"
            )
        # Ascending bounds for the vectorized searchsorted classifier
        # (set via object.__setattr__: the dataclass is frozen).
        object.__setattr__(
            self, "_bounds", np.array([self.c_db, self.b_db, self.a_db])
        )

    def classify(self, snr_db: float) -> ChannelClass:
        """Map an instantaneous SNR (dB) to a channel class."""
        if snr_db >= self.a_db:
            return ChannelClass.A
        if snr_db >= self.b_db:
            return ChannelClass.B
        if snr_db >= self.c_db:
            return ChannelClass.C
        return ChannelClass.D

    def classify_indices(self, snr_db: np.ndarray) -> np.ndarray:
        """Vectorized classifier: class *values* (A=0 … D=3) per SNR.

        ``searchsorted`` over the ascending threshold bounds counts how
        many thresholds each SNR meets (``side="right"`` keeps the
        boundary inclusive, matching :meth:`classify` at exact
        thresholds); ``3 - count`` is the class value.
        """
        return 3 - np.searchsorted(self._bounds, snr_db, side="right")
