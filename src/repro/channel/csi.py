"""Channel state information (CSI) classes and the CSI hop-distance metric.

The paper defines four channel quality classes A-D and a *CSI-based hop
distance*: a class-A link counts as 1 hop; lower classes count as the ratio
of class-A throughput to their own (B = 250/150 = 5/3, C = 250/75 = 10/3,
D = 250/50 = 5), because the transmission delay scales inversely with
throughput.  Channel-adaptive protocols (RICA, BGCA) minimise path length
under this metric.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["ChannelClass", "CsiThresholds", "hop_distance", "HOP_DISTANCE"]


class ChannelClass(enum.IntEnum):
    """Channel quality class, ordered best (A) to worst (D)."""

    A = 0
    B = 1
    C = 2
    D = 3

    @property
    def label(self) -> str:
        """Single-letter label as used in the paper's figures."""
        return self.name


#: CSI hop distance per class (paper Section II-A).
HOP_DISTANCE = {
    ChannelClass.A: 1.0,
    ChannelClass.B: 5.0 / 3.0,
    ChannelClass.C: 10.0 / 3.0,
    ChannelClass.D: 5.0,
}


def hop_distance(cls: ChannelClass) -> float:
    """CSI-based hop distance of a single link of class ``cls``."""
    return HOP_DISTANCE[cls]


@dataclass(frozen=True)
class CsiThresholds:
    """SNR thresholds (dB) quantising instantaneous SNR into classes.

    A link with SNR >= ``a_db`` is class A; >= ``b_db`` class B; >= ``c_db``
    class C; anything below is class D.  Defaults are chosen so that, with
    the default propagation and fading parameters, links sampled over
    random-waypoint node pairs inside transmission range spread over all
    four classes with a healthy mix (validated by the statistical tests in
    ``tests/channel/test_model.py``).
    """

    a_db: float = 18.0
    b_db: float = 12.0
    c_db: float = 6.0

    def __post_init__(self) -> None:
        if not (self.a_db > self.b_db > self.c_db):
            raise ConfigurationError(
                f"CSI thresholds must be strictly decreasing, got "
                f"A={self.a_db}, B={self.b_db}, C={self.c_db}"
            )

    def classify(self, snr_db: float) -> ChannelClass:
        """Map an instantaneous SNR (dB) to a channel class."""
        if snr_db >= self.a_db:
            return ChannelClass.A
        if snr_db >= self.b_db:
            return ChannelClass.B
        if snr_db >= self.c_db:
            return ChannelClass.C
        return ChannelClass.D
