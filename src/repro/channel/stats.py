"""Channel statistics helpers — calibration and diagnostics.

These utilities answer questions like "what class mix does a 150 m link
visit?" or "how long does a class dwell last?", which the test suite uses
to validate the fading calibration against the regime the paper assumes
(class dwell times around the CSI-checking period).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from repro.channel.csi import ChannelClass
from repro.channel.model import ChannelConfig, ChannelModel
from repro.geometry.vector import Vec2
from repro.sim.rng import RandomStreams

__all__ = ["class_distribution", "mean_dwell_time_s", "sample_classes"]


def sample_classes(
    distance_m: float,
    duration_s: float = 600.0,
    step_s: float = 0.1,
    config: ChannelConfig = None,
    seed: int = 0,
) -> List[ChannelClass]:
    """Time series of CSI classes for a static pair ``distance_m`` apart."""
    positions = {0: Vec2(0.0, 0.0), 1: Vec2(distance_m, 0.0)}
    model = ChannelModel(
        config or ChannelConfig(), RandomStreams(seed), lambda nid, t: positions[nid]
    )
    n_steps = int(round(duration_s / step_s))
    return [model.state(0, 1, i * step_s) for i in range(n_steps)]


def class_distribution(
    distance_m: float,
    duration_s: float = 600.0,
    step_s: float = 0.1,
    config: ChannelConfig = None,
    seed: int = 0,
) -> Dict[ChannelClass, float]:
    """Fraction of time a link at ``distance_m`` spends in each class."""
    samples = sample_classes(distance_m, duration_s, step_s, config, seed)
    counts = Counter(samples)
    total = len(samples)
    return {cls: counts.get(cls, 0) / total for cls in ChannelClass}


def mean_dwell_time_s(
    distance_m: float,
    duration_s: float = 600.0,
    step_s: float = 0.05,
    config: ChannelConfig = None,
    seed: int = 0,
) -> float:
    """Average time the channel stays in one class before switching."""
    samples = sample_classes(distance_m, duration_s, step_s, config, seed)
    if not samples:
        return 0.0
    dwells = []
    run = 1
    for prev, cur in zip(samples, samples[1:]):
        if cur == prev:
            run += 1
        else:
            dwells.append(run * step_s)
            run = 1
    dwells.append(run * step_s)
    return sum(dwells) / len(dwells)
