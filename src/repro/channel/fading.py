"""Small-scale fading and shadowing as lazily-advanced Gauss-Markov processes.

The paper's channel captures *fast fading* (multipath) and *long-term
shadowing* [7].  We model each as a stationary zero-mean AR(1) process in
dB, which is the standard discrete-time approximation of a Gauss-Markov
process:

    x(t + dt) = rho * x(t) + sqrt(1 - rho^2) * sigma * N(0, 1),
    rho = exp(-dt / tau)

``tau`` is the coherence (decorrelation) time.  The process is advanced
*lazily*: state is only updated when the channel is sampled, using the
exact transition for the elapsed ``dt``, so sparse and dense samplers see
the same statistics.  Queries must arrive with non-decreasing ``t`` (the
simulator guarantees this); equal-time queries return the cached value.
"""

from __future__ import annotations

import math
import random

from repro.errors import ConfigurationError, SimulationError

__all__ = ["GaussMarkovProcess", "CompositeFadingProcess", "BACKWARDS_TOLERANCE_S"]

#: Clock-noise tolerance for the "queries arrive with non-decreasing t"
#: contract, shared with the vectorized bank (repro.channel.bank).
BACKWARDS_TOLERANCE_S = 1e-9


class GaussMarkovProcess:
    """A zero-mean stationary AR(1)/Ornstein-Uhlenbeck process in dB."""

    __slots__ = ("_sigma", "_tau", "_rng", "_t", "_x")

    def __init__(self, sigma_db: float, tau_s: float, rng: random.Random) -> None:
        """Args:
        sigma_db: stationary standard deviation in dB.
        tau_s: coherence time in seconds (autocorrelation e-folding time).
        rng: private random stream.
        """
        if sigma_db < 0:
            raise ConfigurationError(f"sigma_db must be >= 0, got {sigma_db}")
        if tau_s <= 0:
            raise ConfigurationError(f"tau_s must be positive, got {tau_s}")
        self._sigma = float(sigma_db)
        self._tau = float(tau_s)
        self._rng = rng
        self._t = 0.0
        self._x = rng.gauss(0.0, self._sigma)  # start in steady state

    @property
    def sigma_db(self) -> float:
        """Stationary standard deviation in dB."""
        return self._sigma

    @property
    def tau_s(self) -> float:
        """Coherence time in seconds."""
        return self._tau

    @property
    def last_time(self) -> float:
        """Time of the most recent sample."""
        return self._t

    def sample(self, t: float) -> float:
        """Value of the process at time ``t`` (requires ``t >= last_time``)."""
        if t < self._t - BACKWARDS_TOLERANCE_S:
            raise SimulationError(
                f"GaussMarkovProcess sampled backwards in time: {t} < {self._t}"
            )
        dt = t - self._t
        if dt > 0 and self._sigma > 0:
            rho = math.exp(-dt / self._tau)
            innovation_std = self._sigma * math.sqrt(max(0.0, 1.0 - rho * rho))
            self._x = rho * self._x + self._rng.gauss(0.0, innovation_std)
        self._t = max(self._t, t)
        return self._x


class CompositeFadingProcess:
    """Sum of a slow shadowing process and a fast multipath process (dB).

    Defaults: shadowing sigma 6 dB with a 10 s coherence time (a
    Gudmundson-style decorrelation at walking-to-driving scales), fast
    fading sigma 3 dB with a 0.5 s coherence time — so link quality
    differences persist long enough that adapting routes to them (RICA's
    1 s CSI-checking period) pays off, exactly the regime the paper's
    protocol presumes ("this has to be decided by the change speed of the
    link CSI").
    """

    __slots__ = ("_shadow", "_fast")

    def __init__(
        self,
        rng: random.Random,
        shadow_sigma_db: float = 6.0,
        shadow_tau_s: float = 10.0,
        fast_sigma_db: float = 3.0,
        fast_tau_s: float = 0.5,
    ) -> None:
        self._shadow = GaussMarkovProcess(shadow_sigma_db, shadow_tau_s, rng)
        self._fast = GaussMarkovProcess(fast_sigma_db, fast_tau_s, rng)

    def sample(self, t: float) -> float:
        """Total fading deviation (dB) at time ``t``."""
        return self._shadow.sample(t) + self._fast.sample(t)

    @property
    def total_sigma_db(self) -> float:
        """Stationary standard deviation of the composite process."""
        return math.hypot(self._shadow.sigma_db, self._fast.sigma_db)
