"""Time-varying wireless channel model.

The paper (Section II-A) models the channel between every pair of mobile
terminals as time-varying with fast fading and long-term shadowing, and —
thanks to the ABICM adaptive coding/modulation scheme [5] — quantised into
four quality classes:

=====  ==========  ==============
Class  Throughput  CSI hop length
=====  ==========  ==============
A      250 kbps    1.00
B      150 kbps    1.67 (5/3)
C       75 kbps    3.33 (10/3)
D       50 kbps    5.00
=====  ==========  ==============

This package provides:

* :mod:`~repro.channel.propagation` — log-distance path loss and the
  250 m transmission range predicate;
* :mod:`~repro.channel.fading` — Gauss-Markov (AR(1)) dB processes for
  shadowing and fast fading, advanced lazily and exactly;
* :mod:`~repro.channel.csi` — the class enum, SNR thresholds and the
  CSI-based hop-distance metric;
* :mod:`~repro.channel.abicm` — class → throughput mapping (the observable
  effect of the adaptive coder/modulator);
* :mod:`~repro.channel.bank` — :class:`FadingBank`, contiguous numpy AR(1)
  state arrays with counter-based per-pair substreams (the vectorized
  fading backend);
* :mod:`~repro.channel.model` — :class:`ChannelModel`, the per-pair channel
  store the rest of the simulator queries (vectorized by default,
  ``backend="scalar"`` keeps the per-pair object store).
"""

from repro.channel.csi import ChannelClass, CsiThresholds, hop_distance
from repro.channel.abicm import AbicmScheme, CLASS_THROUGHPUT_BPS
from repro.channel.propagation import PathLossModel
from repro.channel.fading import GaussMarkovProcess, CompositeFadingProcess
from repro.channel.bank import FadingBank
from repro.channel.model import ChannelModel, ChannelConfig, CHANNEL_BACKENDS

__all__ = [
    "ChannelClass",
    "CsiThresholds",
    "hop_distance",
    "AbicmScheme",
    "CLASS_THROUGHPUT_BPS",
    "PathLossModel",
    "GaussMarkovProcess",
    "CompositeFadingProcess",
    "FadingBank",
    "ChannelModel",
    "ChannelConfig",
    "CHANNEL_BACKENDS",
]
