"""Large-scale propagation: log-distance path loss and transmission range.

The paper fixes the radio transmission range at 250 m and leaves the rest
of the propagation model to Parsons [7].  We use the standard log-distance
model in dB:

    mean_snr(d) = snr_ref - 10 * alpha * log10(d / d_ref)

with defaults calibrated so that a link at the 250 m range edge has a mean
SNR near the C/D boundary while short links sit comfortably in class A.
Fading (see :mod:`repro.channel.fading`) is added on top of this mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PathLossModel"]


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance mean-SNR model.

    Args:
        snr_ref_db: mean SNR at the reference distance.
        d_ref: reference distance in metres.
        alpha: path-loss exponent (3.5 is typical of shadowed urban/terrain
            channels, Parsons [7]).
        tx_range: hard decode range in metres (paper: 250 m).  Beyond this
            no reception is possible regardless of fading.
    """

    snr_ref_db: float = 36.0
    d_ref: float = 25.0
    alpha: float = 3.0
    tx_range: float = 250.0

    def __post_init__(self) -> None:
        if self.d_ref <= 0:
            raise ConfigurationError(f"d_ref must be positive, got {self.d_ref}")
        if self.alpha <= 0:
            raise ConfigurationError(f"alpha must be positive, got {self.alpha}")
        if self.tx_range <= 0:
            raise ConfigurationError(f"tx_range must be positive, got {self.tx_range}")
        # Precomputed pieces of mean_snr_db_array:
        #   snr(d) = snr_ref - coef*log10(d/d_ref) = offset - coef*log10(d)
        # (frozen dataclass, hence object.__setattr__).
        coef = 10.0 * self.alpha
        object.__setattr__(self, "_coef", coef)
        object.__setattr__(self, "_offset", self.snr_ref_db + coef * math.log10(self.d_ref))

    def mean_snr_db(self, distance: float) -> float:
        """Mean (large-scale) SNR in dB at ``distance`` metres."""
        d = max(distance, self.d_ref)  # free-space plateau below d_ref
        return self.snr_ref_db - 10.0 * self.alpha * math.log10(d / self.d_ref)

    def mean_snr_db_array(self, distances: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`mean_snr_db` over a distance array (metres).

        May modify ``distances`` in place (callers pass a fresh array).
        """
        d = np.maximum(distances, self.d_ref, out=distances)
        snr = np.log10(d, out=d)
        snr *= -self._coef
        snr += self._offset
        return snr

    def in_range(self, distance: float) -> bool:
        """True if two terminals ``distance`` metres apart can communicate."""
        return distance <= self.tx_range
