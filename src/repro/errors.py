"""Exception hierarchy for the repro package.

Every exception raised intentionally by this package derives from
:class:`ReproError`, so callers can catch package failures with a single
``except`` clause while letting genuine bugs (``TypeError`` etc.) surface.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Raised when the discrete-event kernel is misused.

    Examples: scheduling an event in the past, running a simulator that
    already finished, or cancelling an event twice.
    """


class ConfigurationError(ReproError):
    """Raised when a scenario or component configuration is invalid."""


class TopologyError(ReproError):
    """Raised for invalid topology operations (unknown node ids, etc.)."""


class RoutingError(ReproError):
    """Raised when a routing protocol is driven into an invalid state."""


class PacketError(ReproError):
    """Raised for malformed packet construction or field access."""


class ExecutionError(ReproError):
    """Raised when a campaign work item ultimately fails to execute.

    Carries the terminal :class:`~repro.experiments.backend.CellFailure`
    (timeout, worker crash, or repeated exception) after every retry was
    exhausted — in strict mode; fault-tolerant campaigns collect the
    failure instead of raising.
    """

    def __init__(self, message: str, failure: object = None) -> None:
        super().__init__(message)
        self.failure = failure
