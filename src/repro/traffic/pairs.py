"""Flow definitions and random pair selection."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError

__all__ = ["Flow", "choose_flows"]


@dataclass(frozen=True)
class Flow:
    """One unidirectional traffic flow."""

    flow_id: int
    src: int
    dst: int
    rate_pps: float
    packet_bytes: int = 512

    @property
    def rate_bps(self) -> float:
        """Offered load in bits per second."""
        return self.rate_pps * self.packet_bytes * 8

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ConfigurationError(f"flow {self.flow_id}: src == dst == {self.src}")
        if self.rate_pps <= 0:
            raise ConfigurationError(f"flow {self.flow_id}: rate must be positive")


def choose_flows(
    n_flows: int,
    n_nodes: int,
    rate_pps: float,
    rng: random.Random,
    packet_bytes: int = 512,
) -> List[Flow]:
    """Pick ``n_flows`` distinct source-destination pairs uniformly.

    Sources are distinct from each other (one flow per source terminal,
    like the paper's "10 terminal pairs"), and every destination differs
    from its source.
    """
    if n_flows <= 0:
        raise ConfigurationError(f"n_flows must be positive, got {n_flows}")
    if n_nodes < 2:
        raise ConfigurationError(f"need at least 2 nodes, got {n_nodes}")
    if n_flows > n_nodes:
        raise ConfigurationError(f"cannot pick {n_flows} distinct sources from {n_nodes} nodes")
    sources = rng.sample(range(n_nodes), n_flows)
    flows = []
    for i, src in enumerate(sources):
        dst = rng.randrange(n_nodes)
        while dst == src:
            dst = rng.randrange(n_nodes)
        flows.append(Flow(flow_id=i, src=src, dst=dst, rate_pps=rate_pps, packet_bytes=packet_bytes))
    return flows
