"""Traffic generation (paper Section III-A).

Ten source-destination pairs; each source generates 512-byte data packets
following a Poisson arrival process (exponential inter-arrival times) at
10, 20 or 60 packets per second depending on the experiment.
"""

from repro.traffic.poisson import PoissonSource
from repro.traffic.pairs import Flow, choose_flows

__all__ = ["PoissonSource", "Flow", "choose_flows"]
