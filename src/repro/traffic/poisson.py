"""Poisson packet sources."""

from __future__ import annotations

import random
from typing import Optional

from repro.metrics.collector import MetricsCollector
from repro.net.node import Node
from repro.net.packet import DataPacket
from repro.sim.engine import Simulator
from repro.traffic.pairs import Flow

__all__ = ["PoissonSource"]


class PoissonSource:
    """Generates one flow's packets with exponential inter-arrival times.

    The source stops scheduling new arrivals at ``until`` (generation stops
    at the end of the measured window; packets already in flight may still
    be delivered).
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        flow: Flow,
        rng: random.Random,
        metrics: MetricsCollector,
        until: Optional[float] = None,
    ) -> None:
        self._sim = sim
        self._node = node
        self._flow = flow
        self._rng = rng
        self._metrics = metrics
        self._until = until
        self._seq = 0
        self.generated = 0

    @property
    def flow(self) -> Flow:
        """The flow this source drives."""
        return self._flow

    def start(self) -> None:
        """Schedule the first arrival."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = self._rng.expovariate(self._flow.rate_pps)
        t = self._sim.now + gap
        if self._until is not None and t > self._until:
            return
        self._sim.schedule(gap, self._emit)

    def _emit(self) -> None:
        self._seq += 1
        self.generated += 1
        packet = DataPacket(
            src=self._flow.src,
            dst=self._flow.dst,
            seq=self._seq,
            created_at=self._sim.now,
            size_bytes=self._flow.packet_bytes,
            flow_id=self._flow.flow_id,
        )
        self._metrics.record_generated(packet)
        if self._node.routing is not None:
            self._node.routing.handle_app_packet(packet)
        self._schedule_next()
