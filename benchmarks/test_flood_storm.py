"""Flood-storm stress benchmark: batched reception pipeline + RREQ aggregation.

The worst case the paper's "each common-channel transmission counts as one
routing transmission" accounting produces: many terminals starting route
discoveries at once in a dense arena, so every RREQ flood fans out into
hundreds of same-instant receptions.  This benchmark drives that storm at
n = 200 (paper density, 25 simultaneous flows) per protocol — with the
RREQ-aggregation window off (the paper's immediate-relay flooding) and on
(40 ms jitter window, the paper's own collection-window scale), plus one
leg on the batched MAC attempt scheduler — and records:

* the control-transmission reduction aggregation buys (CI gate:
  >= 1.5x fewer RREQ transmissions at n = 200 for AODV, the pure-flooding
  baseline);
* engine throughput in *logical* events/s (physical events plus
  batch-credited callbacks, so scalar and batched backends are measured
  in the same unit) and the event-kind mix;
* the batched-vs-scalar MAC speedup at the storm's stress point (CI
  gate: >= 3x for AODV; the trajectory target is 5x, which the 2 ms
  contention slot reaches on an idle machine);
* the medium's split collision counters (lost receptions vs collided
  transmissions — the mean blast radius of a collision);
* the mobility bank's snapshot-build speedup: topology snapshot builds
  per second over distinct instants at the storm configuration, batched
  (``MobilityBank.coords_at`` + vectorized binning) vs scalar (n Python
  ``position()`` calls) — the hot loop PR 6 exposed (CI gate: >= 2x) —
  plus a fully-batched end-to-end leg (batched MAC *and* mobility).

Results land in ``BENCH_flood.json`` at the repo root via the shared
``bench_json_recorder`` fixture.
"""

from __future__ import annotations

import math
import time

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.mac.csma import MacConfig

N_NODES = 200
#: Constant paper density: 50 terminals per 1000 m x 1000 m.
FIELD_M = 1000.0 * math.sqrt(N_NODES / 50.0)
N_FLOWS = 25
DURATION_S = 5.0
#: The aggregation window mirrors the paper's 40 ms collection windows.
AGG_WINDOW_S = 0.04
#: CI gate: aggregated flooding must cut RREQ transmissions this much.
MIN_RREQ_REDUCTION = 1.5
#: Contention-slot width for the batched MAC leg: coarse enough that
#: whole rounds (and the topology snapshots behind their completions)
#: coalesce, fine-grained next to the 2 ms minimum backoff window.
BATCH_SLOT_S = 0.002
#: CI gate: logical events/s of the batched MAC leg over the scalar
#: baseline for AODV (measured ~5x on an idle machine; gated at 3x to
#: absorb CI-runner noise).
MIN_MAC_SPEEDUP = 3.0
#: CI gate: topology snapshot builds/s, batched mobility over scalar, at
#: the storm configuration (measured ~10x+ on an idle machine; gated at
#: 2x to absorb CI-runner noise).
MIN_MOBILITY_SPEEDUP = 2.0
#: Snapshot-build microbenchmark: distinct build instants and their
#: spacing (one 5 ms epoch apart, the MAC's slot-completion cadence).
BUILD_INSTANTS = 400
BUILD_EPOCH_S = 0.005


def _storm_config(
    protocol: str,
    window_s: float,
    mac_backend: str = "scalar",
    slot_s: float = 0.0,
    mobility_backend: str = "scalar",
) -> ScenarioConfig:
    return ScenarioConfig(
        protocol=protocol,
        n_nodes=N_NODES,
        field_size_m=FIELD_M,
        n_flows=N_FLOWS,
        duration_s=DURATION_S,
        seed=1,
        rreq_aggregation_s=window_s,
        mac_backend=mac_backend,
        mac=MacConfig(slot_align_s=slot_s),
        mobility_backend=mobility_backend,
    )


def _snapshot_build_rate(mobility_backend: str) -> float:
    """Topology snapshot builds per second over distinct instants.

    This isolates exactly the loop the mobility bank vectorizes: each
    ``coords_view`` call at a fresh instant is one full snapshot build
    (n mobility evaluations + cell binning + the coords array).  Both
    backends pay trajectory extension along the way, so the comparison
    is apples to apples.
    """
    scenario = build_scenario(
        _storm_config("aodv", 0.0, mobility_backend=mobility_backend)
    )
    topo = scenario.network.topology
    built_before = topo.snapshots_built
    topo.coords_view(0.0)  # warm-up build outside the timed region
    start = time.perf_counter()
    for i in range(1, BUILD_INSTANTS):
        topo.coords_view(i * BUILD_EPOCH_S)
    wall = time.perf_counter() - start
    assert topo.snapshots_built - built_before == BUILD_INSTANTS
    return (BUILD_INSTANTS - 1) / wall


def _run_storm(
    protocol: str,
    window_s: float,
    mac_backend: str = "scalar",
    slot_s: float = 0.0,
    mobility_backend: str = "scalar",
) -> dict:
    scenario = build_scenario(
        _storm_config(protocol, window_s, mac_backend, slot_s, mobility_backend)
    )
    start = time.perf_counter()
    report = scenario.run()
    wall_s = time.perf_counter() - start
    sim = scenario.sim
    medium = scenario.network.medium
    logical = sim.logical_events_processed
    top_kinds = dict(
        sorted(sim.event_kind_counts.items(), key=lambda kv: -kv[1])[:8]
    )
    return {
        "rreq_tx": report.control_tx_count.get("rreq", 0),
        "control_tx_total": sum(report.control_tx_count.values()),
        "overhead_kbps": round(report.overhead_kbps, 2),
        "delivery_pct": round(report.delivery_pct, 2),
        "avg_delay_ms": round(report.avg_delay_ms, 1),
        "rreq_suppressed": report.events.get("rreq_suppressed", 0),
        "rreq_coalesced": report.events.get("rreq_coalesced", 0),
        "lost_receptions": medium.lost_receptions,
        "collided_transmissions": medium.collided_transmissions,
        "events_processed": sim.events_processed,
        "logical_events": logical,
        "wall_s": round(wall_s, 2),
        "events_per_s": round(logical / wall_s) if wall_s > 0 else 0,
        "top_event_kinds": top_kinds,
    }


def test_flood_storm_aggregation(bench_json_recorder):
    payload = {
        "n_nodes": N_NODES,
        "field_m": round(FIELD_M, 1),
        "n_flows": N_FLOWS,
        "duration_s": DURATION_S,
        "aggregation_window_s": AGG_WINDOW_S,
        "mac_batch_slot_s": BATCH_SLOT_S,
        "workload": "simultaneous route discoveries, paper density",
        "results": {},
    }
    reductions = {}
    speedups = {}
    for protocol in ("aodv", "rica"):
        off = _run_storm(protocol, 0.0)
        on = _run_storm(protocol, AGG_WINDOW_S)
        batched = _run_storm(protocol, 0.0, mac_backend="batched", slot_s=BATCH_SLOT_S)
        full = _run_storm(
            protocol,
            0.0,
            mac_backend="batched",
            slot_s=BATCH_SLOT_S,
            mobility_backend="batched",
        )
        reduction = off["rreq_tx"] / on["rreq_tx"] if on["rreq_tx"] else math.inf
        speedup = (
            batched["events_per_s"] / off["events_per_s"]
            if off["events_per_s"]
            else math.inf
        )
        reductions[protocol] = reduction
        speedups[protocol] = speedup
        payload["results"][protocol] = {
            "no_aggregation": off,
            "aggregated": on,
            "batched_mac": batched,
            "batched_full": full,
            "rreq_reduction": round(reduction, 2),
            "events_per_s_batched": batched["events_per_s"],
            "mac_speedup": round(speedup, 2),
        }
        print(
            f"\n{protocol}: rreq {off['rreq_tx']} -> {on['rreq_tx']} "
            f"({reduction:.2f}x fewer), delivery {off['delivery_pct']:.1f}% -> "
            f"{on['delivery_pct']:.1f}%, engine {off['events_per_s']}/s "
            f"(batched MAC {batched['events_per_s']}/s, {speedup:.2f}x; "
            f"+batched mobility {full['events_per_s']}/s)"
        )
    # The tentpole measurement: snapshot builds/s, scalar vs bank-backed.
    builds_scalar = _snapshot_build_rate("scalar")
    builds_batched = _snapshot_build_rate("batched")
    mobility_speedup = builds_batched / builds_scalar if builds_scalar else math.inf
    payload["mobility"] = {
        "build_instants": BUILD_INSTANTS,
        "build_epoch_s": BUILD_EPOCH_S,
        "builds_per_s_scalar": round(builds_scalar),
        "builds_per_s_batched": round(builds_batched),
        "mobility_speedup": round(mobility_speedup, 2),
    }
    print(
        f"\nsnapshot builds/s: scalar {builds_scalar:.0f} -> "
        f"batched {builds_batched:.0f} ({mobility_speedup:.2f}x)"
    )
    bench_json_recorder("flood", payload)
    # CI regression gate: aggregation must keep cutting the flood storm on
    # the pure-flooding baseline, without collapsing delivery.
    assert reductions["aodv"] >= MIN_RREQ_REDUCTION
    aodv = payload["results"]["aodv"]
    assert aodv["aggregated"]["delivery_pct"] >= 0.8 * aodv["no_aggregation"]["delivery_pct"]
    # CI perf gate: the batched MAC attempt scheduler must keep its
    # throughput win at the stress point.
    assert speedups["aodv"] >= MIN_MAC_SPEEDUP
    # CI perf gate: the mobility bank must keep snapshot builds >= 2x
    # faster than the scalar per-node evaluation at the same stress point.
    assert mobility_speedup >= MIN_MOBILITY_SPEEDUP
