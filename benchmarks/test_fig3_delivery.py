"""Figure 3 — successful packet delivery percentage vs mean mobile speed.

Paper shape: channel-adaptive protocols deliver the most; delivery falls
with mobility for every protocol; the link-state protocol collapses the
fastest (routing loops consume buffers).
"""


def _assert_fig3_shape(result):
    speeds = result.speeds_kmh
    hi = speeds[-1]
    # Channel-adaptive protocols top the channel-oblivious ones at speed.
    adaptive = max(result.value("rica", hi), result.value("bgca", hi))
    assert adaptive > result.value("aodv", hi), (
        f"expected RICA/BGCA delivery above AODV at {hi} km/h"
    )
    # Link state loses more delivery with mobility than RICA does.
    ls_drop = result.value("link_state", speeds[0]) - result.value("link_state", hi)
    rica_drop = result.value("rica", speeds[0]) - result.value("rica", hi)
    assert ls_drop > rica_drop - 5.0, (
        f"expected link-state delivery to degrade faster: "
        f"ls_drop={ls_drop:.1f} rica_drop={rica_drop:.1f}"
    )


def test_fig3a_delivery_10pps(figure_runner):
    result = figure_runner("fig3a")
    _assert_fig3_shape(result)


def test_fig3b_delivery_20pps(figure_runner):
    result = figure_runner("fig3b")
    _assert_fig3_shape(result)
