"""Ablations on RICA's design knobs.

The paper prescribes a ~1 s CSI-checking period ("this has to be decided
by the change speed of the link CSI") and our DESIGN.md note 2 documents
the downstream-pointer refinement.  These benchmarks quantify both:

* checking faster buys fresher routes at a proportional overhead cost;
* pointer refinement is what makes the RUPD path realise the CSI distance
  the source selected.
"""

import pytest

from repro.analysis.tables import format_table
from repro.core.rica import RicaConfig
from repro.experiments.scenario import ScenarioConfig, run_scenario

BASE = dict(
    protocol="rica",
    n_nodes=30,
    n_flows=6,
    duration_s=10.0,
    field_size_m=800.0,
    mean_speed_kmh=36.0,
    seed=5,
)


def test_check_interval_tradeoff(benchmark):
    """Overhead scales with checking frequency (the protocol's price dial)."""

    def sweep():
        results = {}
        for interval in (0.5, 1.0, 2.0):
            config = ScenarioConfig(
                protocol_config=RicaConfig(check_interval_s=interval), **BASE
            )
            results[interval] = run_scenario(config)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [interval, r.overhead_kbps, r.delivery_pct, r.avg_delay_ms]
        for interval, r in sorted(results.items())
    ]
    print()
    print(
        format_table(
            ["check_interval_s", "overhead_kbps", "delivery_%", "delay_ms"],
            rows,
            title="RICA CSI-checking interval ablation",
        )
    )
    # More frequent checking must cost more control traffic.
    assert results[0.5].overhead_kbps > results[2.0].overhead_kbps


def test_pointer_refinement(benchmark):
    """DESIGN.md note 2: refinement vs the paper's literal first-copy tree."""

    def compare():
        out = {}
        for refine in (True, False):
            config = ScenarioConfig(
                protocol_config=RicaConfig(refine_pointers=refine), **BASE
            )
            out[refine] = run_scenario(config)
        return out

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = [
        [str(refine), r.avg_link_throughput_kbps, r.delivery_pct, r.avg_delay_ms]
        for refine, r in results.items()
    ]
    print()
    print(
        format_table(
            ["refine_pointers", "link_kbps", "delivery_%", "delay_ms"],
            rows,
            title="RICA downstream-pointer refinement ablation",
        )
    )
    # Both variants must remain functional protocols.
    assert all(r.delivery_pct > 50.0 for r in results.values())
