"""Ablation on the ABICM quantisation granularity.

The paper's adaptive coder exposes four throughput classes.  How much of
RICA's advantage survives if the physical layer only offered two rates
(good/bad)?  This probes the design choice of the class table itself.
"""

from repro.analysis.tables import format_table
from repro.channel.abicm import AbicmScheme
from repro.channel.csi import ChannelClass
from repro.channel.model import ChannelConfig
from repro.experiments.scenario import ScenarioConfig, run_scenario

BASE = dict(
    n_nodes=30,
    n_flows=6,
    duration_s=10.0,
    field_size_m=800.0,
    mean_speed_kmh=36.0,
    seed=5,
)

#: Two-rate physical layer: the top two classes decode at 250 kbps, the
#: bottom two at 50 kbps (still monotone, same extremes).
COARSE_ABICM = AbicmScheme(
    throughput_bps={
        ChannelClass.A: 250_000.0,
        ChannelClass.B: 250_000.0,
        ChannelClass.C: 50_000.0,
        ChannelClass.D: 50_000.0,
    }
)


def test_quantisation_granularity(benchmark):
    def compare():
        results = {}
        for label, abicm in (("4-class", AbicmScheme()), ("2-class", COARSE_ABICM)):
            for protocol in ("rica", "aodv"):
                config = ScenarioConfig(
                    protocol=protocol,
                    channel=ChannelConfig(abicm=abicm),
                    **BASE,
                )
                results[label, protocol] = run_scenario(config)
        return results

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = [
        [label, protocol, r.avg_link_throughput_kbps, r.delivery_pct, r.avg_delay_ms]
        for (label, protocol), r in sorted(results.items())
    ]
    print()
    print(
        format_table(
            ["abicm", "protocol", "link_kbps", "delivery_%", "delay_ms"],
            rows,
            title="ABICM quantisation ablation (RICA vs AODV)",
        )
    )
    # The adaptive protocol keeps a link-quality edge under both tables.
    for label in ("4-class", "2-class"):
        assert (
            results[label, "rica"].avg_link_throughput_kbps
            >= results[label, "aodv"].avg_link_throughput_kbps * 0.95
        )
