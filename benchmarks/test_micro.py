"""Microbenchmarks of the simulator's hot paths.

These track the substrate's raw performance (event throughput, channel
sampling, Dijkstra) so regressions in the kernel show up independently of
the figure-level experiments.
"""

import random

from repro.channel.model import ChannelConfig, ChannelModel
from repro.geometry.vector import Vec2
from repro.routing.dijkstra import next_hops
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def test_event_throughput(benchmark):
    """Schedule-and-fire throughput of the event kernel."""

    def run_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run_events) == 20_000


def test_channel_sampling_throughput(benchmark):
    """Lazily-advanced fading process sampling rate."""
    positions = {i: Vec2(i * 37.0 % 900, i * 59.0 % 900) for i in range(50)}
    model = ChannelModel(ChannelConfig(), RandomStreams(3), lambda nid, t: positions[nid])

    clock = [0.0]  # fading processes require non-decreasing sample times,
    # so the clock persists across benchmark rounds

    def sample_many():
        total = 0
        for _ in range(200):
            clock[0] += 0.05
            for a in range(0, 50, 5):
                for b in range(1, 50, 7):
                    if a != b:
                        total += model.state(a, b, clock[0])
        return total

    benchmark(sample_many)


def test_dijkstra_50_nodes(benchmark):
    """Next-hop computation over a 50-node random geometric graph."""
    rng = random.Random(7)
    positions = {i: (rng.uniform(0, 1000), rng.uniform(0, 1000)) for i in range(50)}
    adj = {}
    for u in range(50):
        adj[u] = {}
        for v in range(50):
            if u == v:
                continue
            dx = positions[u][0] - positions[v][0]
            dy = positions[u][1] - positions[v][1]
            d = (dx * dx + dy * dy) ** 0.5
            if d <= 250.0:
                adj[u][v] = 1.0 + d / 100.0

    result = benchmark(next_hops, adj, 0)
    assert len(result) >= 1


def _saturated_cell(mac_backend: str, slot_s: float):
    """One 50-node collision domain under sustained beacon pressure.

    Every node sits inside every other node's carrier-sense range, so all
    contention serialises through one channel — the MAC attempt
    scheduler's worst case.  Returns ``(simulator, metrics)`` after 2
    simulated seconds.
    """
    from repro.mac.csma import MacConfig
    from repro.routing.packets import Beacon
    from repro.sim.engine import Simulator
    from tests.helpers import build_static_network

    sim = Simulator()
    streams = RandomStreams(seed=77)
    # 50 nodes on a 7x8 grid, 40 m pitch: max diagonal ~370 m, well inside
    # the 500 m carrier-sense range — a single cell.
    positions = [(40.0 * (i % 8), 40.0 * (i // 8)) for i in range(50)]
    network, metrics = build_static_network(
        sim,
        streams,
        positions,
        mac_config=MacConfig(queue_capacity=100, slot_align_s=slot_s),
        mac_backend=mac_backend,
    )
    for burst in range(8):
        for nid in range(50):
            network.node(nid).mac.send(Beacon(0.0, origin=nid))
    sim.run(until=2.0)
    return sim, metrics


def test_mac_contention_scalar(benchmark):
    """Saturated-cell wall time on the per-event scalar reference."""
    sim, metrics = benchmark(_saturated_cell, "scalar", 0.0)
    assert metrics.control_tx_count["beacon"] > 0


def test_mac_contention_batched(benchmark):
    """Saturated-cell wall time on the batched scheduler (2 ms slots).

    Static single-cell saturation is roughly break-even: carrier sense is
    already O(1 sender) here and there are no mobility snapshots to
    share, so round bookkeeping offsets the coalesced events.  The
    batched win that BENCH_flood gates comes from storm-scale effects —
    completions sharing topology snapshots and hundreds of contenders
    per distinct instant.  This pair of benchmarks tracks the crossover.
    """
    sim, metrics = benchmark(_saturated_cell, "batched", 0.002)
    assert metrics.control_tx_count["beacon"] > 0


def test_scenario_build(benchmark):
    """Cost of assembling a full 50-node scenario object graph."""
    from repro.experiments.scenario import ScenarioConfig, build_scenario

    config = ScenarioConfig(duration_s=10.0)
    scenario = benchmark(build_scenario, config)
    assert scenario.network.node_count == 50
