"""Figure 4 — routing overhead (kbps) vs mean mobile speed.

Paper shape: link state's per-change flooding saturates the common
channel and dwarfs every on-demand protocol; the channel-adaptive
protocols pay more than AODV (BGCA ~1.5x, RICA up to ~4x in the paper);
overhead grows with mobility.
"""


def _assert_fig4_shape(result):
    for speed in result.speeds_kmh:
        ls = result.value("link_state", speed)
        # Link state dwarfs the channel-oblivious protocols outright...
        for proto in ("abr", "aodv"):
            assert ls > 2.0 * result.value(proto, speed), (
                f"expected link-state overhead to dwarf {proto} at {speed} km/h"
            )
        # ...and tops the channel-adaptive ones too (BGCA's guard-driven
        # local queries at 20 pkt/s can bring it within ~2x of link state;
        # see EXPERIMENTS.md, Figure 4 deviations).
        for proto in ("rica", "bgca"):
            assert ls > result.value(proto, speed), (
                f"expected link-state overhead above {proto} at {speed} km/h"
            )
    # RICA pays for its periodic CSI checking relative to AODV.
    for speed in result.speeds_kmh:
        assert result.value("rica", speed) > result.value("aodv", speed), (
            f"expected RICA overhead above AODV at {speed} km/h"
        )


def test_fig4a_overhead_10pps(figure_runner):
    result = figure_runner("fig4a")
    _assert_fig4_shape(result)


def test_fig4b_overhead_20pps(figure_runner):
    result = figure_runner("fig4b")
    _assert_fig4_shape(result)
