"""Micro-benchmark: vectorized channel bank vs. the scalar fading store.

Replays the channel layer's hottest pattern — every terminal classifies
its whole neighbour set (the fading → SNR → classify pipeline behind
link monitors, accurate-view installs and CSI scans) — at n ∈ {50, 200,
500} terminals in the paper's fixed 1000 m x 1000 m arena, so density
(and neighbour-set size) grows with n exactly like the congested regimes
the paper's figures probe.  Both backends run the same public API
(``ChannelModel.csi_hop_map`` for the network-wide scan,
``csi_hop_distances`` for per-set queries) over identical trajectories
and neighbour sets; only the fading backend differs.

A 1000-node RICA smoke scenario rides along to prove the ROADMAP's
">500 nodes" scale is now CI-tolerable end-to-end.

Results land in ``BENCH_channel.json`` (repo root) via the shared
``bench_json_recorder`` fixture.  The in-test assertion (>= 2x at
n = 200) is the CI regression gate; the recorded value tracks the
actual speedup (~5x+ expected).
"""

from __future__ import annotations

import math
import time

from repro.channel.model import ChannelConfig, ChannelModel
from repro.geometry.field import Field
from repro.mobility.waypoint import RandomWaypoint
from repro.sim.rng import RandomStreams
from repro.topology import TopologyIndex

NODE_COUNTS = [50, 200, 500]
#: The paper's arena; density (and neighbour count) grows with n.
SIDE_M = 1000.0
#: One scan per instant; the warm-up pass allocates every pair's fading
#: state (both backends pay that once per simulation, not per query).
WARMUP_TIMES = [0.5, 1.5, 2.5, 3.5, 4.5]
QUERY_TIMES = [5.5, 6.5, 7.5, 8.5, 9.5]
SMOKE_NODES = 1000
SMOKE_DURATION_S = 3.0


def _make_topology(n):
    field = Field(SIDE_M, SIDE_M)
    streams = RandomStreams(4321 + n)
    topo = TopologyIndex(field, radius=250.0)
    for i in range(n):
        topo.add(
            i,
            RandomWaypoint(
                field, streams.stream(f"mobility/{i}"), max_speed=20.0, pause_time=3.0
            ).position,
        )
    return topo


def _make_model(topo, backend):
    return ChannelModel(
        ChannelConfig(), RandomStreams(99), topo.position, backend=backend, topology=topo
    )


def _time_scan(n, backend, bulk, repeats=3):
    """Wall time of a full-network neighbour-set CSI scan.

    ``bulk=True`` uses the one-call map API; ``bulk=False`` issues one
    ``csi_hop_distances`` per terminal.  Fresh models per repeat so every
    repeat advances fading state identically.
    """
    best = math.inf
    pairs = 0
    for _ in range(repeats):
        topo = _make_topology(n)
        model = _make_model(topo, backend)
        for t in WARMUP_TIMES:  # allocate pair state off the clock
            model.csi_hop_map(topo.neighbor_map(t), t)
        adjacency = {t: topo.neighbor_map(t) for t in QUERY_TIMES}
        pairs = sum(len(nbrs) for adj in adjacency.values() for nbrs in adj.values())
        start = time.perf_counter()
        for t in QUERY_TIMES:
            adj = adjacency[t]
            if bulk:
                model.csi_hop_map(adj, t)
            else:
                for a, nbrs in adj.items():
                    model.csi_hop_distances(a, nbrs, t)
        best = min(best, time.perf_counter() - start)
    return best, pairs


def test_channel_bank_speedup(bench_json_recorder):
    payload = {
        "side_m": SIDE_M,
        "query_times": QUERY_TIMES,
        "workload": "full-network neighbour-set CSI scan (fading->SNR->classify)",
        "results": {},
    }
    for n in NODE_COUNTS:
        vec_s, pairs = _time_scan(n, "vectorized", bulk=True)
        vec_set_s, _ = _time_scan(n, "vectorized", bulk=False)
        scalar_s, scalar_pairs = _time_scan(n, "scalar", bulk=True)
        assert pairs == scalar_pairs  # identical trajectories => same sets
        speedup = scalar_s / vec_s if vec_s > 0 else math.inf
        per_set = scalar_s / vec_set_s if vec_set_s > 0 else math.inf
        payload["results"][str(n)] = {
            "pairs_sampled": pairs,
            "scalar_s": round(scalar_s, 6),
            "vectorized_s": round(vec_s, 6),
            "vectorized_per_set_s": round(vec_set_s, 6),
            "speedup": round(speedup, 2),
            "per_set_speedup": round(per_set, 2),
        }
        print(
            f"\nn={n}: scalar {scalar_s*1e3:.2f} ms, vectorized {vec_s*1e3:.2f} ms "
            f"({vec_set_s*1e3:.2f} ms per-set), speedup {speedup:.1f}x"
        )
    bench_json_recorder("channel", payload)
    # CI regression gate (the acceptance target is ~5x; see BENCH_channel.json).
    assert payload["results"]["200"]["speedup"] >= 2.0


def test_thousand_node_smoke(bench_json_recorder):
    """A 1000-terminal scenario must complete end-to-end at CI scale."""
    from repro.experiments.scenario import ScenarioConfig, run_scenario

    config = ScenarioConfig(
        protocol="rica",
        n_nodes=SMOKE_NODES,
        # Constant paper density: 50 terminals per 1000 m x 1000 m.
        field_size_m=SIDE_M * math.sqrt(SMOKE_NODES / 50.0),
        n_flows=20,
        duration_s=SMOKE_DURATION_S,
        seed=1,
        position_epoch_s=0.2,
    )
    start = time.perf_counter()
    report = run_scenario(config)
    wall_s = time.perf_counter() - start
    print(
        f"\n1000-node smoke: {wall_s:.1f} s wall for {SMOKE_DURATION_S:.0f} s simulated, "
        f"delivery {report.delivery_pct:.1f}%, {report.generated} packets"
    )
    bench_json_recorder(
        "channel",
        {
            "smoke_1000_nodes": {
                "n_nodes": SMOKE_NODES,
                "sim_s": SMOKE_DURATION_S,
                "wall_s": round(wall_s, 2),
                "delivery_pct": round(report.delivery_pct, 2),
                "generated": report.generated,
            }
        },
    )
    assert report.generated > 0
    assert wall_s < 300.0  # loose CI guard; typical dev box ~30 s