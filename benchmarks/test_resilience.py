"""Resilience benchmark: delivery and route repair under node churn.

The fault subsystem's trajectory metric: at the flood-storm stress point
(n = 200, paper density, 25 simultaneous flows) with deterministic node
churn switched on, how much delivery does each protocol keep, how many
route breaks does the churn cause, and how fast are they repaired?
AODV (timeout-driven rediscovery) and RICA (receiver-initiated repair
with salvaging) are the two poles the paper contrasts.

Results land in ``BENCH_resilience.json`` at the repo root via the shared
``bench_json_recorder`` fixture, uploaded with the other BENCH artefacts.

CI gate: delivery under churn must stay above a floor fraction of the
fault-free baseline — the protocols must *degrade*, not collapse, when
nodes start dying (the fault model takes radios off the air; it must not
take the routing layer down with them).
"""

from __future__ import annotations

import math
import time

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.faults import FaultConfig, NodeChurnConfig

N_NODES = 200
#: Constant paper density: 50 terminals per 1000 m x 1000 m.
FIELD_M = 1000.0 * math.sqrt(N_NODES / 50.0)
N_FLOWS = 25
DURATION_S = 5.0
#: Per-node crash hazard (crashes/s) and mean downtime for the churn leg:
#: ~20 expected crashes across the 200-node run, each ~2 s long.
CHURN_RATE = 0.02
MEAN_DOWNTIME_S = 2.0
#: CI gate: delivery under churn as a fraction of the fault-free
#: baseline, per protocol.  Churn this size costs some delivery (dead
#: relays drop their queues) but must never collapse it.
MIN_DELIVERY_RETENTION = 0.5


def _run(protocol: str, churn: bool) -> dict:
    faults = (
        FaultConfig(
            churn=NodeChurnConfig(
                crash_rate_per_s=CHURN_RATE, mean_downtime_s=MEAN_DOWNTIME_S
            )
        )
        if churn
        else None
    )
    scenario = build_scenario(
        ScenarioConfig(
            protocol=protocol,
            n_nodes=N_NODES,
            field_size_m=FIELD_M,
            n_flows=N_FLOWS,
            duration_s=DURATION_S,
            seed=1,
            faults=faults,
        )
    )
    start = time.perf_counter()
    report = scenario.run()
    wall_s = time.perf_counter() - start
    return {
        "delivery_pct": round(report.delivery_pct, 2),
        "avg_delay_ms": round(report.avg_delay_ms, 1),
        "route_breaks": report.route_breaks,
        "route_repairs": report.route_repairs,
        "avg_repair_latency_ms": round(report.avg_repair_latency_ms, 1),
        "dead_next_hop_losses": report.dead_next_hop_losses,
        "node_crashes": report.events.get("fault_node_crash", 0),
        "node_recoveries": report.events.get("fault_node_recover", 0),
        "wall_s": round(wall_s, 2),
    }


def test_delivery_under_churn(bench_json_recorder):
    payload = {
        "n_nodes": N_NODES,
        "field_m": round(FIELD_M, 1),
        "n_flows": N_FLOWS,
        "duration_s": DURATION_S,
        "churn_rate_per_s": CHURN_RATE,
        "mean_downtime_s": MEAN_DOWNTIME_S,
        "workload": "flood-storm stress point with deterministic node churn",
        "results": {},
    }
    retention = {}
    for protocol in ("aodv", "rica"):
        baseline = _run(protocol, churn=False)
        churned = _run(protocol, churn=True)
        kept = (
            churned["delivery_pct"] / baseline["delivery_pct"]
            if baseline["delivery_pct"]
            else math.inf
        )
        retention[protocol] = kept
        payload["results"][protocol] = {
            "baseline": baseline,
            "under_churn": churned,
            "delivery_retention": round(kept, 3),
        }
        print(
            f"\n{protocol}: delivery {baseline['delivery_pct']:.1f}% -> "
            f"{churned['delivery_pct']:.1f}% under churn "
            f"({churned['node_crashes']} crashes, "
            f"{churned['route_breaks']} breaks, "
            f"{churned['route_repairs']} repairs, "
            f"repair {churned['avg_repair_latency_ms']:.0f} ms)"
        )
        # The churn actually bit: faults fired and breaks were observed.
        assert churned["node_crashes"] > 0
    bench_json_recorder("resilience", payload)
    # CI regression gate: churn-sized failures must degrade delivery
    # gracefully, not collapse it.
    assert retention["aodv"] >= MIN_DELIVERY_RETENTION
    assert retention["rica"] >= MIN_DELIVERY_RETENTION
