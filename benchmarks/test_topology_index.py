"""Micro-benchmark: grid-backed neighbour queries vs. the seed brute force.

Replays the simulator's hottest query pattern — every node asks for its
neighbour set at a sequence of instants, exactly what the MAC does per
transmission — at n ∈ {50, 200, 500} with constant node density (the
field grows with n, as any credible MANET scale-up does).  The seed
implementation is reproduced faithfully, one-slot position memo included.

Results land in ``BENCH_topology.json`` (repo root) via the shared
``bench_json_recorder`` fixture so the perf trajectory is tracked from
this PR onward.
"""

from __future__ import annotations

import math
import time

from repro.geometry.field import Field
from repro.geometry.vector import Vec2
from repro.mobility.waypoint import RandomWaypoint
from repro.sim.rng import RandomStreams
from repro.topology import TopologyIndex

NODE_COUNTS = [50, 200, 500]
TX_RANGE_M = 250.0
QUERY_TIMES = [0.0, 1.5, 3.0, 4.5, 6.0]
#: Paper density: 50 terminals per 1000 m x 1000 m.
BASE_SIDE_M = 1000.0


class _SeedNodeView:
    """The seed's per-node position path: mobility + one-slot memo."""

    __slots__ = ("mobility", "_pos_t", "_pos_v")

    def __init__(self, mobility):
        self.mobility = mobility
        self._pos_t = -1.0
        self._pos_v = None

    def position(self, t):
        if t == self._pos_t:
            return self._pos_v
        value = self.mobility.position(t)
        self._pos_t = t
        self._pos_v = value
        return value


def _make_field_nodes(n):
    side = BASE_SIDE_M * math.sqrt(n / 50.0)
    field = Field(side, side)
    streams = RandomStreams(1234 + n)
    nodes = {
        i: _SeedNodeView(
            RandomWaypoint(
                field, streams.stream(f"mobility/{i}"), max_speed=20.0, pause_time=3.0
            )
        )
        for i in range(n)
    }
    return field, nodes


def _seed_neighbors(nodes, node_id, t):
    """Verbatim port of the seed ``Network.neighbors`` brute-force scan."""
    origin = nodes[node_id].position(t)
    result = []
    for nid, node in nodes.items():
        if nid == node_id:
            continue
        if origin.distance_to(node.position(t)) <= TX_RANGE_M:
            result.append(nid)
    return result


def _run_workload(query_fn, n):
    total = 0
    for t in QUERY_TIMES:
        for nid in range(n):
            total += len(query_fn(nid, t))
    return total


def _time_workload(query_fn, n, repeats=3):
    best = math.inf
    total = 0
    for _ in range(repeats):
        start = time.perf_counter()
        total = _run_workload(query_fn, n)
        best = min(best, time.perf_counter() - start)
    return best, total


def test_topology_index_speedup(bench_json_recorder):
    payload = {
        "tx_range_m": TX_RANGE_M,
        "query_times": QUERY_TIMES,
        "densities_const": True,
        "results": {},
    }
    for n in NODE_COUNTS:
        field, nodes = _make_field_nodes(n)
        brute_s, brute_total = _time_workload(
            lambda nid, t: _seed_neighbors(nodes, nid, t), n
        )

        field, nodes = _make_field_nodes(n)  # fresh memos for the index run
        index = TopologyIndex(field, radius=TX_RANGE_M)
        for nid, node in nodes.items():
            index.add(nid, node.position)
        grid_s, grid_total = _time_workload(index.neighbors, n)

        # Same trajectories => identical neighbour degree sums (the grid
        # returns sorted lists, the seed scan insertion order; sizes match).
        assert grid_total == brute_total
        speedup = brute_s / grid_s if grid_s > 0 else math.inf
        payload["results"][str(n)] = {
            "queries": len(QUERY_TIMES) * n,
            "brute_force_s": round(brute_s, 6),
            "grid_s": round(grid_s, 6),
            "speedup": round(speedup, 2),
        }
        print(
            f"\nn={n}: brute {brute_s*1e3:.2f} ms, grid {grid_s*1e3:.2f} ms, "
            f"speedup {speedup:.1f}x"
        )
    bench_json_recorder("topology", payload)
    # Acceptance bar: >= 5x at 200 nodes (and it should only grow with n).
    assert payload["results"]["200"]["speedup"] >= 5.0


def test_topology_index_query_rate(benchmark):
    """Raw pytest-benchmark number for the grid path at n=200."""
    field, nodes = _make_field_nodes(200)
    index = TopologyIndex(field, radius=TX_RANGE_M)
    for nid, node in nodes.items():
        index.add(nid, node.position)

    clock = [0.0]

    def query_all():
        clock[0] += 0.5
        t = clock[0]
        return sum(len(index.neighbors(nid, t)) for nid in range(200))

    benchmark(query_all)
