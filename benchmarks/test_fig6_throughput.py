"""Figure 6 — aggregate network throughput over time (4 s bins).

Paper shape: BGCA and RICA sit on top of the aggregate-throughput traces
at both 20 and 60 packets/s.
"""

from repro.analysis.stats import mean


def _assert_fig6_shape(result):
    averages = {p: mean(result.series(p)) for p in result.spec.protocols}
    adaptive = max(averages["rica"], averages["bgca"])
    for proto in ("abr", "aodv"):
        assert adaptive > 0.9 * averages[proto], (
            f"expected RICA/BGCA aggregate throughput at the top: {averages}"
        )


def test_fig6a_throughput_20pps(figure_runner):
    result = figure_runner("fig6a")
    _assert_fig6_shape(result)


def test_fig6b_throughput_60pps(figure_runner):
    result = figure_runner("fig6b")
    _assert_fig6_shape(result)
