"""Figure 5 — route quality at 72 km/h: average link throughput (a) and
average hop count (b).

Paper shape: (a) link state picks the highest-throughput links (Dijkstra
over CSI costs), RICA and BGCA sit well above the channel-oblivious ABR
and AODV; (b) link state traverses the most hops (routing loops), RICA
the fewest.
"""


def test_fig5a_link_throughput(figure_runner):
    result = figure_runner("fig5a")
    value = {p: result.value(p) for p in result.spec.protocols}
    # Channel-adaptive routing picks faster links than channel-oblivious.
    assert min(value["rica"], value["bgca"]) > min(value["abr"], value["aodv"]), value
    # Link state (Dijkstra over CSI costs) is at or near the top.
    assert value["link_state"] >= 0.9 * max(value.values()), value


def test_fig5b_hop_count(figure_runner):
    result = figure_runner("fig5b")
    value = {p: result.value(p) for p in result.spec.protocols}
    # Link-state loops traverse the most hops.
    on_demand_max = max(value["rica"], value["bgca"], value["abr"], value["aodv"])
    assert value["link_state"] >= 0.85 * on_demand_max, value
    # All hop counts are physically sensible.
    assert all(1.0 <= v <= 20.0 for v in value.values()), value
