"""Ablation on the mobility model.

The paper uses random waypoint (with its well-known centre-density bias);
the random-direction extension checks the headline comparison is not an
artifact of that bias.
"""

from repro.analysis.tables import format_table
from repro.experiments.scenario import ScenarioConfig, run_scenario

BASE = dict(
    n_nodes=30,
    n_flows=6,
    duration_s=10.0,
    field_size_m=800.0,
    mean_speed_kmh=54.0,
    seed=5,
)


def test_waypoint_vs_direction(benchmark):
    def compare():
        results = {}
        for model in ("waypoint", "direction"):
            for protocol in ("rica", "aodv"):
                config = ScenarioConfig(protocol=protocol, mobility_model=model, **BASE)
                results[model, protocol] = run_scenario(config)
        return results

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = [
        [model, protocol, r.delivery_pct, r.avg_delay_ms, r.avg_link_throughput_kbps]
        for (model, protocol), r in sorted(results.items())
    ]
    print()
    print(
        format_table(
            ["mobility", "protocol", "delivery_%", "delay_ms", "link_kbps"],
            rows,
            title="Mobility-model ablation (RICA vs AODV)",
        )
    )
    # RICA's link-quality advantage holds under both mobility models.
    for model in ("waypoint", "direction"):
        assert (
            results[model, "rica"].avg_link_throughput_kbps
            > results[model, "aodv"].avg_link_throughput_kbps * 0.95
        )
