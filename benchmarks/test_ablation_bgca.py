"""Ablation on BGCA's bandwidth-guard headroom factor.

The guard level (required bandwidth x factor) decides when a fading link
is declared insufficient and a local query is launched: 1.0 tolerates
borderline links (fewer repairs, more congestion), higher factors repair
earlier at more control cost.
"""

from repro.analysis.tables import format_table
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.routing.bgca import BgcaConfig

BASE = dict(
    protocol="bgca",
    n_nodes=30,
    n_flows=6,
    duration_s=10.0,
    field_size_m=800.0,
    mean_speed_kmh=36.0,
    rate_pps=20.0,  # 82 kbps offered: the guard has classes to exclude
    seed=5,
)


def test_guard_factor_sweep(benchmark):
    def sweep():
        results = {}
        for factor in (1.0, 1.5, 2.0):
            config = ScenarioConfig(
                protocol_config=BgcaConfig(bw_guard_factor=factor), **BASE
            )
            results[factor] = run_scenario(config)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for factor, r in sorted(results.items()):
        lqs = sum(v for k, v in r.events.items() if k.startswith("bgca_lq_"))
        rows.append([factor, lqs, r.overhead_kbps, r.delivery_pct, r.avg_delay_ms])
    print()
    print(
        format_table(
            ["guard_factor", "local_queries", "overhead_kbps", "delivery_%", "delay_ms"],
            rows,
            title="BGCA bandwidth-guard factor ablation",
        )
    )
    assert all(r.delivery_pct > 40.0 for r in results.values())
