"""Shared benchmark machinery.

Every paper figure panel has a benchmark that (a) regenerates the panel's
rows/series at a laptop-friendly scale and prints them next to the paper's
expectation, and (b) asserts the robust *shape* claims of the paper (who
wins, what explodes).  Absolute numbers are not asserted — the substrate
is a simulator, not the authors' testbed (see EXPERIMENTS.md).

Scale knobs (environment variables):

* ``REPRO_BENCH_DURATION`` — simulated seconds per run (default 15).
* ``REPRO_BENCH_TRIALS`` — trials per data point (default 1).
* ``REPRO_BENCH_PAPER_SCALE=1`` — the full 500 s x 25-trial grid.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.figures import run_figure

BENCH_DURATION = float(os.environ.get("REPRO_BENCH_DURATION", "15"))
BENCH_TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "1"))
PAPER_SCALE = os.environ.get("REPRO_BENCH_PAPER_SCALE", "") == "1"
BENCH_SPEEDS = [0.0, 36.0, 72.0]

#: Where micro-benchmark JSON artefacts land (repo root, next to this dir).
BENCH_ARTIFACT_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="session")
def bench_json_recorder():
    """Collect named benchmark records; write ``BENCH_<name>.json`` files.

    A test grabs the recorder and calls ``recorder(name, payload)``; at
    session end every distinct ``name`` is serialised to
    ``BENCH_<name>.json`` in the repo root so the perf trajectory of a
    subsystem is tracked across PRs.
    """
    records = {}

    def record(name: str, payload: dict) -> None:
        records.setdefault(name, {}).update(payload)

    yield record
    for name, payload in records.items():
        path = os.path.join(BENCH_ARTIFACT_DIR, f"BENCH_{name}.json")
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)


def run_figure_once(figure_id: str, benchmark, speeds=None):
    """Execute one figure experiment exactly once under pytest-benchmark."""
    result = benchmark.pedantic(
        run_figure,
        kwargs=dict(
            figure_id=figure_id,
            duration_s=None if PAPER_SCALE else BENCH_DURATION,
            trials=None if PAPER_SCALE else BENCH_TRIALS,
            seed=1,
            paper_scale=PAPER_SCALE,
            speeds_kmh=None if PAPER_SCALE else (speeds or BENCH_SPEEDS),
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(f"# paper expectation: {result.spec.paper_expectation}")
    print(result.format_table())
    return result


@pytest.fixture
def figure_runner(benchmark):
    """Fixture handing benchmarks the one-shot figure runner."""

    def runner(figure_id: str, speeds=None):
        return run_figure_once(figure_id, benchmark, speeds=speeds)

    return runner
