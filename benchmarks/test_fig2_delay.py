"""Figure 2 — average end-to-end delay vs mean mobile speed.

Paper shape: channel-adaptive protocols (RICA, BGCA) achieve the lowest
delays among the on-demand protocols; ABR's delay grows with speed
(localized-query queueing); link state is competitive when static but
degrades with mobility (routing loops).
"""


def _assert_fig2_shape(result):
    speeds = result.speeds_kmh
    hi = speeds[-1]
    # Channel-adaptive protocols beat the channel-oblivious on-demand ones
    # at high mobility.
    adaptive = min(result.value("rica", hi), result.value("bgca", hi))
    oblivious = max(result.value("aodv", hi), result.value("abr", hi))
    assert adaptive < oblivious, (
        f"expected RICA/BGCA delay below AODV/ABR at {hi} km/h: "
        f"{adaptive:.1f} vs {oblivious:.1f}"
    )
    # RICA's delay does not explode with mobility (the paper shows it flat
    # or falling); allow generous noise at benchmark scale.
    assert result.value("rica", hi) < 2.0 * result.value("rica", speeds[0]) + 50.0


def test_fig2a_delay_10pps(figure_runner):
    result = figure_runner("fig2a")
    _assert_fig2_shape(result)


def test_fig2b_delay_20pps(figure_runner):
    result = figure_runner("fig2b")
    _assert_fig2_shape(result)
