"""Unit tests for the per-neighbour data-link transmitter."""

import pytest

from repro.geometry.vector import Vec2
from repro.mobility.path import WaypointPath
from repro.net.datalink import DataLinkConfig
from repro.net.packet import DataPacket

from tests.helpers import build_static_network


def collect_deliveries(network, node_id):
    received = []
    network.node(node_id).receive_data = lambda pkt, frm: received.append((pkt, frm))
    return received


class TestDelivery:
    def test_in_range_delivery(self, sim, streams):
        network, _ = build_static_network(sim, streams, [(0, 0), (80, 0)])
        received = collect_deliveries(network, 1)
        pkt = DataPacket(0, 1, 1, 0.0)
        assert network.node(0).send_data(pkt, 1)
        sim.run(until=1.0)
        assert [(p.uid, frm) for p, frm in received] == [(pkt.uid, 0)]

    def test_airtime_depends_on_class(self, sim, streams):
        # 80 m -> class A (16.4 ms + ack); 210 m -> class C (54.6 ms + ack)
        network, _ = build_static_network(sim, streams, [(0, 0), (80, 0), (0, 210)])
        times = {}
        network.node(1).receive_data = lambda pkt, frm: times.__setitem__("A", sim.now)
        network.node(2).receive_data = lambda pkt, frm: times.__setitem__("C", sim.now)
        network.node(0).send_data(DataPacket(0, 1, 1, 0.0), 1)
        network.node(0).send_data(DataPacket(0, 2, 1, 0.0), 2)
        sim.run(until=1.0)
        expected_a = (4096 + 160) / 250_000
        expected_c = (4096 + 160) / 75_000
        assert times["A"] == pytest.approx(expected_a, rel=1e-6)
        assert times["C"] == pytest.approx(expected_c, rel=1e-6)

    def test_record_hop_accumulates_rate(self, sim, streams):
        network, _ = build_static_network(sim, streams, [(0, 0), (80, 0)])
        received = collect_deliveries(network, 1)
        network.node(0).send_data(DataPacket(0, 1, 1, 0.0), 1)
        sim.run(until=1.0)
        pkt = received[0][0]
        assert pkt.hops_traversed == 1
        assert pkt.link_rates_bps == [250_000.0]

    def test_ack_bits_counted(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (80, 0)])
        collect_deliveries(network, 1)
        network.node(0).send_data(DataPacket(0, 1, 1, 0.0), 1)
        sim.run(until=1.0)
        assert metrics.ack_bits == 160

    def test_link_serializes_packets(self, sim, streams):
        network, _ = build_static_network(sim, streams, [(0, 0), (80, 0)])
        received = collect_deliveries(network, 1)
        for i in range(3):
            network.node(0).send_data(DataPacket(0, 1, i, 0.0), 1)
        sim.run(until=1.0)
        per_packet = (4096 + 160) / 250_000
        deltas = []
        prev = 0.0
        # Deliveries spaced one airtime apart (captured via created order)
        assert len(received) == 3

    def test_distinct_links_parallel(self, sim, streams):
        """Two different next-hops transmit concurrently (separate PN codes)."""
        network, _ = build_static_network(sim, streams, [(0, 0), (80, 0), (0, 80)])
        times = {}
        network.node(1).receive_data = lambda pkt, frm: times.__setitem__(1, sim.now)
        network.node(2).receive_data = lambda pkt, frm: times.__setitem__(2, sim.now)
        network.node(0).send_data(DataPacket(0, 1, 1, 0.0), 1)
        network.node(0).send_data(DataPacket(0, 2, 1, 0.0), 2)
        sim.run(until=1.0)
        assert times[1] == pytest.approx(times[2])


class TestQueueBehaviour:
    def test_buffer_overflow_drops_and_records(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (240, 0)])
        collect_deliveries(network, 1)
        # class C link is slow (~56 ms/packet); flood 20 packets at once:
        # 1 in flight + 10 queued -> the rest drop.
        for i in range(20):
            network.node(0).send_data(DataPacket(0, 1, i, 0.0), 1)
        from repro.metrics.collector import DropReason

        assert metrics.drops[DropReason.QUEUE_FULL] == 9

    def test_residence_timeout_drops(self, sim, streams):
        from repro.metrics.collector import DropReason

        network, metrics = build_static_network(sim, streams, [(0, 0), (80, 0)])
        dl = network.node(0).datalink
        # Stuff the queue while the link is busy, then let 3+ s elapse.
        for i in range(5):
            dl.send(DataPacket(0, 1, i, 0.0), 1)
        # Artificially stall: make the node out of range so retries spin.
        sim.run(until=0.01)
        assert dl.total_queued() > 0

    def test_queue_length_accounting(self, sim, streams):
        network, _ = build_static_network(sim, streams, [(0, 0), (80, 0)])
        dl = network.node(0).datalink
        for i in range(4):
            dl.send(DataPacket(0, 1, i, 0.0), 1)
        # One popped into flight, three queued.
        assert dl.queue_length(1) == 3
        assert dl.total_queued() == 3
        assert dl.is_busy(1)


class TestLinkFailure:
    def _moving_network(self, sim, streams):
        """Node 1 walks out of range at t = 1 s."""
        from repro.metrics.collector import MetricsCollector
        from repro.geometry.field import Field
        from repro.net.network import Network
        from tests.helpers import make_deterministic_channel_config

        metrics = MetricsCollector(100.0)
        network = Network(
            sim,
            Field(5000, 5000),
            streams,
            metrics,
            channel_config=make_deterministic_channel_config(),
        )
        from repro.mobility.static import StaticPosition

        network.add_node(StaticPosition(Vec2(0, 0)))
        network.add_node(
            WaypointPath([(0.0, Vec2(200, 0)), (1.0, Vec2(200, 0)), (1.2, Vec2(1000, 0))])
        )
        return network, metrics

    def test_failure_callback_after_retries(self, sim, streams):
        network, metrics = self._moving_network(sim, streams)
        failures = []
        network.node(0).on_link_failure = lambda nh, pkt, rest: failures.append(
            (nh, pkt.uid, len(rest))
        )
        sim.run(until=2.0)  # node 1 leaves
        pkt = DataPacket(0, 1, 1, sim.now)
        network.node(0).send_data(pkt, 1)
        network.node(0).send_data(DataPacket(0, 1, 2, sim.now), 1)  # queued behind
        sim.run(until=5.0)
        assert len(failures) == 1
        nh, failed_uid, queued_count = failures[0]
        assert nh == 1
        assert failed_uid == pkt.uid
        assert queued_count == 1
        assert metrics.events["link_break_detected"] == 1

    def test_retry_happens_before_failure(self, sim, streams):
        network, metrics = self._moving_network(sim, streams)
        network.node(0).on_link_failure = lambda nh, pkt, rest: None
        sim.run(until=2.0)
        network.node(0).send_data(DataPacket(0, 1, 1, sim.now), 1)
        sim.run(until=5.0)
        assert metrics.events["datalink_retry"] == 2  # max_retries default
