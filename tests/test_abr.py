"""Behavioural tests for ABR on staged topologies."""

import pytest

from repro.routing.abr import AbrConfig
from repro.routing.packets import Beacon, RouteRequest

from tests.helpers import attach_protocols, build_static_network, send_app_packet


class TestAssociativity:
    def test_beacons_broadcast_periodically(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (100, 0)])
        attach_protocols(network, metrics, "abr")
        sim.run(until=5.0)
        # Two nodes, ~1 beacon/s each.
        assert 8 <= metrics.control_tx_count["beacon"] <= 12

    def test_ticks_accumulate(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (100, 0)])
        protos = attach_protocols(network, metrics, "abr")
        sim.run(until=6.0)
        assert protos[0].ticks_for(1) >= 4
        assert protos[0].is_stable(1)

    def test_ticks_stale_without_beacons(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (100, 0)])
        protos = attach_protocols(network, metrics, "abr")
        sim.run(until=6.0)
        assert protos[0].is_stable(1)
        # Silence node 1's beacons and let the timeout pass.
        protos[1].stop()
        sim.run(until=12.0)
        assert protos[0].ticks_for(1) == 0
        assert not protos[0].is_stable(1)

    def test_unknown_neighbour_not_stable(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (100, 0)])
        protos = attach_protocols(network, metrics, "abr")
        assert protos[0].ticks_for(99) == 0
        assert not protos[0].is_stable(99)


class TestRouteSelection:
    def test_metric_prefers_stability_over_hops(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (100, 0)])
        proto = attach_protocols(network, metrics, "abr")[0]
        stable = RouteRequest(0.0, 0, 9, 1)
        stable.stable_links = 3
        stable.load_sum = 5
        unstable = RouteRequest(0.0, 0, 9, 1)
        unstable.stable_links = 0
        unstable.load_sum = 0
        m_stable = proto.request_metric(stable, hops=3, csi=0.0, bottleneck_bw=1.0)
        m_unstable = proto.request_metric(unstable, hops=2, csi=0.0, bottleneck_bw=1.0)
        assert m_stable < m_unstable

    def test_metric_breaks_stability_ties_by_load_then_hops(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (100, 0)])
        proto = attach_protocols(network, metrics, "abr")[0]
        light = RouteRequest(0.0, 0, 9, 1)
        light.stable_links = 2
        light.load_sum = 1
        heavy = RouteRequest(0.0, 0, 9, 1)
        heavy.stable_links = 2
        heavy.load_sum = 9
        assert proto.request_metric(light, 2, 0.0, 1.0) < proto.request_metric(
            heavy, 2, 0.0, 1.0
        )

    def test_multihop_delivery(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(i * 150.0, 0.0) for i in range(4)]
        )
        attach_protocols(network, metrics, "abr")
        send_app_packet(network, metrics, 0, 3)
        sim.run(until=3.0)
        assert metrics.delivered == 1

    def test_prefers_stable_route_after_warmup(self, sim, streams):
        """Diamond 0-{1,3}-2 where relay 3's beacons started earlier is not
        stageable with identical static nodes, so instead verify that the
        accumulators in a relayed BQ reflect per-link stability."""
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (150, 0), (300, 0)]
        )
        protos = attach_protocols(network, metrics, "abr")
        sim.run(until=6.0)  # beacons make 0-1 and 1-2 stable
        captured = []
        orig = protos[2]._collect_candidate

        def spy(rreq, from_id, hops, csi, metric):
            captured.append((rreq.stable_links, hops))
            orig(rreq, from_id, hops, csi, metric)

        protos[2]._collect_candidate = spy
        send_app_packet(network, metrics, 0, 2)
        sim.run(until=8.0)
        assert metrics.delivered == 1
        assert captured, "destination never saw the BQ"
        stable_links, hops = captured[0]
        assert hops == 2
        assert stable_links == 2  # both links had >= threshold ticks


class TestLocalQuery:
    def test_lq_event_on_break(self, sim, streams):
        from repro.geometry.field import Field
        from repro.geometry.vector import Vec2
        from repro.metrics.collector import MetricsCollector
        from repro.mobility.path import WaypointPath
        from repro.mobility.static import StaticPosition
        from repro.net.network import Network
        from repro.sim.timers import PeriodicTimer
        from tests.helpers import make_deterministic_channel_config

        metrics = MetricsCollector(100.0)
        network = Network(
            sim,
            Field(5000, 5000),
            streams,
            metrics,
            channel_config=make_deterministic_channel_config(),
        )
        network.add_node(StaticPosition(Vec2(0, 0)))  # 0 source
        network.add_node(StaticPosition(Vec2(150, 0)))  # 1 relay
        network.add_node(  # 2 destination drifts away from 1 but stays near 3
            WaypointPath(
                [(0.0, Vec2(300, 0)), (2.0, Vec2(300, 0)), (3.5, Vec2(300, 220))]
            )
        )
        network.add_node(StaticPosition(Vec2(160, 150)))  # 3 alternative relay
        attach_protocols(network, metrics, "abr")
        seq = [0]

        def tick():
            seq[0] += 1
            send_app_packet(network, metrics, 0, 2, seq=seq[0])

        PeriodicTimer(sim, 0.1, tick, start_delay=0.0).start()
        sim.run(until=10.0)
        assert metrics.events.get("abr_local_query", 0) >= 1
        # Delivery recovered after the break.
        assert metrics.delivered > 50
