"""Unit tests for mobility models."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.geometry.field import Field
from repro.geometry.vector import Vec2
from repro.mobility.path import WaypointPath
from repro.mobility.static import StaticPosition
from repro.mobility.waypoint import RandomWaypoint


class TestStaticPosition:
    def test_position_constant(self):
        m = StaticPosition(Vec2(10, 20))
        assert m.position(0.0) == Vec2(10, 20)
        assert m.position(1e6) == Vec2(10, 20)

    def test_speed_zero(self):
        assert StaticPosition(Vec2(0, 0)).speed_at(5.0) == 0.0


class TestWaypointPath:
    def test_interpolates_linearly(self):
        path = WaypointPath([(0.0, Vec2(0, 0)), (10.0, Vec2(100, 0))])
        assert path.position(5.0) == Vec2(50, 0)

    def test_holds_endpoints(self):
        path = WaypointPath([(1.0, Vec2(0, 0)), (2.0, Vec2(10, 0))])
        assert path.position(0.0) == Vec2(0, 0)
        assert path.position(100.0) == Vec2(10, 0)

    def test_speed(self):
        path = WaypointPath([(0.0, Vec2(0, 0)), (10.0, Vec2(100, 0))])
        assert path.speed_at(5.0) == pytest.approx(10.0)
        assert path.speed_at(50.0) == 0.0

    def test_rejects_bad_anchor_times(self):
        with pytest.raises(ConfigurationError):
            WaypointPath([])
        with pytest.raises(ConfigurationError):
            WaypointPath([(1.0, Vec2(0, 0)), (1.0, Vec2(1, 1))])
        with pytest.raises(ConfigurationError):
            WaypointPath([(-1.0, Vec2(0, 0)), (1.0, Vec2(1, 1))])


class TestRandomWaypoint:
    def _model(self, max_speed=10.0, pause=3.0, seed=1):
        return RandomWaypoint(
            Field(1000, 1000), random.Random(seed), max_speed, pause_time=pause
        )

    def test_positions_stay_in_field(self):
        m = self._model()
        field = Field(1000, 1000)
        for t in range(0, 500, 7):
            assert field.contains(m.position(float(t)))

    def test_continuity(self):
        m = self._model(max_speed=20.0)
        prev = m.position(0.0)
        for i in range(1, 2000):
            t = i * 0.25
            cur = m.position(t)
            # displacement bounded by max speed x dt
            assert prev.distance_to(cur) <= 20.0 * 0.25 + 1e-6
            prev = cur

    def test_deterministic_given_rng(self):
        a = self._model(seed=9)
        b = self._model(seed=9)
        for t in (0.0, 12.3, 99.0, 500.0):
            assert a.position(t) == b.position(t)

    def test_out_of_order_queries_consistent(self):
        a = self._model(seed=4)
        b = self._model(seed=4)
        ts = [100.0, 3.0, 57.0, 4.5, 250.0]
        pos_a = {t: a.position(t) for t in ts}
        for t in sorted(ts):
            assert b.position(t) == pos_a[t]

    def test_zero_speed_is_static(self):
        m = self._model(max_speed=0.0)
        assert m.position(0.0) == m.position(1000.0)
        assert m.speed_at(123.0) == 0.0

    def test_speed_within_bounds(self):
        m = self._model(max_speed=15.0, pause=1.0)
        for t in range(0, 300, 3):
            assert 0.0 <= m.speed_at(float(t)) <= 15.0 + 1e-9

    def test_pause_occurs_at_waypoints(self):
        m = self._model(max_speed=10.0, pause=3.0)
        # Scan for an interval where the node does not move (a pause).
        paused = False
        for i in range(0, 5000):
            t = i * 0.1
            if m.position(t) == m.position(t + 2.9) and m.speed_at(t + 1.0) == 0.0:
                paused = True
                break
        assert paused, "expected at least one 3-second pause in 500 s"

    def test_negative_time_clamped(self):
        m = self._model()
        assert m.position(-5.0) == m.position(0.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            self._model(max_speed=-1.0)
        with pytest.raises(ConfigurationError):
            self._model(pause=-0.1)

    def test_explicit_start_position(self):
        m = RandomWaypoint(
            Field(1000, 1000), random.Random(1), 10.0, start=Vec2(500, 500)
        )
        assert m.position(0.0) == Vec2(500, 500)
