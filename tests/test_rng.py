"""Unit tests for deterministic named random streams."""

from repro.sim.rng import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(43, "a")

    def test_64_bit_range(self):
        s = derive_seed(1, "x")
        assert 0 <= s < 2**64


class TestRandomStreams:
    def test_same_name_returns_same_stream(self):
        streams = RandomStreams(7)
        assert streams.stream("mobility/1") is streams.stream("mobility/1")

    def test_streams_reproducible_across_factories(self):
        a = RandomStreams(7).stream("x")
        b = RandomStreams(7).stream("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_give_different_sequences(self):
        streams = RandomStreams(7)
        a = [streams.stream("a").random() for _ in range(10)]
        b = [streams.stream("b").random() for _ in range(10)]
        assert a != b

    def test_new_stream_does_not_perturb_existing(self):
        s1 = RandomStreams(7)
        seq_before = [s1.stream("main").random() for _ in range(5)]
        s2 = RandomStreams(7)
        s2.stream("other")  # extra consumer
        seq_after = [s2.stream("main").random() for _ in range(5)]
        assert seq_before == seq_after

    def test_spawn_namespaces(self):
        base = RandomStreams(7)
        t0 = base.spawn("trial/0")
        t1 = base.spawn("trial/1")
        assert t0.seed != t1.seed
        a = [t0.stream("x").random() for _ in range(5)]
        b = [t1.stream("x").random() for _ in range(5)]
        assert a != b

    def test_spawn_deterministic(self):
        assert RandomStreams(7).spawn("t").seed == RandomStreams(7).spawn("t").seed

    def test_seed_property(self):
        assert RandomStreams(99).seed == 99
