"""Unit tests for traffic generation."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.metrics.collector import MetricsCollector
from repro.traffic.pairs import Flow, choose_flows
from repro.traffic.poisson import PoissonSource

from tests.helpers import attach_protocols, build_static_network


class TestFlow:
    def test_rate_bps(self):
        flow = Flow(0, 1, 2, rate_pps=10.0, packet_bytes=512)
        assert flow.rate_bps == 10.0 * 512 * 8

    def test_invalid_flows_rejected(self):
        with pytest.raises(ConfigurationError):
            Flow(0, 1, 1, rate_pps=10.0)
        with pytest.raises(ConfigurationError):
            Flow(0, 1, 2, rate_pps=0.0)


class TestChooseFlows:
    def test_count_and_validity(self):
        flows = choose_flows(10, 50, 10.0, random.Random(3))
        assert len(flows) == 10
        for f in flows:
            assert 0 <= f.src < 50 and 0 <= f.dst < 50 and f.src != f.dst

    def test_sources_distinct(self):
        flows = choose_flows(10, 50, 10.0, random.Random(3))
        sources = [f.src for f in flows]
        assert len(set(sources)) == 10

    def test_deterministic(self):
        a = choose_flows(5, 20, 10.0, random.Random(7))
        b = choose_flows(5, 20, 10.0, random.Random(7))
        assert a == b

    def test_too_many_flows_rejected(self):
        with pytest.raises(ConfigurationError):
            choose_flows(11, 10, 10.0, random.Random(1))
        with pytest.raises(ConfigurationError):
            choose_flows(0, 10, 10.0, random.Random(1))


class TestPoissonSource:
    def test_mean_rate_statistical(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (100, 0)])
        attach_protocols(network, metrics, "aodv")
        flow = Flow(0, 0, 1, rate_pps=50.0)
        source = PoissonSource(
            sim, network.node(0), flow, random.Random(5), metrics, until=20.0
        )
        source.start()
        sim.run(until=25.0)
        # 50 pkt/s for 20 s = ~1000; Poisson sigma ~ 32.
        assert 850 <= source.generated <= 1150
        assert metrics.generated == source.generated

    def test_stops_at_until(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (100, 0)])
        attach_protocols(network, metrics, "aodv")
        flow = Flow(0, 0, 1, rate_pps=100.0)
        source = PoissonSource(
            sim, network.node(0), flow, random.Random(5), metrics, until=1.0
        )
        source.start()
        sim.run(until=10.0)
        count_at_cutoff = source.generated
        sim.run(until=20.0)
        assert source.generated == count_at_cutoff

    def test_sequence_numbers_increment(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (100, 0)])
        seqs = []
        network.node(0).routing = type(
            "Stub", (), {"handle_app_packet": lambda self, p: seqs.append(p.seq)}
        )()
        flow = Flow(0, 0, 1, rate_pps=100.0)
        PoissonSource(sim, network.node(0), flow, random.Random(5), metrics, until=0.5).start()
        sim.run(until=1.0)
        assert seqs == list(range(1, len(seqs) + 1))

    def test_deterministic_given_stream(self, sim, streams):
        from repro.sim.engine import Simulator

        times = []
        for _ in range(2):
            s = Simulator()
            network, metrics = build_static_network(s, streams.spawn("x"), [(0, 0), (100, 0)])
            stamps = []
            network.node(0).routing = type(
                "Stub", (), {"handle_app_packet": lambda self, p: stamps.append(p.created_at)}
            )()
            flow = Flow(0, 0, 1, rate_pps=20.0)
            PoissonSource(s, network.node(0), flow, random.Random(99), metrics, until=5.0).start()
            s.run(until=6.0)
            times.append(stamps)
        assert times[0] == times[1]
