"""Property-based tests for the channel and medium invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.channel.fading import GaussMarkovProcess
from repro.channel.model import ChannelConfig, ChannelModel
from repro.geometry.vector import Vec2
from repro.mac.medium import CommonChannelMedium, Transmission
from repro.net.packet import Packet
from repro.sim.rng import RandomStreams


class TestFadingProperties:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.lists(
            st.floats(min_value=0.001, max_value=5.0, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_samples_always_finite(self, seed, gaps):
        proc = GaussMarkovProcess(4.0, 1.0, random.Random(seed))
        t = 0.0
        for gap in gaps:
            t += gap
            value = proc.sample(t)
            assert -100.0 < value < 100.0

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_repeated_same_time_queries_stable(self, seed):
        proc = GaussMarkovProcess(4.0, 1.0, random.Random(seed))
        proc.sample(1.0)
        a = proc.sample(2.5)
        assert proc.sample(2.5) == a
        assert proc.sample(2.5) == a


class TestChannelModelProperties:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=10.0, max_value=400.0, allow_nan=False),
        st.lists(
            st.floats(min_value=0.01, max_value=3.0, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_symmetry_at_all_times(self, seed, distance, gaps):
        positions = {0: Vec2(0, 0), 1: Vec2(distance, 0)}
        model = ChannelModel(
            ChannelConfig(), RandomStreams(seed), lambda nid, t: positions[nid]
        )
        t = 0.0
        for gap in gaps:
            t += gap
            assert model.state(0, 1, t) == model.state(1, 0, t)

    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=10.0, max_value=400.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_throughput_always_a_paper_rate(self, seed, distance):
        positions = {0: Vec2(0, 0), 1: Vec2(distance, 0)}
        model = ChannelModel(
            ChannelConfig(), RandomStreams(seed), lambda nid, t: positions[nid]
        )
        rate = model.throughput_bps(0, 1, 1.0)
        assert rate in (250_000.0, 150_000.0, 75_000.0, 50_000.0)


class TestMediumProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # sender
                # All starts within the medium's prune horizon (20 ms):
                # collided() is only defined for recent transmissions (it
                # is queried at completion time by the MAC).
                st.floats(min_value=0.0, max_value=0.01, allow_nan=False),
                st.floats(min_value=0.0001, max_value=0.003, allow_nan=False),  # dur
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_collision_symmetric_in_overlap(self, txs):
        """If two transmissions overlap, each collides the other at any
        receiver within range of both senders."""
        positions = {i: Vec2(i * 50.0, 0.0) for i in range(5)}
        config = ChannelConfig(shadow_sigma_db=0.0, fast_sigma_db=0.0)
        channel = ChannelModel(config, RandomStreams(1), lambda nid, t: positions[nid])
        medium = CommonChannelMedium(channel)
        records = []
        for sender, start, dur in sorted(txs, key=lambda x: x[1]):
            records.append(medium.begin(sender, start, start + dur, Packet(10, start)))
        receiver = 4  # within 500 m of every sender
        for a in records:
            for b in records:
                if a is b or not a.overlaps(b):
                    continue
                assert medium.collided(a, receiver)
                assert medium.collided(b, receiver)

    @given(st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_overlap_is_symmetric(self, s1, s2):
        pkt = Packet(10, 0.0)
        a = Transmission(0, s1, s1 + 0.01, pkt)
        b = Transmission(1, s2, s2 + 0.01, pkt)
        assert a.overlaps(b) == b.overlaps(a)
