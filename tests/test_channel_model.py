"""Unit tests for the per-pair ChannelModel."""

import pytest

from repro.channel.csi import ChannelClass
from repro.channel.model import ChannelConfig, ChannelModel
from repro.geometry.vector import Vec2
from repro.sim.rng import RandomStreams


def make_model(positions, **channel_kwargs):
    """Channel over fixed node positions {id: Vec2}."""
    config = ChannelConfig(**channel_kwargs)
    streams = RandomStreams(11)
    return ChannelModel(config, streams, lambda nid, t: positions[nid])


class TestGeometry:
    def test_distance(self):
        model = make_model({0: Vec2(0, 0), 1: Vec2(30, 40)})
        assert model.distance(0, 1, 0.0) == 50.0

    def test_in_range_boundary_and_self(self):
        model = make_model({0: Vec2(0, 0), 1: Vec2(250, 0), 2: Vec2(251, 0)})
        assert model.in_range(0, 1, 0.0)
        assert not model.in_range(0, 2, 0.0)
        assert not model.in_range(0, 0, 0.0)

    def test_within_custom_range(self):
        model = make_model({0: Vec2(0, 0), 1: Vec2(400, 0)})
        assert model.within(0, 1, 0.0, 500.0)
        assert not model.within(0, 1, 0.0, 399.0)


class TestChannelState:
    def test_symmetric(self):
        model = make_model({0: Vec2(0, 0), 1: Vec2(180, 0)})
        for t in (0.0, 0.5, 1.0, 2.5):
            assert model.state(0, 1, t) == model.state(1, 0, t)

    def test_same_time_queries_consistent(self):
        model = make_model({0: Vec2(0, 0), 1: Vec2(180, 0)})
        assert model.snr_db(0, 1, 1.0) == model.snr_db(0, 1, 1.0)

    def test_deterministic_classes_without_fading(self):
        positions = {0: Vec2(0, 0), 1: Vec2(80, 0), 2: Vec2(210, 0)}
        model = make_model(positions, shadow_sigma_db=0.0, fast_sigma_db=0.0)
        assert model.state(0, 1, 0.0) is ChannelClass.A  # 80 m
        assert model.state(1, 2, 0.0) is ChannelClass.B  # 130 m
        assert model.state(0, 2, 0.0) is ChannelClass.C  # 210 m

    def test_throughput_matches_class(self):
        model = make_model(
            {0: Vec2(0, 0), 1: Vec2(80, 0)}, shadow_sigma_db=0.0, fast_sigma_db=0.0
        )
        assert model.throughput_bps(0, 1, 0.0) == 250_000

    def test_csi_hop_distance(self):
        model = make_model(
            {0: Vec2(0, 0), 1: Vec2(210, 0)}, shadow_sigma_db=0.0, fast_sigma_db=0.0
        )
        assert model.csi_hop_distance(0, 1, 0.0) == pytest.approx(10.0 / 3.0)

    def test_transmission_time(self):
        model = make_model(
            {0: Vec2(0, 0), 1: Vec2(80, 0)}, shadow_sigma_db=0.0, fast_sigma_db=0.0
        )
        assert model.transmission_time(0, 1, 0.0, 4096) == pytest.approx(4096 / 250_000)

    def test_class_mix_with_fading(self):
        """With default fading, a mid-range link visits several classes."""
        model = make_model({0: Vec2(0, 0), 1: Vec2(150, 0)})
        seen = {model.state(0, 1, t * 2.0) for t in range(200)}
        assert len(seen) >= 3

    def test_states_vary_over_time_with_fading(self):
        model = make_model({0: Vec2(0, 0), 1: Vec2(150, 0)})
        snrs = {round(model.snr_db(0, 1, t * 1.0), 3) for t in range(50)}
        assert len(snrs) > 10

    def test_distinct_pairs_independent_processes(self):
        model = make_model({0: Vec2(0, 0), 1: Vec2(150, 0), 2: Vec2(0, 150)})
        a = [model.snr_db(0, 1, t * 1.0) for t in range(20)]
        b = [model.snr_db(0, 2, t * 1.0) for t in range(20)]
        assert a != b
