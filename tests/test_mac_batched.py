"""Tests for the batched MAC backend: bank, scheduler, wheel, equivalence.

The batched backend is pinned three ways, mirroring how the vectorized
channel backend is held to its scalar reference:

* **unit**: BackoffBank draws are composition-independent and uniformly
  distributed; the TimerWheel fires in arm order with honest logical
  accounting; contention rounds land on the slot grid.
* **differential**: the run-vs-step pipeline (``--mac-backend batched``
  on the determinism tests) and per-seed self-determinism here.
* **statistical**: scalar vs batched end-to-end metrics agree within
  loose bounds at ``slot_align_s == 0`` — different uniform streams,
  same physics.
"""

from __future__ import annotations

import dataclasses
import json
import random

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.mac.bank import BackoffBank, ContentionScheduler
from repro.mac.csma import MacConfig
from repro.routing.packets import Beacon
from repro.sim.engine import Simulator
from repro.sim.rng import derive_key, splitmix64, splitmix64_array
from repro.sim.timers import TimerWheel

from tests.helpers import build_static_network


class TestSplitmix:
    def test_scalar_and_array_forms_agree(self):
        zs = [0, 1, 2**63, 0x9E3779B97F4A7C15, 2**64 - 1]
        out = splitmix64_array(np.array(zs, dtype=np.uint64))
        assert out.tolist() == [splitmix64(z) for z in zs]

    def test_derive_key_decorrelates_indices(self):
        keys = {derive_key(1, i) for i in range(1000)}
        assert len(keys) == 1000  # no collisions across nodes


class TestBackoffBank:
    def test_draws_in_unit_interval(self):
        bank = BackoffBank(seed=42)
        draws = [bank.uniform(7) for _ in range(1000)]
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_batch_composition_independence(self):
        """A node's k-th draw is the same whether it draws alone or
        batched with any set of other nodes — the property that makes
        batched runs deterministic regardless of round membership."""
        solo = BackoffBank(seed=9)
        grouped = BackoffBank(seed=9)
        expected = {n: [solo.uniform(n) for _ in range(3)] for n in (3, 1, 4, 15)}
        first = grouped.uniform_array([3, 1, 4, 15])       # round of 4
        second = grouped.uniform_array([4, 3])             # round of 2
        third = [grouped.uniform(n) for n in (1, 15)]      # scalar path
        fourth = grouped.uniform_array([15, 4, 1, 3])      # different order
        assert first.tolist() == [expected[n][0] for n in (3, 1, 4, 15)]
        assert second.tolist() == [expected[n][1] for n in (4, 3)]
        assert third == [expected[1][1], expected[15][1]]
        assert fourth.tolist() == [expected[n][2] for n in (15, 4, 1, 3)]

    def test_capacity_growth_preserves_streams(self):
        bank = BackoffBank(seed=5, capacity=16)
        before = [bank.uniform(n) for n in range(8)]
        for n in range(100, 200):  # force several doublings
            bank.uniform(n)
        ref = BackoffBank(seed=5)
        assert before == [ref.uniform(n) for n in range(8)]
        assert [bank.uniform(n) for n in range(8)] == [ref.uniform(n) for n in range(8)]

    def test_distribution_matches_random_uniform(self):
        """KS-style check: the bank's empirical CDF stays within 0.03 of
        ``random.Random``'s at n=10k — same uniformity, different stream."""
        bank = BackoffBank(seed=1)
        ours = np.sort(bank.uniform_array(list(range(10_000))))
        rng = random.Random(1)
        theirs = np.sort([rng.random() for _ in range(10_000)])
        grid = np.linspace(0.0, 1.0, 101)
        ks = np.max(
            np.abs(
                np.searchsorted(ours, grid) / 10_000.0
                - np.searchsorted(theirs, grid) / 10_000.0
            )
        )
        assert ks < 0.03

    def test_mean_and_variance(self):
        bank = BackoffBank(seed=3)
        draws = bank.uniform_array(list(range(20_000)))
        assert abs(float(draws.mean()) - 0.5) < 0.01
        assert abs(float(draws.var()) - 1.0 / 12.0) < 0.005


class TestTimerWheel:
    def test_entries_fire_in_arm_order_one_event(self):
        sim = Simulator()
        wheel = TimerWheel(sim)
        fired = []
        wheel.arm(1.0, fired.append, "a")
        wheel.arm(1.0, fired.append, "b")
        wheel.arm(1.0, fired.append, "c")
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.events_processed == 1  # one bucket event for all three
        assert sim.logical_events_processed == 3  # ...credited honestly

    def test_quantum_rounds_up_never_early(self):
        sim = Simulator()
        wheel = TimerWheel(sim, quantum_s=0.01)
        times = []
        wheel.arm(0.011, lambda: times.append(sim.now))
        wheel.arm(0.019, lambda: times.append(sim.now))
        wheel.arm(0.020, lambda: times.append(sim.now))  # already on grid
        sim.run()
        assert times == [0.02, 0.02, 0.02]
        assert sim.events_processed == 1  # all three coalesced

    def test_cancel_is_lazy_and_idempotent(self):
        sim = Simulator()
        wheel = TimerWheel(sim)
        fired = []
        token = wheel.arm(1.0, fired.append, "dead")
        wheel.arm(1.0, fired.append, "live")
        wheel.cancel(token)
        wheel.cancel(token)  # idempotent
        assert wheel.pending == 1
        sim.run()
        assert fired == ["live"]
        assert wheel.cancelled == 1

    def test_rearm_at_same_instant_opens_fresh_bucket(self):
        sim = Simulator()
        wheel = TimerWheel(sim)
        fired = []

        def chain():
            fired.append("first")
            wheel.arm(0.0, fired.append, "second")

        wheel.arm(1.0, chain)
        sim.run()
        assert fired == ["first", "second"]
        assert wheel.buckets_fired == 2

    def test_negative_quantum_and_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            TimerWheel(sim, quantum_s=-0.001)
        wheel = TimerWheel(sim)
        with pytest.raises(SimulationError):
            wheel.arm(-1.0, lambda: None)


class TestContentionScheduler:
    def test_align_identity_without_slot(self):
        sim = Simulator()
        sched = ContentionScheduler(sim, medium=None, bank=BackoffBank(1))
        assert sched.align(0.123456) == 0.123456

    def test_align_ceils_onto_grid(self):
        sim = Simulator()
        sched = ContentionScheduler(
            sim, medium=None, bank=BackoffBank(1), slot_align_s=0.001
        )
        assert sched.align(0.0101) == pytest.approx(0.011)
        assert sched.align(0.011) == pytest.approx(0.011)  # on-grid stays put
        assert sched.align(3 * 0.001) == pytest.approx(0.003)

    def test_rounds_resolve_contention_sequentially(self, sim, streams):
        """Two co-located senders forced into one slot round: exactly one
        wins the round, the other backs off — never a mutual collision of
        simultaneous starts (the scalar same-instant semantics)."""
        config = MacConfig(slot_align_s=0.005, initial_defer_max_s=0.0012)
        network, metrics = build_static_network(
            sim,
            streams,
            [(0, 0), (50, 0), (100, 0)],
            mac_config=config,
            mac_backend="batched",
        )
        for _ in range(10):
            network.node(0).mac.send(Beacon(sim.now, origin=0))
            network.node(1).mac.send(Beacon(sim.now, origin=1))
        sim.run(until=2.0)
        scheduler = network.mac_scheduler
        assert scheduler.rounds > 0
        # Both initial defers land in the first 5 ms slot: a genuinely
        # shared round happened.
        assert scheduler.attempts > scheduler.rounds
        assert metrics.control_tx_count["beacon"] == 20
        # In-round sequential carrier sense: the 20 transmissions from two
        # stations 50 m apart never overlap, so node 2 decodes them all.
        assert metrics.events.get("mac_collision", 0) == 0


BASE = ScenarioConfig(protocol="aodv", n_nodes=20, duration_s=3.0, seed=5)


def _report(config: ScenarioConfig) -> dict:
    return dataclasses.asdict(run_scenario(config))


class TestBackendEquivalence:
    def test_batched_backend_self_deterministic(self):
        config = BASE.with_(mac_backend="batched")
        a = json.dumps(_report(config), sort_keys=True)
        b = json.dumps(_report(config), sort_keys=True)
        assert a == b

    def test_batched_with_slot_self_deterministic(self):
        config = BASE.with_(mac_backend="batched", mac=MacConfig(slot_align_s=0.001))
        a = json.dumps(_report(config), sort_keys=True)
        b = json.dumps(_report(config), sort_keys=True)
        assert a == b

    @pytest.mark.parametrize("protocol", ["rica", "aodv"])
    def test_scalar_vs_batched_statistically_close(self, protocol):
        """At slot 0 the backends share physics and differ only in which
        uniform stream feeds defer/backoff; headline metrics must agree
        within loose bounds (exact per-seed equality is not expected)."""
        scalar = _report(BASE.with_(protocol=protocol))
        batched = _report(BASE.with_(protocol=protocol, mac_backend="batched"))
        assert abs(scalar["delivery_pct"] - batched["delivery_pct"]) < 12.0
        assert 0.4 < batched["avg_delay_ms"] / scalar["avg_delay_ms"] < 2.5
        assert (
            abs(scalar["overhead_kbps"] - batched["overhead_kbps"])
            < 0.3 * scalar["overhead_kbps"]
        )

    def test_scalar_backend_ignores_slot_align(self):
        """slot_align_s is a batched-backend knob: the scalar reference is
        byte-identical with and without it."""
        plain = json.dumps(_report(BASE), sort_keys=True)
        slotted = json.dumps(
            _report(BASE.with_(mac=MacConfig(slot_align_s=0.002))), sort_keys=True
        )
        assert plain == slotted
