"""Unit tests for trial statistics and table rendering."""

import pytest

from repro.analysis.stats import (
    aggregate_reports,
    confidence_interval_95,
    mean,
    sem,
    std,
)
from repro.analysis.tables import format_series, format_table
from repro.errors import ConfigurationError
from repro.metrics.report import MetricsReport


def make_report(delay=100.0, pct=90.0, overhead=50.0, series=(10.0, 20.0)):
    return MetricsReport(
        duration=10.0,
        generated=100,
        delivered=90,
        avg_delay_ms=delay,
        delivery_pct=pct,
        overhead_kbps=overhead,
        avg_link_throughput_kbps=150.0,
        avg_hops=3.0,
        throughput_series_kbps=list(series),
        drops={"queue_full": 5},
    )


class TestBasicStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0

    def test_std(self):
        assert std([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, rel=1e-3)
        assert std([5]) == 0.0

    def test_sem_and_ci(self):
        values = [10.0] * 100
        assert sem(values) == 0.0
        lo, hi = confidence_interval_95(values)
        assert lo == hi == 10.0

    def test_ci_contains_mean(self):
        values = [1.0, 2.0, 3.0, 4.0]
        lo, hi = confidence_interval_95(values)
        assert lo < mean(values) < hi


class TestAggregation:
    def test_means_across_trials(self):
        agg = aggregate_reports([make_report(delay=100.0), make_report(delay=200.0)])
        assert agg.trials == 2
        assert agg.avg_delay_ms == 150.0
        assert agg.avg_delay_ms_std == pytest.approx(70.71, rel=1e-3)

    def test_series_elementwise_mean(self):
        agg = aggregate_reports(
            [make_report(series=(10.0, 20.0)), make_report(series=(30.0, 40.0))]
        )
        assert agg.throughput_series_kbps == [20.0, 30.0]

    def test_ragged_series(self):
        agg = aggregate_reports(
            [make_report(series=(10.0,)), make_report(series=(30.0, 40.0))]
        )
        assert agg.throughput_series_kbps == [20.0, 40.0]

    def test_drop_means(self):
        agg = aggregate_reports([make_report(), make_report()])
        assert agg.drops["queue_full"] == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            aggregate_reports([])


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2.5], [10, 20.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert "2.5" in text and "20.2" in text  # one decimal for floats

    def test_format_series_downsamples(self):
        times = [float(i) for i in range(100)]
        values = [float(i) for i in range(100)]
        text = format_series("lbl", times, values, max_points=10)
        assert text.startswith("lbl")
        assert len(text.splitlines()) <= 12

    def test_format_series_empty(self):
        assert "(empty)" in format_series("x", [], [])
