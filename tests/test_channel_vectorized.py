"""Tests for the vectorized channel pipeline (FadingBank + backends).

Four layers of guarantees:

* **Exact transitions** — given identical innovations, the bank applies
  the same AR(1) update as :class:`GaussMarkovProcess` (hypothesis
  property test, scalar and vectorized sampling paths).
* **Matched statistics** — the scalar and vectorized backends draw from
  different substream constructions, so their sample paths differ; the
  differential tests pin mean / variance / lag autocorrelation of both
  to the same theoretical values within CI bounds.
* **Determinism** — per-seed reproducibility of both backends, including
  batch-composition independence (a pair consumes the same draws whether
  sampled alone or inside a neighbour-set batch) and full-scenario
  byte-equality.
* **Pipeline equivalence** — batched (`states`, `csi_hop_distances`,
  `csi_hop_map`) and single-pair queries agree with each other and with
  the topology's batched geometry.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.bank import FadingBank
from repro.channel.csi import ChannelClass
from repro.channel.fading import CompositeFadingProcess, GaussMarkovProcess
from repro.channel.model import ChannelConfig, ChannelModel
from repro.errors import ConfigurationError, SimulationError, TopologyError
from repro.geometry.field import Field
from repro.geometry.vector import Vec2
from repro.sim.rng import RandomStreams
from repro.topology import TopologyIndex


def make_positions(n, side=1000.0, seed=3):
    import random

    rnd = random.Random(seed)
    return {i: Vec2(rnd.uniform(0, side), rnd.uniform(0, side)) for i in range(n)}


def make_topology(positions, side=1000.0, radius=250.0):
    topo = TopologyIndex(Field(side, side), radius=radius)
    for nid, pos in positions.items():
        topo.add(nid, (lambda p: (lambda t: p))(pos))
    return topo


class _InnovationRng:
    """Feeds prescribed standard normals through the random.Random.gauss API."""

    def __init__(self, normals):
        self._it = iter(normals)

    def gauss(self, mu, sigma):
        return mu + sigma * next(self._it)


class TestExactTransition:
    """FadingBank applies GaussMarkovProcess's transition exactly."""

    @given(
        sigma=st.floats(min_value=0.1, max_value=12.0),
        tau=st.floats(min_value=0.05, max_value=20.0),
        steps=st.lists(st.floats(min_value=1e-4, max_value=30.0), min_size=1, max_size=12),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=60, deadline=None)
    def test_scalar_path_matches_gauss_markov(self, sigma, tau, steps, seed):
        bank = FadingBank(seed, shadow_sigma_db=sigma, shadow_tau_s=tau, fast_sigma_db=0.0)
        row = bank.row(0, 1)
        # Replay the bank's own counter-based innovations into the scalar
        # process: draw k feeds both at the same transition.
        key = bank._key_int[row]
        normals = [bank._draw_scalar(key, k)[0] for k in range(len(steps) + 1)]
        gm = GaussMarkovProcess(sigma, tau, _InnovationRng(normals))
        t = 0.0
        assert bank.sample_pair(0, 1, 0.0) == pytest.approx(gm.sample(0.0), rel=1e-12)
        for dt in steps:
            t += dt
            assert bank.sample_pair(0, 1, t) == pytest.approx(gm.sample(t), rel=1e-12, abs=1e-12)

    @given(
        sigma=st.floats(min_value=0.1, max_value=12.0),
        tau=st.floats(min_value=0.05, max_value=20.0),
        steps=st.lists(st.floats(min_value=1e-4, max_value=30.0), min_size=1, max_size=12),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=60, deadline=None)
    def test_vector_path_matches_gauss_markov(self, sigma, tau, steps, seed):
        bank = FadingBank(seed, shadow_sigma_db=sigma, shadow_tau_s=tau, fast_sigma_db=0.0)
        rows = bank.rows(0, [1])
        key = bank._key_int[int(rows[0])]
        normals = [bank._draw_scalar(key, k)[0] for k in range(len(steps) + 1)]
        gm = GaussMarkovProcess(sigma, tau, _InnovationRng(normals))
        t = 0.0
        for dt in steps:
            t += dt
            got = bank.sample_rows(rows, t)[0]
            assert got == pytest.approx(gm.sample(t), rel=1e-12, abs=1e-12)

    def test_backwards_sampling_rejected_like_scalar_process(self):
        bank = FadingBank(1)
        bank.sample_pair(0, 1, 5.0)
        with pytest.raises(SimulationError):
            bank.sample_pair(0, 1, 1.0)
        rows = bank.rows(0, [1, 2])
        bank.sample_rows(rows, 6.0)
        with pytest.raises(SimulationError):
            bank.sample_rows(rows, 2.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            FadingBank(1, shadow_sigma_db=-1.0)
        with pytest.raises(ConfigurationError):
            FadingBank(1, fast_tau_s=0.0)


class TestMatchedStatistics:
    """Scalar and vectorized fading match in distribution (not samples)."""

    SIGMA_S, TAU_S = 4.0, 2.0
    SIGMA_F, TAU_F = 3.0, 0.4

    def _theory(self, dt):
        vs, vf = self.SIGMA_S**2, self.SIGMA_F**2
        rho = (vs * math.exp(-dt / self.TAU_S) + vf * math.exp(-dt / self.TAU_F)) / (vs + vf)
        return math.sqrt(vs + vf), rho

    def _series_stats(self, values, dt):
        arr = np.asarray(values)
        mean = arr.mean()
        std = arr.std()
        lag = np.corrcoef(arr[:-1], arr[1:])[0, 1]
        return mean, std, lag

    def _bank_series(self, seed, dt, n):
        bank = FadingBank(
            seed,
            shadow_sigma_db=self.SIGMA_S,
            shadow_tau_s=self.TAU_S,
            fast_sigma_db=self.SIGMA_F,
            fast_tau_s=self.TAU_F,
        )
        rows = bank.rows(0, [1])
        return [float(bank.sample_rows(rows, (i + 1) * dt)[0]) for i in range(n)]

    def _scalar_series(self, seed, dt, n):
        proc = CompositeFadingProcess(
            RandomStreams(seed).stream("channel/0-1"),
            shadow_sigma_db=self.SIGMA_S,
            shadow_tau_s=self.TAU_S,
            fast_sigma_db=self.SIGMA_F,
            fast_tau_s=self.TAU_F,
        )
        return [proc.sample((i + 1) * dt) for i in range(n)]

    def test_stationary_and_autocorrelation_match_theory_and_each_other(self):
        dt, n = 0.25, 60000
        std_theory, rho_theory = self._theory(dt)
        stats = {}
        for name, series in (
            ("bank", self._bank_series(17, dt, n)),
            ("scalar", self._scalar_series(17, dt, n)),
        ):
            mean, std, lag = self._series_stats(series, dt)
            # ~4-sigma CI for the mean of n strongly-correlated samples
            # (effective sample size reduced by (1+rho)/(1-rho)).
            n_eff = n * (1 - rho_theory) / (1 + rho_theory)
            assert abs(mean) < 4.0 * std_theory / math.sqrt(n_eff), name
            assert std == pytest.approx(std_theory, rel=0.05), name
            assert lag == pytest.approx(rho_theory, abs=0.03), name
            stats[name] = (mean, std, lag)
        assert stats["bank"][1] == pytest.approx(stats["scalar"][1], rel=0.05)
        assert stats["bank"][2] == pytest.approx(stats["scalar"][2], abs=0.04)

    def test_class_mix_matches_between_backends(self):
        """At a mid-range distance both backends visit the same class mix."""
        positions = {0: Vec2(0, 0), 1: Vec2(150, 0)}
        counts = {}
        for backend in ("vectorized", "scalar"):
            model = ChannelModel(
                ChannelConfig(), RandomStreams(23), lambda nid, t: positions[nid],
                backend=backend,
            )
            freq = {cls: 0 for cls in ChannelClass}
            n = 4000
            for i in range(n):
                freq[model.state(0, 1, (i + 1) * 2.0)] += 1
            counts[backend] = {cls: c / n for cls, c in freq.items()}
        for cls in ChannelClass:
            assert counts["vectorized"][cls] == pytest.approx(
                counts["scalar"][cls], abs=0.05
            ), cls


class TestDeterminism:
    def test_same_seed_same_samples(self):
        a = FadingBank(99)
        b = FadingBank(99)
        rows_a = a.rows(0, [1, 2, 3])
        rows_b = b.rows(0, [1, 2, 3])
        for t in (0.0, 0.5, 1.25, 7.0):
            assert np.array_equal(a.sample_rows(rows_a, t), b.sample_rows(rows_b, t))

    def test_different_seeds_differ(self):
        a, b = FadingBank(1), FadingBank(2)
        assert a.sample_pair(0, 1, 1.0) != b.sample_pair(0, 1, 1.0)

    def test_batch_composition_independence(self):
        """A pair's draws do not depend on which batch samples it."""
        a = FadingBank(42)
        alone = [a.sample_pair(3, 7, t) for t in (0.0, 1.0, 2.0)]
        b = FadingBank(42)
        rows = b.rows(3, [1, 7, 9, 12])
        batched = [b.sample_rows(rows, t)[1] for t in (0.0, 1.0, 2.0)]
        assert alone == pytest.approx(batched, rel=1e-12)

    def test_allocation_order_independence(self):
        a = FadingBank(42)
        a.sample_pair(8, 9, 0.0)
        first = a.sample_pair(0, 1, 0.0)
        b = FadingBank(42)
        assert b.sample_pair(0, 1, 0.0) == first

    def test_symmetry(self):
        bank = FadingBank(5)
        assert bank.sample_pair(2, 6, 1.0) == bank.sample_pair(6, 2, 1.0)

    @pytest.mark.parametrize("backend", ["vectorized", "scalar"])
    def test_scenario_runs_are_reproducible(self, backend):
        from repro.experiments.scenario import ScenarioConfig, run_scenario

        config = ScenarioConfig(
            protocol="rica",
            n_nodes=12,
            n_flows=3,
            duration_s=3.0,
            seed=7,
            channel_backend=backend,
        )
        first = dataclasses.asdict(run_scenario(config))
        second = dataclasses.asdict(run_scenario(config))
        assert first == second
        other = dataclasses.asdict(run_scenario(config.with_(seed=8)))
        assert other != first

    def test_backend_knob_validated(self):
        from repro.experiments.scenario import ScenarioConfig

        with pytest.raises(ConfigurationError):
            ScenarioConfig(channel_backend="fancy")
        positions = {0: Vec2(0, 0)}
        with pytest.raises(ConfigurationError):
            ChannelModel(
                ChannelConfig(), RandomStreams(1), lambda nid, t: positions[nid],
                backend="fancy",
            )


class TestPipelineEquivalence:
    """Batched queries agree with single-pair queries and geometry."""

    def make_model(self, n=40, backend="vectorized", with_topology=True, seed=11):
        positions = make_positions(n)
        topo = make_topology(positions) if with_topology else None
        model = ChannelModel(
            ChannelConfig(),
            RandomStreams(seed),
            (topo.position if topo is not None else (lambda nid, t: positions[nid])),
            backend=backend,
            topology=topo,
        )
        return model, topo, positions

    def test_states_consistent_with_singles_at_same_time(self):
        model, _, _ = self.make_model()
        others = list(range(1, 25))
        batch = model.states(0, others, 3.0)
        for b in others:
            assert model.state(0, b, 3.0) is batch[b]

    def test_small_set_path_consistent_with_singles(self):
        """Sets below the cutoff loop over the scalar fast path; draws
        and results agree with single-pair queries."""
        from repro.channel.model import SMALL_SET_CUTOFF

        model, _, _ = self.make_model(seed=51)
        others = list(range(1, SMALL_SET_CUTOFF))  # below the cutoff
        batch = model.states(0, others, 1.0)
        single_model, _, _ = self.make_model(seed=51)
        for b in others:
            assert single_model.state(0, b, 1.0) is batch[b]

    def test_states_matches_model_without_topology(self):
        """The coords fast path and the position_fn fallback agree."""
        m1, _, _ = self.make_model(with_topology=True)
        m2, _, _ = self.make_model(with_topology=False)
        others = list(range(1, 30))
        for t in (0.0, 1.0, 2.5):
            assert m1.states(0, others, t) == m2.states(0, others, t)

    def test_csi_hop_distances_match_states(self):
        from repro.channel.csi import hop_distance

        m1, _, _ = self.make_model(seed=31)
        m2, _, _ = self.make_model(seed=31)
        others = list(range(1, 20))
        hops = m1.csi_hop_distances(0, others, 1.5)
        states = m2.states(0, others, 1.5)
        assert hops == {b: hop_distance(s) for b, s in states.items()}

    @pytest.mark.parametrize("backend", ["vectorized", "scalar"])
    def test_csi_hop_map_equivalent_to_per_set_queries(self, backend):
        m1, topo, _ = self.make_model(backend=backend, seed=13)
        m2, _, _ = self.make_model(backend=backend, seed=13)
        adj = topo.neighbor_map(2.0)
        bulk = m1.csi_hop_map(adj, 2.0)
        per_set = {a: m2.csi_hop_distances(a, nbrs, 2.0) for a, nbrs in adj.items()}
        assert bulk == per_set

    def test_csi_hop_map_symmetric(self):
        model, topo, _ = self.make_model()
        adj = topo.neighbor_map(1.0)
        bulk = model.csi_hop_map(adj, 1.0)
        for a, row in bulk.items():
            for b, hop in row.items():
                assert bulk[b][a] == hop

    def test_empty_neighbour_sets(self):
        model, _, _ = self.make_model()
        assert model.states(0, [], 1.0) == {}
        assert model.csi_hop_distances(0, [], 1.0) == {}
        assert model.csi_hop_map({0: [], 1: []}, 1.0) == {0: {}, 1: {}}

    def test_link_metrics_matches_components(self):
        m1, _, _ = self.make_model(seed=41)
        m2, _, _ = self.make_model(seed=41)
        hop, bw = m1.link_metrics(0, 5, 1.0)
        cls = m2.state(0, 5, 1.0)
        from repro.channel.csi import hop_distance

        assert hop == hop_distance(cls)
        assert bw == m2.config.abicm.throughput(cls)


class TestTopologyBatchedQueries:
    def test_distances_from_matches_pointwise(self):
        positions = make_positions(60)
        topo = make_topology(positions)
        others = list(range(1, 60))
        for t in (0.0, 1.5):
            # Without a snapshot (pointwise fallback) ...
            d1 = topo.distances_from(0, others, t)
            expected = [topo.distance(0, b, t) for b in others]
            assert d1 == pytest.approx(expected)
            # ... and with one (array gather), repeatedly to cross the
            # adaptive coords threshold.
            topo.neighbors(0, t)
            for _ in range(4):
                d2 = topo.distances_from(0, others, t)
                assert d2 == pytest.approx(expected)

    def test_distances_from_sparse_ids(self):
        positions = {5: Vec2(0, 0), 17: Vec2(30, 40), 99: Vec2(300, 400)}
        topo = TopologyIndex(Field(1000, 1000), radius=250.0)
        for nid, pos in positions.items():
            topo.add(nid, (lambda p: (lambda t: p))(pos))
        topo.neighbors(5, 0.0)  # build the snapshot (non-dense ids)
        for _ in range(4):  # cross the coords threshold
            d = topo.distances_from(5, [17, 99], 0.0)
        assert d == pytest.approx([50.0, 500.0])

    def test_distances_from_unknown_id(self):
        positions = make_positions(5)
        topo = make_topology(positions)
        with pytest.raises(TopologyError):
            topo.distances_from(0, [1, 77], 0.0)
        topo.neighbors(0, 0.0)
        with pytest.raises(TopologyError):
            topo.distances_from(0, [1, 77], 0.0)

    def test_which_within_matches_within(self):
        positions = make_positions(50)
        topo = make_topology(positions)
        others = list(range(1, 50))
        mask = topo.which_within(0, others, 0.0, 300.0)
        expected = [topo.within(b, 0, 0.0, 300.0) for b in others]
        assert mask.tolist() == expected
        assert topo.any_within(0, others, 0.0, 300.0) == any(expected)
        assert not topo.any_within(0, [0], 0.0, 300.0)  # self is masked

    def test_coords_view_dense_and_sparse(self):
        positions = make_positions(10)
        topo = make_topology(positions)
        coords, slot_of = topo.coords_view(0.0)
        assert slot_of is None
        assert coords.shape == (10, 2)
        assert coords[3][0] == pytest.approx(positions[3].x)
