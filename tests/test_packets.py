"""Unit tests for data and control packets."""

import math

import pytest

from repro.errors import PacketError
from repro.net.packet import ACK_BYTES, DATA_PACKET_BYTES, DataPacket, Packet
from repro.routing.packets import (
    Beacon,
    ControlPacket,
    CsiCheck,
    LinkStateAd,
    RouteError,
    RouteNotification,
    RouteReply,
    RouteRequest,
    RouteUpdate,
)


class TestDataPacket:
    def test_paper_size(self):
        pkt = DataPacket(src=1, dst=2, seq=1, created_at=0.0)
        assert pkt.size_bytes == DATA_PACKET_BYTES == 512
        assert pkt.size_bits == 4096

    def test_unique_uids(self):
        a = DataPacket(1, 2, 1, 0.0)
        b = DataPacket(1, 2, 2, 0.0)
        assert a.uid != b.uid

    def test_record_hop(self):
        pkt = DataPacket(1, 2, 1, 0.0)
        pkt.record_hop(250_000.0)
        pkt.record_hop(75_000.0)
        assert pkt.hops_traversed == 2
        assert pkt.link_rates_bps == [250_000.0, 75_000.0]

    def test_self_addressed_rejected(self):
        with pytest.raises(PacketError):
            DataPacket(3, 3, 1, 0.0)

    def test_invalid_size_rejected(self):
        with pytest.raises(PacketError):
            Packet(0, 0.0)


class TestControlPackets:
    def test_sizes_are_compact(self):
        now = 0.0
        assert RouteRequest(now, 1, 2, 1).size_bytes == 24
        assert RouteReply(now, 1, 2, 1).size_bytes == 20
        assert RouteError(now, 1, 2, 3).size_bytes == 16
        assert CsiCheck(now, 1, 2, 1, ttl=4).size_bytes == 20
        assert RouteUpdate(now, 1, 2, 1).size_bytes == 16
        assert Beacon(now, 1).size_bytes == 12
        assert RouteNotification(now, 1, 2, 3).size_bytes == 16

    def test_lsa_size_grows_with_entries(self):
        base = LinkStateAd(0.0, origin=1, seq=1, entries=[])
        one = LinkStateAd(0.0, origin=1, seq=2, entries=[(2, 1.0)])
        three = LinkStateAd(0.0, origin=1, seq=3, entries=[(2, 1.0), (3, 5.0), (4, math.inf)])
        assert one.size_bytes == base.size_bytes + 6
        assert three.size_bytes == base.size_bytes + 18

    def test_flood_keys_unique_per_broadcast(self):
        r1 = RouteRequest(0.0, 1, 2, bcast_id=1)
        r2 = RouteRequest(0.0, 1, 2, bcast_id=2)
        assert r1.flood_key != r2.flood_key
        c1 = CsiCheck(0.0, 1, 2, bcast_id=1, ttl=3)
        assert c1.flood_key != r1.flood_key

    def test_relay_copy_fresh_uid_same_fields(self):
        rreq = RouteRequest(0.0, origin=1, target=2, bcast_id=7, ttl=5)
        rreq.hops = 3
        rreq.csi_distance = 4.5
        clone = rreq.relay_copy(1.5)
        assert clone.uid != rreq.uid
        assert clone.created_at == 1.5
        assert clone.origin == 1 and clone.target == 2 and clone.bcast_id == 7
        assert clone.hops == 3 and clone.csi_distance == 4.5 and clone.ttl == 5

    def test_relay_copy_does_not_alias(self):
        rreq = RouteRequest(0.0, 1, 2, 1)
        clone = rreq.relay_copy(0.1)
        clone.hops = 99
        assert rreq.hops == 0

    def test_relay_copy_preserves_lsa_size(self):
        lsa = LinkStateAd(0.0, 1, 1, entries=[(2, 1.0), (3, 2.0)])
        clone = lsa.relay_copy(0.5)
        assert clone.size_bytes == lsa.size_bytes
        assert clone.entries == lsa.entries

    def test_unicast_marker(self):
        rrep = RouteReply(0.0, 1, 2, 1, unicast_to=9)
        assert rrep.unicast_to == 9
        assert RouteRequest(0.0, 1, 2, 1).unicast_to is None

    def test_rreq_defaults(self):
        rreq = RouteRequest(0.0, 1, 2, 1)
        assert rreq.hops == 0
        assert rreq.csi_distance == 0.0
        assert rreq.min_bw_bps == float("inf")
        assert rreq.query_kind == "full"
        assert rreq.ttl is None

    def test_ack_size_constant(self):
        assert ACK_BYTES == 20
