"""The deterministic fault-injection subsystem.

Three layers under test:

* **Config validation** — every fault dataclass range-checks its fields
  in ``__post_init__`` (MacConfig style), and ``ScenarioConfig`` rejects
  fault windows that fall outside the simulation horizon.
* **Schedule compilation** — :meth:`FaultSchedule.compile` is a pure
  function of ``(config, n_nodes, seed, horizon)``: byte-identical
  signatures across repeated compiles, across execution/MAC/mobility
  backends, and sensitive to each input.
* **Runtime semantics** — ``Network.fail_node``/``recover_node`` take a
  node's radio off the air (topology, MAC, dispatch) and bring it back,
  with reason-set composition (overlapping blackout + churn, permanent
  energy death); and the end-to-end determinism contract: churn-enabled
  campaigns are byte-identical serial vs process-pool.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign import CampaignSpec, run_campaign, save_results
from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.faults import (
    BlackoutConfig,
    EnergyFaultConfig,
    FaultConfig,
    FaultSchedule,
    NodeChurnConfig,
    NodeOutage,
)

from tests.helpers import build_static_network


class TestFaultConfigValidation:
    def test_churn_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            NodeChurnConfig(crash_rate_per_s=0.0)
        with pytest.raises(ConfigurationError):
            NodeChurnConfig(crash_rate_per_s=-0.1)

    def test_churn_rejects_nonpositive_downtime(self):
        with pytest.raises(ConfigurationError):
            NodeChurnConfig(crash_rate_per_s=0.1, mean_downtime_s=0.0)

    def test_churn_rejects_negative_start(self):
        with pytest.raises(ConfigurationError):
            NodeChurnConfig(crash_rate_per_s=0.1, start_s=-1.0)

    def test_churn_rejects_end_before_start(self):
        with pytest.raises(ConfigurationError):
            NodeChurnConfig(crash_rate_per_s=0.1, start_s=5.0, end_s=5.0)

    def test_outage_rejects_negative_node(self):
        with pytest.raises(ConfigurationError):
            NodeOutage(node_id=-1, crash_s=1.0)

    def test_outage_rejects_negative_crash_time(self):
        with pytest.raises(ConfigurationError):
            NodeOutage(node_id=0, crash_s=-1.0)

    def test_outage_rejects_recover_before_crash(self):
        with pytest.raises(ConfigurationError):
            NodeOutage(node_id=0, crash_s=2.0, recover_s=2.0)
        with pytest.raises(ConfigurationError):
            NodeOutage(node_id=0, crash_s=2.0, recover_s=1.0)

    def test_blackout_rejects_negative_start(self):
        with pytest.raises(ConfigurationError):
            BlackoutConfig(-1.0, 1.0, 0.0, 0.0, 100.0)

    def test_blackout_rejects_nonpositive_duration(self):
        with pytest.raises(ConfigurationError):
            BlackoutConfig(0.0, 0.0, 0.0, 0.0, 100.0)

    def test_blackout_rejects_nonpositive_radius(self):
        with pytest.raises(ConfigurationError):
            BlackoutConfig(0.0, 1.0, 0.0, 0.0, 0.0)

    def test_energy_rejects_nonpositive_budget(self):
        with pytest.raises(ConfigurationError):
            EnergyFaultConfig(budget_j=0.0)

    def test_energy_rejects_jitter_outside_unit_interval(self):
        with pytest.raises(ConfigurationError):
            EnergyFaultConfig(budget_j=1.0, budget_jitter=-0.1)
        with pytest.raises(ConfigurationError):
            EnergyFaultConfig(budget_j=1.0, budget_jitter=1.0)

    def test_energy_rejects_nonpositive_interval(self):
        with pytest.raises(ConfigurationError):
            EnergyFaultConfig(budget_j=1.0, check_interval_s=0.0)

    def test_fault_config_rejects_wrong_element_types(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(outages=["not-an-outage"])
        with pytest.raises(ConfigurationError):
            FaultConfig(blackouts=[NodeOutage(0, 1.0)])

    def test_fault_config_coerces_lists_to_tuples(self):
        config = FaultConfig(outages=[NodeOutage(0, 1.0)])
        assert isinstance(config.outages, tuple)
        assert config.enabled()
        assert not FaultConfig().enabled()

    def test_scenario_rejects_churn_outside_horizon(self):
        faults = FaultConfig(churn=NodeChurnConfig(crash_rate_per_s=0.1, start_s=10.0))
        with pytest.raises(ConfigurationError):
            ScenarioConfig(duration_s=5.0, faults=faults)
        faults = FaultConfig(
            churn=NodeChurnConfig(crash_rate_per_s=0.1, end_s=6.0)
        )
        with pytest.raises(ConfigurationError):
            ScenarioConfig(duration_s=5.0, faults=faults)

    def test_scenario_rejects_outage_outside_horizon(self):
        faults = FaultConfig(outages=[NodeOutage(0, crash_s=5.0)])
        with pytest.raises(ConfigurationError):
            ScenarioConfig(duration_s=5.0, faults=faults)

    def test_scenario_rejects_blackout_outside_horizon(self):
        faults = FaultConfig(blackouts=[BlackoutConfig(4.0, 2.0, 0.0, 0.0, 100.0)])
        with pytest.raises(ConfigurationError):
            ScenarioConfig(duration_s=5.0, faults=faults)

    def test_scenario_rejects_non_faultconfig(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(duration_s=5.0, faults=NodeChurnConfig(crash_rate_per_s=0.1))


CHURN = FaultConfig(churn=NodeChurnConfig(crash_rate_per_s=0.2, mean_downtime_s=2.0))


class TestScheduleCompilation:
    def test_compile_is_deterministic(self):
        a = FaultSchedule.compile(CHURN, n_nodes=20, seed=7, horizon=30.0)
        b = FaultSchedule.compile(CHURN, n_nodes=20, seed=7, horizon=30.0)
        assert len(a) > 0
        assert a.signature() == b.signature()

    def test_compile_sensitive_to_seed_and_shape(self):
        base = FaultSchedule.compile(CHURN, n_nodes=20, seed=7, horizon=30.0)
        assert base.signature() != FaultSchedule.compile(
            CHURN, n_nodes=20, seed=8, horizon=30.0
        ).signature()
        assert base.signature() != FaultSchedule.compile(
            CHURN, n_nodes=21, seed=7, horizon=30.0
        ).signature()

    def test_per_node_substreams_are_stable_under_node_count(self):
        """Node i's churn timeline never depends on how many other nodes
        exist — the per-node substream key is the node id."""
        small = FaultSchedule.compile(CHURN, n_nodes=5, seed=7, horizon=30.0)
        large = FaultSchedule.compile(CHURN, n_nodes=10, seed=7, horizon=30.0)
        node_events = lambda sched, node: [
            (e.time, e.action) for e in sched.events if e.node == node
        ]
        for node in range(5):
            assert node_events(small, node) == node_events(large, node)

    def test_events_sorted_with_recover_before_crash_tiebreak(self):
        faults = FaultConfig(
            outages=[
                NodeOutage(0, crash_s=1.0, recover_s=3.0),
                NodeOutage(1, crash_s=3.0),
            ]
        )
        sched = FaultSchedule.compile(faults, n_nodes=2, seed=1, horizon=10.0)
        assert [(e.time, e.action, e.node) for e in sched.events] == [
            (1.0, "crash", 0),
            (3.0, "recover", 0),
            (3.0, "crash", 1),
        ]

    def test_compile_rejects_outage_for_missing_node(self):
        faults = FaultConfig(outages=[NodeOutage(5, crash_s=1.0)])
        with pytest.raises(ConfigurationError):
            FaultSchedule.compile(faults, n_nodes=5, seed=1, horizon=10.0)

    def test_events_clipped_to_horizon(self):
        sched = FaultSchedule.compile(CHURN, n_nodes=20, seed=7, horizon=4.0)
        assert all(e.time < 4.0 for e in sched.events)

    def test_schedule_identical_across_scenario_backends(self):
        """The compiled stream never reads simulation state: every MAC /
        mobility backend combination arms the same fault timeline."""
        signatures = set()
        for mac in ("scalar", "batched"):
            for mobility in ("scalar", "batched"):
                scenario = build_scenario(
                    ScenarioConfig(
                        protocol="aodv",
                        n_nodes=15,
                        duration_s=5.0,
                        seed=3,
                        faults=CHURN,
                        mac_backend=mac,
                        mobility_backend=mobility,
                    )
                )
                signatures.add(scenario.fault_injector.schedule.signature())
        assert len(signatures) == 1


class TestNetworkFailRecover:
    def test_down_node_leaves_topology_and_dispatch(self, sim, streams):
        network, _ = build_static_network(
            sim, streams, [(0, 0), (100, 0), (200, 0)]
        )
        assert network.is_alive(1)
        assert 1 in network.neighbors(0, 0.0)

        assert network.fail_node(1) is True
        assert not network.is_alive(1)
        assert 1 not in network.neighbors(0, 0.0)
        assert not network.node(1).mac.enabled
        # Repeated failure is a no-op (reason bookkeeping only).
        assert network.fail_node(1) is False

        assert network.recover_node(1) is True
        assert network.is_alive(1)
        assert 1 in network.neighbors(0, 0.0)
        assert network.node(1).mac.enabled

    def test_overlapping_reasons_compose(self, sim, streams):
        """A node down for two reasons only recovers when the *last*
        reason clears — e.g. a churn crash inside a blackout window."""
        network, _ = build_static_network(sim, streams, [(0, 0), (100, 0)])
        assert network.fail_node(1, reason="churn") is True
        assert network.fail_node(1, reason=("blackout", 0)) is False
        # Clearing one of two reasons does not revive the node.
        assert network.recover_node(1, reason="churn") is False
        assert not network.is_alive(1)
        assert network.recover_node(1, reason=("blackout", 0)) is True
        assert network.is_alive(1)

    def test_energy_death_is_permanent_under_churn_recovery(self, sim, streams):
        network, _ = build_static_network(sim, streams, [(0, 0), (100, 0)])
        network.fail_node(1, reason="energy")
        network.fail_node(1, reason="churn")
        network.recover_node(1, reason="churn")
        assert not network.is_alive(1)  # "energy" still in the reason set


def _fault_events(config: ScenarioConfig) -> dict:
    report = build_scenario(config).run()
    return {k: v for k, v in report.events.items() if k.startswith("fault_")}


class TestEndToEndInjection:
    def test_scripted_outage_emits_crash_and_recover(self):
        config = ScenarioConfig(
            protocol="aodv",
            n_nodes=10,
            duration_s=4.0,
            seed=2,
            faults=FaultConfig(outages=[NodeOutage(3, crash_s=1.0, recover_s=2.5)]),
        )
        events = _fault_events(config)
        assert events["fault_node_crash"] == 1
        assert events["fault_node_recover"] == 1

    def test_blackout_takes_down_disc_membership(self):
        # A disc big enough to swallow the whole field: every node goes
        # dark at 1 s and exactly that set comes back at 2 s.
        config = ScenarioConfig(
            protocol="aodv",
            n_nodes=10,
            duration_s=4.0,
            seed=2,
            faults=FaultConfig(
                blackouts=[BlackoutConfig(1.0, 1.0, 500.0, 500.0, 5000.0)]
            ),
        )
        events = _fault_events(config)
        assert events["fault_blackout_start"] == 1
        assert events["fault_blackout_end"] == 1
        assert events["fault_blackout_node_down"] == 10

    def test_energy_depletion_kills_nodes(self):
        config = ScenarioConfig(
            protocol="aodv",
            n_nodes=10,
            duration_s=5.0,
            seed=2,
            faults=FaultConfig(
                energy=EnergyFaultConfig(budget_j=1e-4, check_interval_s=0.5)
            ),
        )
        events = _fault_events(config)
        assert events.get("fault_energy_death", 0) > 0

    def test_churn_run_is_reproducible(self):
        config = ScenarioConfig(
            protocol="rica", n_nodes=15, duration_s=4.0, seed=11, faults=CHURN
        )
        reports = [
            json.dumps(dataclasses.asdict(build_scenario(config).run()), sort_keys=True)
            for _ in range(2)
        ]
        assert reports[0] == reports[1]
        assert json.loads(reports[0])["events"].get("fault_node_crash", 0) > 0

    def test_default_config_arms_no_injector(self):
        scenario = build_scenario(
            ScenarioConfig(protocol="aodv", n_nodes=10, duration_s=2.0, seed=1)
        )
        assert scenario.fault_injector is None

    def test_churn_campaign_serial_vs_pool_byte_identical(self, tmp_path):
        """The acceptance bar under faults: a churn-enabled campaign run
        with jobs=3 writes byte-identical JSON to the serial run."""
        spec = CampaignSpec(
            name="churn-determinism",
            base=ScenarioConfig(
                duration_s=2.0, n_nodes=10, n_flows=2, seed=5, faults=CHURN
            ),
            protocols=["aodv", "rica"],
            mean_speeds_kmh=[36.0],
            rates_pps=[10.0],
            trials=1,
        )
        serial_path, pool_path = tmp_path / "serial.json", tmp_path / "pool.json"
        save_results(run_campaign(spec), str(serial_path))
        save_results(run_campaign(spec, jobs=3), str(pool_path))
        assert serial_path.read_bytes() == pool_path.read_bytes()
