"""Detailed CSMA/CA behaviour tests: backoff, staleness, serialization."""

import pytest

from repro.errors import ConfigurationError
from repro.mac.csma import MacConfig
from repro.routing.packets import Beacon

from tests.helpers import build_static_network


class TestMacConfigValidation:
    """Every invalid MacConfig field is rejected at construction."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bit_rate_bps": 0.0},
            {"bit_rate_bps": -250_000.0},
            {"queue_capacity": 0},
            {"initial_defer_max_s": -0.001},
            {"backoff_min_s": 0.0},
            {"backoff_min_s": 0.05, "backoff_max_s": 0.01},
            {"max_attempts": 0},
            {"cs_range_factor": 0.0},
            {"queue_residence_s": 0.0},
            {"slot_align_s": -0.001},
        ],
        ids=lambda kw: "-".join(f"{k}={v}" for k, v in kw.items()),
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            MacConfig(**kwargs)

    def test_defaults_and_boundary_values_accepted(self):
        MacConfig()  # paper defaults
        MacConfig(backoff_min_s=0.01, backoff_max_s=0.01)  # min == max is legal
        MacConfig(max_attempts=1)
        MacConfig(queue_residence_s=None)  # None disables staleness
        MacConfig(slot_align_s=0.0)


class TestBackoff:
    def test_sender_defers_while_peer_transmits(self, sim, streams):
        """Two co-located senders: their transmissions never overlap."""
        network, metrics = build_static_network(sim, streams, [(0, 0), (50, 0), (100, 0)])
        for _ in range(10):
            network.node(0).mac.send(Beacon(sim.now, origin=0))
            network.node(1).mac.send(Beacon(sim.now, origin=1))
        sim.run(until=2.0)
        # With carrier sensing at 50 m separation, collisions at node 2
        # require near-simultaneous starts, which initial defer makes rare;
        # most of the 20 transmissions must be received cleanly.
        assert metrics.events.get("mac_collision", 0) < 10
        assert metrics.control_tx_count["beacon"] == 20

    def test_backoff_exhaustion_drops(self, sim, streams):
        """A saturated channel forces backoff drops eventually."""
        config = MacConfig(max_attempts=2, backoff_max_s=0.004, queue_capacity=100)
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (30, 0), (60, 0)], mac_config=config
        )
        # Three chattering stations in one collision domain.
        for _ in range(60):
            for nid in range(3):
                network.node(nid).mac.send(Beacon(sim.now, origin=nid))
        sim.run(until=5.0)
        assert metrics.events.get("mac_backoff_drop", 0) > 0

    def test_exhaustion_drops_packet_and_pumps_next(self, sim, streams):
        """The max_attempts path: drop counted, event recorded, queue pumped.

        A foreign transmission occupies the channel for 0.5 s, so every
        attempt senses busy and each queued packet burns through its two
        allowed attempts and is dropped — the second packet's drop proves
        the queue re-pumped after the first.  Once the channel clears, a
        fresh packet must go out normally.
        """
        config = MacConfig(max_attempts=2, queue_capacity=10)
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (30, 0)], mac_config=config
        )
        mac = network.node(0).mac
        # Park a long transmission on the air at node 1 (30 m away, well
        # inside carrier-sense range): the channel is busy until t=0.5.
        blocker = Beacon(0.0, origin=1)
        network.medium.begin(1, 0.0, 0.5, blocker)
        mac.send(Beacon(sim.now, origin=0))
        mac.send(Beacon(sim.now, origin=0))
        sim.run(until=0.4)
        assert mac.dropped == 2
        assert metrics.events.get("mac_backoff_drop", 0) == 2
        assert mac.sent == 0
        assert mac.queue_length == 0
        # Channel clear again: the send cycle must still work.
        sim.run(until=1.0)
        mac.send(Beacon(sim.now, origin=0))
        sim.run(until=2.0)
        assert mac.sent == 1
        assert metrics.control_tx_count["beacon"] == 1

    def test_phantom_attempt_counted_when_queue_drains(self, sim, streams):
        """An attempt whose packet went stale in the queue is a counted
        no-op (``mac_phantom_attempt``), not a silent return, and it ends
        the send cycle so the MAC is not wedged for the next packet."""
        config = MacConfig(queue_residence_s=0.001, initial_defer_max_s=0.01)
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (100, 0)], mac_config=config
        )
        mac = network.node(0).mac
        # This seed's first two defer draws (3.0 ms, 8.6 ms) outlive the
        # 1 ms residence limit — both packets expire before their attempt
        # fires; the third draw (0.31 ms) beats it and transmits.
        mac.send(Beacon(sim.now, origin=0))
        sim.run(until=0.5)
        assert metrics.events.get("mac_phantom_attempt", 0) == 1
        assert mac.sent == 0
        assert mac.queue_length == 0
        # The cycle ended cleanly each time: the MAC is never wedged.
        mac.send(Beacon(sim.now, origin=0))
        sim.run(until=1.0)
        assert metrics.events.get("mac_phantom_attempt", 0) == 2
        mac.send(Beacon(sim.now, origin=0))
        sim.run(until=1.5)
        assert mac.sent == 1
        assert metrics.control_tx_count["beacon"] == 1

    def test_stale_control_packets_expire_in_queue(self, sim, streams):
        """Packets older than queue_residence_s die without transmission."""
        config = MacConfig(queue_residence_s=0.05, queue_capacity=100)
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (100, 0)], mac_config=config
        )
        mac = network.node(0).mac
        for _ in range(100):
            mac.send(Beacon(sim.now, origin=0))
        sim.run(until=5.0)
        # 100 beacons at ~1.6 ms airtime each need ~160 ms more than the
        # 50 ms staleness limit allows: a chunk must have expired unsent.
        assert metrics.control_tx_count["beacon"] < 100

    def test_sent_counter(self, sim, streams):
        network, _ = build_static_network(sim, streams, [(0, 0), (100, 0)])
        mac = network.node(0).mac
        for _ in range(5):
            mac.send(Beacon(sim.now, origin=0))
        sim.run(until=1.0)
        assert mac.sent == 5
        assert mac.queue_length == 0


class TestLinkStateCache:
    def test_next_hop_cache_invalidated_by_lsa(self, sim, streams):
        import math

        from repro.routing.packets import LinkStateAd
        from tests.helpers import attach_protocols

        network, metrics = build_static_network(
            sim, streams, [(0, 0), (150, 0), (300, 0)]
        )
        protos = attach_protocols(network, metrics, "link_state")
        assert protos[0]._next_hop(2) == 1  # populates the cache
        # Fresh LSA: node 1 lost its link to 2.
        lsa = LinkStateAd(sim.now, origin=1, seq=999, entries=[(2, math.inf)])
        protos[0].on_lsa(lsa, from_id=1)
        assert protos[0]._next_hop(2) is None  # recomputed, now unreachable
