"""Detailed CSMA/CA behaviour tests: backoff, staleness, serialization."""

import pytest

from repro.mac.csma import MacConfig
from repro.routing.packets import Beacon

from tests.helpers import build_static_network


class TestBackoff:
    def test_sender_defers_while_peer_transmits(self, sim, streams):
        """Two co-located senders: their transmissions never overlap."""
        network, metrics = build_static_network(sim, streams, [(0, 0), (50, 0), (100, 0)])
        for _ in range(10):
            network.node(0).mac.send(Beacon(sim.now, origin=0))
            network.node(1).mac.send(Beacon(sim.now, origin=1))
        sim.run(until=2.0)
        # With carrier sensing at 50 m separation, collisions at node 2
        # require near-simultaneous starts, which initial defer makes rare;
        # most of the 20 transmissions must be received cleanly.
        assert metrics.events.get("mac_collision", 0) < 10
        assert metrics.control_tx_count["beacon"] == 20

    def test_backoff_exhaustion_drops(self, sim, streams):
        """A saturated channel forces backoff drops eventually."""
        config = MacConfig(max_attempts=2, backoff_max_s=0.004, queue_capacity=100)
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (30, 0), (60, 0)], mac_config=config
        )
        # Three chattering stations in one collision domain.
        for _ in range(60):
            for nid in range(3):
                network.node(nid).mac.send(Beacon(sim.now, origin=nid))
        sim.run(until=5.0)
        assert metrics.events.get("mac_backoff_drop", 0) > 0

    def test_stale_control_packets_expire_in_queue(self, sim, streams):
        """Packets older than queue_residence_s die without transmission."""
        config = MacConfig(queue_residence_s=0.05, queue_capacity=100)
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (100, 0)], mac_config=config
        )
        mac = network.node(0).mac
        for _ in range(100):
            mac.send(Beacon(sim.now, origin=0))
        sim.run(until=5.0)
        # 100 beacons at ~1.6 ms airtime each need ~160 ms more than the
        # 50 ms staleness limit allows: a chunk must have expired unsent.
        assert metrics.control_tx_count["beacon"] < 100

    def test_sent_counter(self, sim, streams):
        network, _ = build_static_network(sim, streams, [(0, 0), (100, 0)])
        mac = network.node(0).mac
        for _ in range(5):
            mac.send(Beacon(sim.now, origin=0))
        sim.run(until=1.0)
        assert mac.sent == 5
        assert mac.queue_length == 0


class TestLinkStateCache:
    def test_next_hop_cache_invalidated_by_lsa(self, sim, streams):
        import math

        from repro.routing.packets import LinkStateAd
        from tests.helpers import attach_protocols

        network, metrics = build_static_network(
            sim, streams, [(0, 0), (150, 0), (300, 0)]
        )
        protos = attach_protocols(network, metrics, "link_state")
        assert protos[0]._next_hop(2) == 1  # populates the cache
        # Fresh LSA: node 1 lost its link to 2.
        lsa = LinkStateAd(sim.now, origin=1, seq=999, entries=[(2, math.inf)])
        protos[0].on_lsa(lsa, from_id=1)
        assert protos[0]._next_hop(2) is None  # recomputed, now unreachable
