"""Tests for scenario building, sweeps and figure presets."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.figures import figure_spec, list_figures, run_figure
from repro.experiments.scenario import ScenarioConfig, build_scenario, run_scenario
from repro.experiments.sweep import run_speed_sweep, run_trials
from repro.routing.registry import available_protocols

TINY = dict(n_nodes=12, n_flows=3, duration_s=4.0, field_size_m=500.0)


class TestScenarioConfig:
    def test_paper_defaults(self):
        cfg = ScenarioConfig()
        assert cfg.n_nodes == 50
        assert cfg.field_size_m == 1000.0
        assert cfg.n_flows == 10
        assert cfg.packet_bytes == 512
        assert cfg.duration_s == 500.0
        assert cfg.pause_s == 3.0

    def test_max_speed_is_twice_mean(self):
        cfg = ScenarioConfig(mean_speed_kmh=36.0)
        assert cfg.max_speed_ms == pytest.approx(20.0)  # 72 km/h

    def test_with_copies(self):
        cfg = ScenarioConfig()
        other = cfg.with_(protocol="aodv", seed=9)
        assert other.protocol == "aodv" and other.seed == 9
        assert cfg.protocol == "rica"  # original untouched

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(n_nodes=1)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(mean_speed_kmh=-1)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(duration_s=0)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(protocol="nope")
        with pytest.raises(ConfigurationError):
            ScenarioConfig(rreq_aggregation_s=-0.01)

    def test_rreq_aggregation_forwarded_to_protocols(self):
        scenario = build_scenario(
            ScenarioConfig(protocol="aodv", rreq_aggregation_s=0.03, **TINY)
        )
        assert scenario.protocols[0].config.rreq_aggregation_s == 0.03

    def test_rreq_aggregation_default_off(self):
        scenario = build_scenario(ScenarioConfig(protocol="aodv", **TINY))
        assert scenario.protocols[0].config.rreq_aggregation_s == 0.0

    def test_rreq_aggregation_conflicts_with_explicit_protocol_config(self):
        from repro.routing.base import ProtocolConfig

        with pytest.raises(ConfigurationError):
            ScenarioConfig(
                protocol="aodv",
                rreq_aggregation_s=0.03,
                protocol_config=ProtocolConfig(),
                **TINY,
            )

    def test_explicit_protocol_config_keeps_its_aggregation(self):
        from repro.routing.base import ProtocolConfig

        supplied = ProtocolConfig(rreq_aggregation_s=0.07)
        scenario = build_scenario(
            ScenarioConfig(protocol="aodv", protocol_config=supplied, **TINY)
        )
        assert scenario.protocols[0].config.rreq_aggregation_s == 0.07


class TestBuildScenario:
    def test_wiring(self):
        scenario = build_scenario(ScenarioConfig(protocol="rica", **TINY))
        assert scenario.network.node_count == 12
        assert len(scenario.protocols) == 12
        assert len(scenario.sources) == 3
        for node in scenario.network.nodes():
            assert node.routing is not None
            assert node.routing.name == "rica"

    def test_flow_rates_plumbed_to_protocols(self):
        scenario = build_scenario(ScenarioConfig(protocol="bgca", **TINY))
        proto = scenario.protocols[0]
        for flow in scenario.flows:
            assert proto.config.flow_rates_bps[(flow.src, flow.dst)] == flow.rate_bps

    @pytest.mark.parametrize("protocol", available_protocols())
    def test_smoke_every_protocol(self, protocol):
        report = run_scenario(ScenarioConfig(protocol=protocol, seed=5, **TINY))
        assert report.generated > 0
        # Conservation: nothing delivered or dropped beyond what was made.
        assert report.delivered + report.total_drops <= report.generated

    def test_determinism_same_seed(self):
        a = run_scenario(ScenarioConfig(protocol="aodv", seed=11, **TINY))
        b = run_scenario(ScenarioConfig(protocol="aodv", seed=11, **TINY))
        assert a.generated == b.generated
        assert a.delivered == b.delivered
        assert a.avg_delay_ms == b.avg_delay_ms
        assert a.control_tx_count == b.control_tx_count

    def test_different_seeds_differ(self):
        a = run_scenario(ScenarioConfig(protocol="aodv", seed=11, **TINY))
        b = run_scenario(ScenarioConfig(protocol="aodv", seed=12, **TINY))
        assert (a.generated, a.delivered, a.avg_delay_ms) != (
            b.generated,
            b.delivered,
            b.avg_delay_ms,
        )


class TestSweeps:
    def test_run_trials_aggregates(self):
        agg = run_trials(ScenarioConfig(protocol="aodv", **TINY), trials=2)
        assert agg.trials == 2
        assert agg.generated > 0

    def test_speed_sweep_shape(self):
        base = ScenarioConfig(**TINY)
        results = run_speed_sweep(base, ["aodv", "rica"], [0.0, 36.0], trials=1)
        assert set(results) == {"aodv", "rica"}
        assert len(results["aodv"]) == 2


class TestFigures:
    def test_all_panels_registered(self):
        assert list_figures() == [
            "fig2a",
            "fig2b",
            "fig3a",
            "fig3b",
            "fig4a",
            "fig4b",
            "fig5a",
            "fig5b",
            "fig6a",
            "fig6b",
        ]

    def test_specs_cover_paper_loads(self):
        assert figure_spec("fig2a").rate_pps == 10.0
        assert figure_spec("fig2b").rate_pps == 20.0
        assert figure_spec("fig6b").rate_pps == 60.0

    def test_unknown_figure_rejected(self):
        with pytest.raises(ConfigurationError):
            figure_spec("fig99")

    def test_run_figure_sweep_tiny(self):
        result = run_figure(
            "fig3a",
            duration_s=4.0,
            trials=1,
            protocols=["aodv"],
            speeds_kmh=[0.0, 36.0],
            n_nodes=12,
        )
        rows = result.metric_rows()
        assert len(rows) == 2  # one per speed
        assert rows[0][0] == 0.0
        table = result.format_table()
        assert "fig3a" in table and "aodv" in table

    def test_run_figure_bar_tiny(self):
        result = run_figure(
            "fig5b", duration_s=4.0, trials=1, protocols=["aodv"], n_nodes=12
        )
        rows = result.metric_rows()
        assert rows[0][0] == "aodv"
        assert isinstance(rows[0][1], float)

    def test_run_figure_timeseries_tiny(self):
        result = run_figure(
            "fig6a", duration_s=8.0, trials=1, protocols=["aodv"], n_nodes=12
        )
        series = result.series("aodv")
        assert len(series) == 2  # 8 s / 4 s bins
        assert "kbps" in result.format_table()

    def test_value_accessor(self):
        result = run_figure(
            "fig3a",
            duration_s=4.0,
            trials=1,
            protocols=["aodv"],
            speeds_kmh=[0.0, 36.0],
            n_nodes=12,
        )
        assert result.value("aodv", 0.0) == result.metric_rows()[0][1]


class TestCampaign:
    def _spec(self):
        from repro.experiments.campaign import CampaignSpec

        return CampaignSpec(
            name="tiny",
            base=ScenarioConfig(
                n_nodes=12, n_flows=3, duration_s=4.0, field_size_m=500.0, seed=3
            ),
            protocols=["aodv", "rica"],
            mean_speeds_kmh=[0.0, 36.0],
            rates_pps=[10.0],
            trials=1,
        )

    def test_grid_execution(self):
        from repro.experiments.campaign import run_campaign

        result = run_campaign(self._spec())
        assert len(result.cells) == 4
        agg = result.get("aodv", 0.0, 10.0)
        assert agg.generated > 0

    def test_series_extraction(self):
        from repro.experiments.campaign import run_campaign

        result = run_campaign(self._spec())
        series = result.series("rica", 10.0, [0.0, 36.0], "delivery_pct")
        assert len(series) == 2

    def test_save_and_load_roundtrip(self, tmp_path):
        from repro.experiments.campaign import (
            load_results,
            run_campaign,
            save_results,
        )

        result = run_campaign(self._spec())
        path = str(tmp_path / "campaign.json")
        save_results(result, path)
        loaded = load_results(path)
        assert loaded.name == result.name
        for key in result.cells:
            assert loaded.cells[key].delivery_pct == result.cells[key].delivery_pct

    def test_progress_callback(self):
        from repro.experiments.campaign import run_campaign

        seen = []
        run_campaign(self._spec(), progress=seen.append)
        assert len(seen) == 4

    def test_invalid_specs_rejected(self):
        from repro.experiments.campaign import CampaignSpec

        with pytest.raises(ConfigurationError):
            CampaignSpec("x", ScenarioConfig(), [], [0.0], [10.0])
        with pytest.raises(ConfigurationError):
            CampaignSpec("x", ScenarioConfig(), ["aodv"], [], [10.0])
        with pytest.raises(ConfigurationError):
            CampaignSpec("x", ScenarioConfig(), ["aodv"], [0.0], [10.0], trials=0)
