"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

from tests.helpers import build_static_network, make_deterministic_channel_config


@pytest.fixture
def sim():
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def streams():
    """Deterministic random streams."""
    return RandomStreams(seed=1234)


@pytest.fixture
def det_channel_config():
    """Deterministic (fading-free) channel configuration."""
    return make_deterministic_channel_config()


@pytest.fixture
def line_network(sim, streams):
    """Five static nodes in a line, 150 m apart (class B links between
    neighbours, ~300 m two-hop distances are out of range)."""
    positions = [(i * 150.0, 0.0) for i in range(5)]
    return build_static_network(sim, streams, positions)
