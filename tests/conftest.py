"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

from tests.helpers import build_static_network, make_deterministic_channel_config


def pytest_addoption(parser):
    parser.addoption(
        "--mac-backend",
        default="scalar",
        choices=("scalar", "batched"),
        help="MAC attempt-scheduler backend for scenario-level tests that "
        "honour it (the determinism pipeline); CI runs the tier-1 "
        "differential leg with 'batched'.",
    )
    parser.addoption(
        "--mobility-backend",
        default="scalar",
        choices=("scalar", "batched"),
        help="mobility backend for scenario-level tests that honour it "
        "(the determinism pipeline); CI runs an extra differential leg "
        "with 'batched'.",
    )


@pytest.fixture(scope="session")
def mac_backend(request):
    """The --mac-backend option (scenario-level backend differentials)."""
    return request.config.getoption("--mac-backend")


@pytest.fixture(scope="session")
def mobility_backend(request):
    """The --mobility-backend option (scenario-level backend differentials)."""
    return request.config.getoption("--mobility-backend")


@pytest.fixture
def sim():
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def streams():
    """Deterministic random streams."""
    return RandomStreams(seed=1234)


@pytest.fixture
def det_channel_config():
    """Deterministic (fading-free) channel configuration."""
    return make_deterministic_channel_config()


@pytest.fixture
def line_network(sim, streams):
    """Five static nodes in a line, 150 m apart (class B links between
    neighbours, ~300 m two-hop distances are out of range)."""
    positions = [(i * 150.0, 0.0) for i in range(5)]
    return build_static_network(sim, streams, positions)
