"""Unit tests for routing tables, flood caches and pending buffers."""

import pytest

from repro.metrics.collector import DropReason, MetricsCollector
from repro.net.packet import DataPacket
from repro.routing.flood import FloodCache
from repro.routing.pending import PendingBuffers
from repro.routing.table import RouteEntry, RoutingTable


class TestRoutingTable:
    def test_set_and_get(self):
        table = RoutingTable()
        table.set_route(5, next_hop=2, now=1.0, hops=3, csi_distance=4.5)
        entry = table.get_valid(5, now=1.5)
        assert entry is not None
        assert entry.next_hop == 2
        assert entry.hops == 3
        assert entry.csi_distance == 4.5

    def test_missing_destination(self):
        assert RoutingTable().get_valid(1, now=0.0) is None

    def test_invalidate(self):
        table = RoutingTable()
        table.set_route(5, next_hop=2, now=0.0)
        assert table.invalidate(5)
        assert table.get_valid(5, now=0.0) is None
        assert not table.invalidate(5)  # already invalid

    def test_invalidate_via_returns_affected(self):
        table = RoutingTable()
        table.set_route(5, next_hop=2, now=0.0)
        table.set_route(6, next_hop=2, now=0.0)
        table.set_route(7, next_hop=3, now=0.0)
        affected = table.invalidate_via(2)
        assert sorted(affected) == [5, 6]
        assert table.get_valid(7, now=0.0) is not None

    def test_idle_expiry(self):
        table = RoutingTable()
        table.set_route(5, next_hop=2, now=0.0)
        assert table.get_valid(5, now=0.9, max_idle=1.0) is not None
        assert table.get_valid(5, now=1.1, max_idle=1.0) is None  # expired
        # Expiry is sticky: the entry was invalidated.
        assert table.get_valid(5, now=0.95, max_idle=1.0) is None

    def test_touch_extends_idle_lifetime(self):
        table = RoutingTable()
        entry = table.set_route(5, next_hop=2, now=0.0)
        entry.touch(0.9)
        assert table.get_valid(5, now=1.5, max_idle=1.0) is not None

    def test_replace_route(self):
        table = RoutingTable()
        table.set_route(5, next_hop=2, now=0.0)
        table.set_route(5, next_hop=3, now=1.0)
        assert table.get_valid(5, now=1.0).next_hop == 3

    def test_valid_destinations(self):
        table = RoutingTable()
        table.set_route(5, next_hop=2, now=0.0)
        table.set_route(6, next_hop=3, now=0.0)
        table.invalidate(6)
        assert table.valid_destinations(now=0.0) == [5]

    def test_len_and_contains(self):
        table = RoutingTable()
        table.set_route(5, next_hop=2, now=0.0)
        assert len(table) == 1 and 5 in table and 6 not in table


class TestFloodCache:
    def test_first_is_new(self):
        cache = FloodCache()
        assert cache.check_and_add(("rreq", 1, 2, 1))
        assert not cache.check_and_add(("rreq", 1, 2, 1))

    def test_different_keys_independent(self):
        cache = FloodCache()
        assert cache.check_and_add(("a", 1))
        assert cache.check_and_add(("a", 2))

    def test_bounded_size(self):
        cache = FloodCache(max_entries=64)
        for i in range(1000):
            cache.check_and_add(("k", i))
        assert len(cache) <= 64

    def test_pruning_drops_oldest(self):
        cache = FloodCache(max_entries=64)
        for i in range(100):
            cache.check_and_add(("k", i))
        # The newest keys must still be remembered.
        assert ("k", 99) in cache
        # Some of the oldest were forgotten (would be accepted again).
        assert cache.check_and_add(("k", 0))

    def test_clear(self):
        cache = FloodCache()
        cache.check_and_add(("x",))
        cache.clear()
        assert cache.check_and_add(("x",))


class TestPendingBuffers:
    def _pkt(self, dst, created=0.0):
        return DataPacket(src=0, dst=dst, seq=1, created_at=created)

    def test_hold_and_release_fifo(self):
        metrics = MetricsCollector(10.0)
        pending = PendingBuffers(metrics)
        pkts = [self._pkt(5) for _ in range(3)]
        for p in pkts:
            pending.hold(p, now=0.0)
        released = pending.release(5, now=1.0)
        assert [p.uid for p in released] == [p.uid for p in pkts]
        assert pending.release(5, now=1.0) == []

    def test_capacity_overflow_recorded(self):
        metrics = MetricsCollector(10.0)
        pending = PendingBuffers(metrics, capacity=2)
        for _ in range(4):
            pending.hold(self._pkt(5), now=0.0)
        assert metrics.drops[DropReason.PENDING_OVERFLOW] == 2

    def test_residence_timeout_recorded(self):
        metrics = MetricsCollector(10.0)
        pending = PendingBuffers(metrics, max_residence_s=3.0)
        pending.hold(self._pkt(5), now=0.0)
        assert pending.release(5, now=4.0) == []
        assert metrics.drops[DropReason.PENDING_TIMEOUT] == 1

    def test_drop_all(self):
        metrics = MetricsCollector(10.0)
        pending = PendingBuffers(metrics)
        pending.hold(self._pkt(5), now=0.0)
        pending.hold(self._pkt(5), now=0.0)
        assert pending.drop_all(5, DropReason.NO_ROUTE) == 2
        assert metrics.drops[DropReason.NO_ROUTE] == 2

    def test_destinations_isolated(self):
        metrics = MetricsCollector(10.0)
        pending = PendingBuffers(metrics)
        pending.hold(self._pkt(5), now=0.0)
        pending.hold(self._pkt(6), now=0.0)
        assert len(pending.release(5, now=0.1)) == 1
        assert pending.pending_count(6) == 1

    def test_hold_for_explicit_key(self):
        metrics = MetricsCollector(10.0)
        pending = PendingBuffers(metrics)
        pending.hold_for(9, self._pkt(5), now=0.0)
        assert pending.pending_count(9) == 1
        assert pending.pending_count(5) == 0
