"""Unit tests for vectors and the simulation field."""

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.geometry.field import Field
from repro.geometry.vector import Vec2, distance


class TestVec2:
    def test_add_sub(self):
        assert Vec2(1, 2) + Vec2(3, 4) == Vec2(4, 6)
        assert Vec2(3, 4) - Vec2(1, 2) == Vec2(2, 2)

    def test_scaled(self):
        assert Vec2(1.5, -2.0).scaled(2) == Vec2(3.0, -4.0)

    def test_norm(self):
        assert Vec2(3, 4).norm() == 5.0

    def test_distance_to(self):
        assert Vec2(0, 0).distance_to(Vec2(3, 4)) == 5.0
        assert distance(Vec2(1, 1), Vec2(1, 1)) == 0.0

    def test_lerp_endpoints_and_midpoint(self):
        a, b = Vec2(0, 0), Vec2(10, 20)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Vec2(5, 10)

    def test_unit_vector(self):
        u = Vec2(3, 4).unit()
        assert math.isclose(u.norm(), 1.0)
        assert Vec2(0, 0).unit() == Vec2(0, 0)

    def test_iterable_unpacking(self):
        x, y = Vec2(7, 8)
        assert (x, y) == (7, 8)


class TestField:
    def test_contains_and_clamp(self):
        f = Field(100, 50)
        assert f.contains(Vec2(50, 25))
        assert not f.contains(Vec2(101, 25))
        assert f.clamp(Vec2(150, -10)) == Vec2(100, 0)

    def test_random_points_inside(self):
        f = Field(1000, 1000)
        rng = random.Random(1)
        for _ in range(200):
            assert f.contains(f.random_point(rng))

    def test_random_points_deterministic(self):
        f = Field(1000, 1000)
        a = [f.random_point(random.Random(5)) for _ in range(1)]
        b = [f.random_point(random.Random(5)) for _ in range(1)]
        assert a == b

    def test_area_and_diagonal(self):
        f = Field(30, 40)
        assert f.area == 1200
        assert f.diagonal == 50

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            Field(0, 10)
        with pytest.raises(ConfigurationError):
            Field(10, -1)

    def test_as_tuple(self):
        assert Field(10, 20).as_tuple() == (10.0, 20.0)
