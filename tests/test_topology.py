"""Differential and property tests for the spatial topology index.

The load-bearing guarantee: grid-backed ``neighbors()`` answers *exactly*
match the seed's brute-force O(n²) scan — across random fields, radii
(including 0 and beyond the field diagonal), boundary-sitting nodes and
moving trajectories.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, TopologyError
from repro.geometry.field import Field
from repro.geometry.grid import UniformGrid, bulk_distances
from repro.geometry.vector import Vec2
from repro.mobility.waypoint import RandomWaypoint
from repro.sim.rng import RandomStreams
from repro.topology import TopologyIndex

from tests.helpers import build_static_network


def brute_force_neighbors(positions, node_id, radius):
    """The seed implementation: scan every node, ascending ids."""
    origin = positions[node_id]
    return sorted(
        nid
        for nid, p in positions.items()
        if nid != node_id and origin.distance_to(p) <= radius
    )


def make_index(field, positions, radius, **kwargs):
    index = TopologyIndex(field, radius=radius, **kwargs)
    for nid, p in positions.items():
        index.add(nid, (lambda point: lambda t: point)(p))
    return index


class TestGrid:
    def test_cell_of_clamps_and_covers_field(self):
        grid = UniformGrid(1000.0, 1000.0, 250.0)
        assert grid.cols == 4 and grid.rows == 4
        assert grid.cell_of(Vec2(0.0, 0.0)) == (0, 0)
        # Points on the far edge land in the last cell, not out of bounds.
        assert grid.cell_of(Vec2(1000.0, 1000.0)) == (3, 3)
        assert grid.cell_of(Vec2(-50.0, 2000.0)) == (0, 3)

    def test_cells_near_covers_radius(self):
        grid = UniformGrid(1000.0, 1000.0, 250.0)
        cells = set(grid.cells_near(Vec2(500.0, 500.0), 250.0))
        assert (1, 1) in cells and (3, 3) in cells
        everything = set(grid.cells_near(Vec2(500.0, 500.0), 5000.0))
        assert len(everything) == grid.cell_count

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformGrid(0.0, 100.0, 10.0)
        with pytest.raises(ConfigurationError):
            UniformGrid(100.0, 100.0, 0.0)

    def test_bulk_distances(self):
        pts = [Vec2(3.0, 4.0), Vec2(0.0, 0.0)]
        assert bulk_distances(Vec2(0.0, 0.0), pts) == [5.0, 0.0]


class TestDifferential:
    """Grid answers == brute-force answers, exactly."""

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 40),
        side=st.floats(50.0, 3000.0),
        radius_kind=st.sampled_from(["zero", "small", "tx", "diagonal", "beyond"]),
    )
    def test_static_random_fields(self, seed, n, side, radius_kind):
        rng = random.Random(seed)
        field = Field(side, side)
        positions = {i: field.random_point(rng) for i in range(n)}
        # Pin some nodes to corners/edges (boundary cells) when room allows.
        corners = [Vec2(0.0, 0.0), Vec2(side, side), Vec2(side, 0.0), Vec2(0.0, side)]
        for i, corner in enumerate(corners[: min(n, 4)]):
            positions[i] = corner
        radius = {
            "zero": 0.0,
            "small": side / 20.0,
            "tx": 250.0,
            "diagonal": field.diagonal,
            "beyond": 2.0 * field.diagonal,
        }[radius_kind]
        index = make_index(field, positions, radius)
        for nid in positions:
            assert index.neighbors(nid, 0.0) == brute_force_neighbors(
                positions, nid, radius
            )

    def test_coincident_nodes_and_zero_radius(self):
        field = Field(100.0, 100.0)
        positions = {0: Vec2(5.0, 5.0), 1: Vec2(5.0, 5.0), 2: Vec2(6.0, 5.0)}
        index = make_index(field, positions, radius=0.0)
        assert index.neighbors(0, 0.0) == [1]
        assert index.neighbors(2, 0.0) == []

    def test_nodes_on_cell_boundaries(self):
        field = Field(1000.0, 1000.0)
        # Multiples of the 250 m cell size, i.e. exactly on grid lines.
        positions = {
            i: Vec2(250.0 * (i % 5), 250.0 * (i // 5)) for i in range(25)
        }
        index = make_index(field, positions, radius=250.0)
        for nid in positions:
            assert index.neighbors(nid, 0.0) == brute_force_neighbors(
                positions, nid, 250.0
            )

    def test_moving_nodes_match_brute_force_over_time(self):
        streams = RandomStreams(99)
        field = Field(600.0, 600.0)
        models = {
            i: RandomWaypoint(
                field, streams.stream(f"mobility/{i}"), max_speed=20.0, pause_time=1.0
            )
            for i in range(25)
        }
        index = TopologyIndex(field, radius=200.0)
        for nid, model in models.items():
            index.add(nid, model.position)
        # Out-of-order query times exercise the snapshot LRU too.
        for t in (0.0, 5.0, 2.5, 40.0, 39.0, 41.0):
            positions = {nid: m.position(t) for nid, m in models.items()}
            for nid in models:
                assert index.neighbors(nid, t) == brute_force_neighbors(
                    positions, nid, 200.0
                )
        assert index.bucket_moves > 0  # incremental path was exercised


class TestEpochCaching:
    def test_quantum_zero_is_exact(self):
        field = Field(100.0, 100.0)
        index = TopologyIndex(field, radius=50.0)
        index.add(0, lambda t: Vec2(t, 0.0))
        assert index.position(0, 3.7) == Vec2(3.7, 0.0)

    def test_quantum_snaps_positions_down(self):
        field = Field(100.0, 100.0)
        index = TopologyIndex(field, radius=50.0, quantum=0.5)
        index.add(0, lambda t: Vec2(t, 0.0))
        assert index.snap(1.74) == 1.5
        assert index.position(0, 1.74) == Vec2(1.5, 0.0)
        assert index.position(0, 1.5) == index.position(0, 1.99)

    def test_point_queries_do_not_build_snapshots(self):
        field = Field(100.0, 100.0)
        index = TopologyIndex(field, radius=50.0)
        index.add(0, lambda t: Vec2(0.0, 0.0))
        index.add(1, lambda t: Vec2(10.0, 0.0))
        assert index.distance(0, 1, 1.0) == 10.0
        assert index.within(0, 1, 1.0, 10.0)
        assert not index.within(0, 0, 1.0, 10.0)
        assert index.snapshots_built == 0
        index.neighbors(0, 1.0)
        assert index.snapshots_built == 1
        # Repeat queries at the same instant reuse the snapshot.
        index.neighbors(1, 1.0)
        index.position(0, 1.0)
        assert index.snapshots_built == 1

    def test_snapshot_lru_bounded(self):
        field = Field(100.0, 100.0)
        index = TopologyIndex(field, radius=50.0, max_snapshots=2)
        index.add(0, lambda t: Vec2(0.0, 0.0))
        for t in range(10):
            index.neighbors(0, float(t))
        assert index.snapshots_built == 10
        assert len(index._snapshots) == 2

    def test_neighbor_map_matches_per_node_queries(self):
        rng = random.Random(4)
        field = Field(500.0, 500.0)
        positions = {i: field.random_point(rng) for i in range(30)}
        index = make_index(field, positions, radius=150.0)
        nmap = index.neighbor_map(0.0)
        assert sorted(nmap) == sorted(positions)
        for nid in positions:
            assert nmap[nid] == index.neighbors(nid, 0.0)

    def test_nodes_within_arbitrary_point(self):
        field = Field(100.0, 100.0)
        positions = {0: Vec2(10.0, 10.0), 1: Vec2(90.0, 90.0)}
        index = make_index(field, positions, radius=20.0)
        assert index.nodes_within(Vec2(12.0, 10.0), 0.0, 5.0) == [0]
        assert index.nodes_within(Vec2(50.0, 50.0), 0.0, 100.0) == [0, 1]


class TestMembership:
    def test_unknown_and_duplicate_ids(self):
        field = Field(100.0, 100.0)
        index = TopologyIndex(field, radius=10.0)
        index.add(0, lambda t: Vec2(0.0, 0.0))
        with pytest.raises(TopologyError):
            index.position(99, 0.0)
        with pytest.raises(TopologyError):
            index.neighbors(99, 0.0)
        with pytest.raises(TopologyError):
            index.add(0, lambda t: Vec2(1.0, 1.0))

    def test_remove_invalidates(self):
        field = Field(100.0, 100.0)
        positions = {0: Vec2(0.0, 0.0), 1: Vec2(5.0, 0.0)}
        index = make_index(field, positions, radius=10.0)
        assert index.neighbors(0, 0.0) == [1]
        index.remove(1)
        assert index.neighbors(0, 0.0) == []
        with pytest.raises(TopologyError):
            index.remove(1)

    def test_invalid_configs_rejected(self):
        field = Field(100.0, 100.0)
        with pytest.raises(ConfigurationError):
            TopologyIndex(field, radius=-1.0)
        with pytest.raises(ConfigurationError):
            TopologyIndex(field, radius=10.0, quantum=-0.1)
        with pytest.raises(ConfigurationError):
            TopologyIndex(field, radius=10.0, max_snapshots=0)


class TestNetworkFacade:
    """The Network keeps its old topology API, now index-backed."""

    def test_static_network_neighbors_match_brute_force(self, sim, streams):
        rng = random.Random(11)
        coords = [(rng.uniform(0, 1200), rng.uniform(0, 1200)) for _ in range(40)]
        network, _ = build_static_network(sim, streams, coords)
        positions = {n.id: n.position(0.0) for n in network.nodes()}
        for nid in network.node_ids:
            assert network.neighbors(nid, 0.0) == brute_force_neighbors(
                positions, nid, network.channel.tx_range
            )

    def test_adjacency_is_bulk_neighbor_map(self, sim, streams):
        network, _ = build_static_network(
            sim, streams, [(0, 0), (100, 0), (240, 0), (600, 0)]
        )
        assert network.adjacency(0.0) == network.neighbor_map(0.0)
        assert network.adjacency(0.0) == {
            nid: network.neighbors(nid, 0.0) for nid in network.node_ids
        }

    def test_network_exposes_topology_index(self, sim, streams):
        network, _ = build_static_network(sim, streams, [(0, 0), (100, 0)])
        assert isinstance(network.topology, TopologyIndex)
        assert network.topology.radius == network.channel.tx_range
        assert len(network.topology) == 2
