"""Behavioural tests for the link-state baseline."""

import math

import pytest

from repro.routing.link_state import LinkStateConfig
from repro.routing.packets import LinkStateAd

from tests.helpers import attach_protocols, build_static_network, send_app_packet


class TestInstalledView:
    def test_accurate_view_at_start(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (150, 0), (300, 0)]
        )
        protos = attach_protocols(network, metrics, "link_state")
        # Every node knows every link, including ones it cannot see itself.
        for proto in protos:
            assert set(proto.adj[0]) == {1}
            assert set(proto.adj[1]) == {0, 2}
            assert set(proto.adj[2]) == {1}

    def test_costs_are_csi_hop_distances(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (120, 0)])
        protos = attach_protocols(network, metrics, "link_state")
        # 120 m -> class B -> cost 5/3.
        assert protos[0].adj[0][1] == pytest.approx(5.0 / 3.0)

    def test_immediate_forwarding_without_discovery(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (150, 0), (300, 0)]
        )
        attach_protocols(network, metrics, "link_state")
        send_app_packet(network, metrics, 0, 2)
        sim.run(until=1.0)
        assert metrics.delivered == 1
        assert metrics.control_tx_count.get("rreq", 0) == 0  # proactive

    def test_dijkstra_prefers_high_throughput_path(self, sim, streams):
        """0->2 direct (190 m, class C, cost 10/3) loses to 0-3-2 with two
        class-A links (cost 2.0)."""
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (95, 25), (190, 0)]
        )
        protos = attach_protocols(network, metrics, "link_state")
        assert protos[0]._next_hop(2) == 1

    def test_unreachable_destination_drops(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (4000, 4000)])
        attach_protocols(network, metrics, "link_state")
        send_app_packet(network, metrics, 0, 1)
        sim.run(until=1.0)
        assert metrics.delivered == 0
        assert sum(metrics.drops.values()) == 1


class TestFlooding:
    def test_lsa_updates_remote_database(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (150, 0), (300, 0)]
        )
        protos = attach_protocols(network, metrics, "link_state")
        # Inject a fresher advertisement from node 0 withdrawing link 0-1.
        lsa = LinkStateAd(sim.now, origin=0, seq=999, entries=[(1, math.inf)])
        protos[1].on_lsa(lsa, from_id=0)
        assert 1 not in protos[1].adj[0]
        sim.run(until=1.0)  # relayed flood reaches node 2
        assert 1 not in protos[2].adj[0]

    def test_stale_lsa_ignored(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (150, 0)])
        protos = attach_protocols(network, metrics, "link_state")
        fresh = LinkStateAd(sim.now, origin=0, seq=10, entries=[(1, 5.0)])
        protos[1].on_lsa(fresh, from_id=0)
        assert protos[1].adj[0][1] == 5.0
        stale = LinkStateAd(sim.now, origin=0, seq=9, entries=[(1, 1.0)])
        protos[1].on_lsa(stale, from_id=0)
        assert protos[1].adj[0][1] == 5.0  # unchanged

    def test_monitor_floods_on_cost_change(self, sim, streams):
        """With fading enabled, link classes change and LSAs flow."""
        from repro.channel.model import ChannelConfig

        network, metrics = build_static_network(
            sim,
            streams,
            [(0, 0), (150, 0), (300, 0)],
            channel_config=ChannelConfig(),  # default fading ON
        )
        attach_protocols(network, metrics, "link_state")
        sim.run(until=10.0)
        assert metrics.control_tx_count.get("lsa", 0) > 0

    def test_no_lsas_when_nothing_changes(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (150, 0), (300, 0)]
        )
        attach_protocols(network, metrics, "link_state")
        sim.run(until=10.0)  # deterministic channel, static nodes
        assert metrics.control_tx_count.get("lsa", 0) == 0


class TestFailureHandling:
    def test_break_withdraws_link_and_retries(self, sim, streams):
        from repro.geometry.field import Field
        from repro.geometry.vector import Vec2
        from repro.metrics.collector import MetricsCollector
        from repro.mobility.path import WaypointPath
        from repro.mobility.static import StaticPosition
        from repro.net.network import Network
        from repro.sim.timers import PeriodicTimer
        from tests.helpers import make_deterministic_channel_config

        metrics = MetricsCollector(100.0)
        network = Network(
            sim,
            Field(5000, 5000),
            streams,
            metrics,
            channel_config=make_deterministic_channel_config(),
        )
        network.add_node(StaticPosition(Vec2(0, 0)))  # 0 source
        network.add_node(  # 1 relay leaves at t=2
            WaypointPath([(0.0, Vec2(150, 0)), (2.0, Vec2(150, 0)), (2.4, Vec2(150, 3000))])
        )
        network.add_node(StaticPosition(Vec2(300, 0)))  # 2 destination
        network.add_node(StaticPosition(Vec2(150, 130)))  # 3 alternative
        attach_protocols(network, metrics, "link_state")
        seq = [0]

        def tick():
            seq[0] += 1
            send_app_packet(network, metrics, 0, 2, seq=seq[0])

        PeriodicTimer(sim, 0.1, tick, start_delay=0.0).start()
        sim.run(until=8.0)
        # The monitor or the data plane withdrew the dead link and the
        # traffic re-routed via node 3.
        assert metrics.delivered > 50
        source = network.node(0).routing
        assert source._next_hop(2) == 3
