"""Unit tests for periodic timers."""

import pytest

from repro.errors import SimulationError
from repro.sim.timers import PeriodicTimer


class TestPeriodicTimer:
    def test_fires_every_interval(self, sim):
        times = []
        PeriodicTimer(sim, 1.0, lambda: times.append(sim.now)).start()
        sim.run(until=3.5)
        assert times == [1.0, 2.0, 3.0]

    def test_start_delay_offsets_first_tick(self, sim):
        times = []
        PeriodicTimer(sim, 1.0, lambda: times.append(sim.now), start_delay=0.25).start()
        sim.run(until=2.5)
        assert times == [0.25, 1.25, 2.25]

    def test_cancel_stops_ticks(self, sim):
        times = []
        timer = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now)).start()
        sim.schedule(2.5, timer.cancel)
        sim.run(until=10.0)
        assert times == [1.0, 2.0]
        assert not timer.running

    def test_callback_may_cancel_self(self, sim):
        times = []
        timer = PeriodicTimer(sim, 1.0, lambda: (times.append(sim.now), timer.cancel()))
        timer.start()
        sim.run(until=10.0)
        assert times == [1.0]

    def test_reschedule_changes_interval(self, sim):
        times = []
        timer = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now)).start()
        sim.schedule(1.5, timer.reschedule, 2.0)
        sim.run(until=6.5)
        # tick at 1.0, re-armed before reschedule applies from next arming
        assert times[0] == 1.0
        assert times[1] == 2.0  # already armed with old interval
        assert times[2] == 4.0  # new interval in force

    def test_restart_resets_phase(self, sim):
        times = []
        timer = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now)).start()
        sim.schedule(1.5, timer.start)  # restart mid-cycle
        sim.run(until=3.9)
        assert times == [1.0, 2.5, 3.5]

    def test_tick_counter(self, sim):
        timer = PeriodicTimer(sim, 0.5, lambda: None).start()
        sim.run(until=2.6)
        assert timer.ticks == 5

    def test_invalid_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0.0, lambda: None)
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, -1.0, lambda: None)

    def test_reschedule_invalid_interval_rejected(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        with pytest.raises(SimulationError):
            timer.reschedule(0.0)

    def test_cancel_before_start_is_safe(self, sim):
        PeriodicTimer(sim, 1.0, lambda: None).cancel()  # no exception
