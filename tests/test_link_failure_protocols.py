"""Link-failure handling across all five protocols.

The fault model's core contract: routing never learns about a dead node
from an oracle — the only signal is the data link exhausting its retries
toward a silent peer and calling ``on_link_failure``.  These tests stage
a diamond topology with a redundant path::

        1 (150, 0)
       /  \\
    0      3          0-1, 1-3: 150 m (class B)
       \\  /           0-2, 2-3: ~212 m (class C)
        2 (150, 150)  0-3: 300 m (out of range)

kill the source's current next hop mid-flow, and assert that every
protocol (a) times the break through the collector's route-repair
bookkeeping, (b) loses the in-flight window to the dead hop, (c) finds
the alternate path and resumes delivery, and (d) does all of it
deterministically (two runs are byte-identical).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.routing.registry import available_protocols
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

from tests.helpers import attach_protocols, build_static_network, send_app_packet

DIAMOND = [(0.0, 0.0), (150.0, 0.0), (150.0, 150.0), (300.0, 0.0)]
SRC, DST = 0, 3
KILL_AT_S = 5.0
TRAFFIC_UNTIL_S = 18.0
DURATION_S = 25.0


def _current_next_hop(proto, dest: int):
    """The route's next hop at ``proto``'s node, across protocol styles."""
    if proto.name == "link_state":
        return proto._next_hop(dest)
    entry = proto.table.entry(dest)
    return entry.next_hop if entry is not None and entry.valid else None


def _run_diamond(protocol: str) -> dict:
    """One full break-and-repair run; returns the report plus what died."""
    sim = Simulator()
    streams = RandomStreams(seed=99)
    network, metrics = build_static_network(sim, streams, DIAMOND, duration=DURATION_S)
    protos = attach_protocols(network, metrics, protocol)
    state = {"killed": None, "seq": 0}

    def tick() -> None:
        if sim.now >= TRAFFIC_UNTIL_S:
            return
        state["seq"] += 1
        send_app_packet(network, metrics, SRC, DST, seq=state["seq"])
        sim.schedule(0.5, tick)

    def kill_next_hop() -> None:
        hop = _current_next_hop(protos[SRC], DST)
        # The route must exist by now and must not be the one-hop miracle.
        assert hop in (1, 2), f"no established route to kill, next_hop={hop}"
        network.fail_node(hop)
        state["killed"] = hop

    sim.schedule(0.5, tick)
    sim.schedule_at(KILL_AT_S, kill_next_hop)
    sim.run(until=DURATION_S)
    for proto in protos:
        proto.stop()
    report = metrics.report()
    return {
        "killed": state["killed"],
        "generated": state["seq"],
        "report": report,
        "report_json": json.dumps(dataclasses.asdict(report), sort_keys=True),
    }


@pytest.mark.parametrize("protocol", available_protocols())
class TestLinkFailureRepair:
    def test_break_is_timed_and_repaired(self, protocol):
        out = _run_diamond(protocol)
        report = out["report"]
        # The break was observed through the data link, not an oracle:
        # packets died against the silent peer and the collector marked
        # the break at the moment routing invalidated the next hop.
        assert report.dead_next_hop_losses >= 1
        assert report.route_breaks >= 1
        # ... and the protocol found the alternate path: the repair is
        # timed (zero latency is legitimate — salvage and proactive
        # reroute repair in the break's own instant), and traffic kept
        # flowing after the crash.
        assert report.route_repairs >= 1
        assert report.avg_repair_latency_ms >= 0.0
        pre_fault_max = KILL_AT_S / 0.5  # packets generated before the kill
        assert report.delivered > pre_fault_max, (
            f"{protocol}: no post-fault delivery "
            f"(delivered={report.delivered}, killed node {out['killed']})"
        )

    def test_repair_is_deterministic(self, protocol):
        a = _run_diamond(protocol)
        b = _run_diamond(protocol)
        assert a["killed"] == b["killed"]
        assert a["report_json"] == b["report_json"]


class TestProtocolSpecificRepairPaths:
    """The repair mechanism each protocol routes the break through."""

    def _events(self, protocol: str):
        return _run_diamond(protocol)["report"].events

    def test_aodv_restarts_discovery(self):
        report = _run_diamond("aodv")["report"]
        # The source held its packets and re-flooded an RREQ; the repair
        # landed through on_rrep, a full discovery round-trip after the
        # break was marked.
        assert report.control_tx_count.get("rreq", 0) >= 2
        assert report.route_repairs >= 1
        assert report.avg_repair_latency_ms > 0.0

    def test_abr_runs_localized_query(self):
        assert self._events("abr").get("abr_local_query", 0) >= 1

    def test_bgca_rediscovers(self):
        events = self._events("bgca")
        assert (
            events.get("bgca_rediscovery", 0) >= 1
            or events.get("bgca_lq_repaired", 0) >= 1
        )

    def test_link_state_reroutes_immediately(self):
        report = _run_diamond("link_state")["report"]
        # The proactive repair is the recomputed tree: the retried packet
        # takes the surviving branch in the same instant.
        assert report.route_repairs >= 1

    def test_rica_recovers_via_rediscovery_or_salvage(self):
        events = self._events("rica")
        assert (
            events.get("rica_reer_rediscovery", 0) >= 1
            or events.get("rica_salvage", 0) >= 1
            or events.get("rica_route_switch", 0) >= 1
        )
