"""Behavioural tests for BGCA on staged topologies."""

import pytest

from repro.geometry.field import Field
from repro.geometry.vector import Vec2
from repro.metrics.collector import MetricsCollector
from repro.mobility.path import WaypointPath
from repro.mobility.static import StaticPosition
from repro.net.network import Network
from repro.routing.bgca import BgcaConfig
from repro.routing.packets import RouteRequest

from tests.helpers import (
    attach_protocols,
    build_static_network,
    make_deterministic_channel_config,
    send_app_packet,
)


class TestGuardedDiscovery:
    def test_multihop_delivery(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(i * 150.0, 0.0) for i in range(4)]
        )
        attach_protocols(network, metrics, "bgca")
        send_app_packet(network, metrics, 0, 3)
        sim.run(until=3.0)
        assert metrics.delivered == 1

    def test_metric_prefers_satisfying_routes(self, sim, streams):
        """A route that satisfies the bandwidth requirement always beats a
        shorter-CSI route that does not."""
        network, metrics = build_static_network(sim, streams, [(0, 0), (95, 0)])
        protos = attach_protocols(network, metrics, "bgca")
        proto = protos[0]
        rreq = RouteRequest(0.0, origin=0, target=9, bcast_id=1, required_bw_bps=100_000.0)
        satisfied = proto.request_metric(rreq, hops=4, csi=6.0, bottleneck_bw=150_000.0)
        unsatisfied = proto.request_metric(rreq, hops=1, csi=1.0, bottleneck_bw=50_000.0)
        assert satisfied < unsatisfied

    def test_unsatisfying_routes_ranked_by_bottleneck(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (95, 0)])
        proto = attach_protocols(network, metrics, "bgca")[0]
        rreq = RouteRequest(0.0, 0, 9, 1, required_bw_bps=500_000.0)
        better = proto.request_metric(rreq, 2, 3.0, bottleneck_bw=150_000.0)
        worse = proto.request_metric(rreq, 2, 3.0, bottleneck_bw=50_000.0)
        assert better < worse

    def test_required_bw_includes_guard_factor(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (95, 0)])
        config = BgcaConfig(bw_guard_factor=1.5)
        config.flow_rates_bps[(0, 1)] = 40_000.0
        proto = attach_protocols(network, metrics, "bgca", config)[0]
        assert proto.required_bw_for(1) == pytest.approx(60_000.0)

    def test_required_bw_learned_from_rrep(self, sim, streams):
        """Relays on the route learn the flow requirement from the reply."""
        config = BgcaConfig()
        config.flow_rates_bps[(0, 2)] = 41_000.0
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (150, 0), (300, 0)]
        )
        attach_protocols(network, metrics, "bgca", config)
        send_app_packet(network, metrics, 0, 2)
        sim.run(until=2.0)
        relay = network.node(1).routing
        assert relay.required_bw_for(2) == pytest.approx(41_000.0 * config.bw_guard_factor)


class TestDeepFadeRepair:
    def _fade_network(self, sim, streams):
        """Route 0-1-2; relay 1's leg to 2 degrades from class A to class D
        as node 1 drifts; node 3 provides a healthy partial route."""
        metrics = MetricsCollector(100.0)
        network = Network(
            sim,
            Field(5000, 5000),
            streams,
            metrics,
            channel_config=make_deterministic_channel_config(),
        )
        network.add_node(StaticPosition(Vec2(0, 0)))  # 0 source
        network.add_node(  # 1 relay drifting away from 2 (never out of range of 0)
            WaypointPath(
                [
                    (0.0, Vec2(95, 0)),
                    (2.0, Vec2(95, 0)),
                    (5.0, Vec2(95, -240)),  # leg 1->2 becomes ~258m: broken
                ]
            )
        )
        network.add_node(StaticPosition(Vec2(190, 0)))  # 2 destination
        network.add_node(StaticPosition(Vec2(95, 25)))  # 3 healthy relay
        return network, metrics

    def test_deep_fade_triggers_local_query(self, sim, streams):
        config = BgcaConfig()
        config.flow_rates_bps[(0, 2)] = 100_000.0  # guard at 150 kbps: class B fails
        network, metrics = self._fade_network(sim, streams)
        attach_protocols(network, metrics, "bgca", config)
        from repro.sim.timers import PeriodicTimer

        seq = [0]

        def tick():
            seq[0] += 1
            send_app_packet(network, metrics, 0, 2, seq=seq[0])

        PeriodicTimer(sim, 0.1, tick, start_delay=0.0).start()
        sim.run(until=8.0)
        lq_events = [k for k in metrics.events if k.startswith("bgca_lq")]
        assert lq_events, f"expected a local query, events={dict(metrics.events)}"
        # Traffic kept flowing end to end.
        assert metrics.delivered > 40

    def test_break_repaired_by_local_query(self, sim, streams):
        network, metrics = self._fade_network(sim, streams)
        attach_protocols(network, metrics, "bgca")
        from repro.sim.timers import PeriodicTimer

        seq = [0]

        def tick():
            seq[0] += 1
            send_app_packet(network, metrics, 0, 2, seq=seq[0])

        PeriodicTimer(sim, 0.1, tick, start_delay=0.0).start()
        sim.run(until=10.0)
        # The relay's link to the destination broke; delivery continued
        # via a repair (local query or source rediscovery).
        assert metrics.delivered > 60
        late = metrics.delivered
        sim.run(until=12.0)
        assert metrics.delivered > late  # still flowing at the end
