"""Tests for the ASCII plot renderers."""

import pytest

from repro.analysis.plot import bar_chart, line_plot
from repro.errors import ConfigurationError


class TestLinePlot:
    def test_renders_all_series_markers(self):
        text = line_plot(
            {"rica": [1.0, 2.0, 3.0], "aodv": [3.0, 2.0, 1.0]},
            xs=[0.0, 1.0, 2.0],
            title="demo",
        )
        assert "demo" in text
        assert "o" in text and "x" in text  # both markers drawn
        assert "legend: o rica   x aodv" in text

    def test_axis_labels_show_extremes(self):
        text = line_plot({"s": [10.0, 50.0]}, xs=[0.0, 72.0])
        assert "50.0" in text
        assert "10.0" in text
        assert "72.0" in text

    def test_flat_series_does_not_crash(self):
        text = line_plot({"s": [5.0, 5.0, 5.0]}, xs=[0, 1, 2])
        assert "o" in text

    def test_requires_matching_lengths(self):
        with pytest.raises(ConfigurationError):
            line_plot({"s": [1.0]}, xs=[0.0, 1.0])

    def test_requires_two_points(self):
        with pytest.raises(ConfigurationError):
            line_plot({"s": [1.0]}, xs=[0.0])

    def test_requires_series(self):
        with pytest.raises(ConfigurationError):
            line_plot({}, xs=[0.0, 1.0])

    def test_plot_height_and_width(self):
        text = line_plot({"s": [0.0, 1.0]}, xs=[0, 1], width=30, height=8)
        body = [l for l in text.splitlines() if "|" in l]
        assert len(body) == 8


class TestBarChart:
    def test_bars_proportional(self):
        text = bar_chart({"big": 100.0, "small": 10.0}, width=40)
        lines = text.splitlines()
        big_len = lines[0].count("#")
        small_len = lines[1].count("#")
        assert big_len == 40
        assert 1 <= small_len <= 5

    def test_unit_suffix(self):
        text = bar_chart({"a": 3.0}, unit=" kbps")
        assert "3.0 kbps" in text

    def test_zero_values_handled(self):
        text = bar_chart({"a": 0.0})
        assert "0.0" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart({})
