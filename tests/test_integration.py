"""Cross-module integration tests: full scenarios with every protocol."""

import pytest

from repro.experiments.scenario import ScenarioConfig, build_scenario, run_scenario
from repro.routing.registry import available_protocols

SMALL = dict(n_nodes=25, n_flows=5, duration_s=8.0, field_size_m=700.0, seed=21)


class TestEndToEnd:
    @pytest.mark.parametrize("protocol", available_protocols())
    def test_delivers_most_packets_when_static(self, protocol):
        report = run_scenario(
            ScenarioConfig(protocol=protocol, mean_speed_kmh=0.0, **SMALL)
        )
        assert report.generated > 100
        assert report.delivery_pct > 60.0, report.summary()

    @pytest.mark.parametrize("protocol", available_protocols())
    def test_survives_high_mobility(self, protocol):
        report = run_scenario(
            ScenarioConfig(protocol=protocol, mean_speed_kmh=72.0, **SMALL)
        )
        assert report.delivery_pct > 30.0, report.summary()

    @pytest.mark.parametrize("protocol", available_protocols())
    def test_packet_conservation(self, protocol):
        """generated = delivered + dropped + in-flight (non-negative)."""
        report = run_scenario(
            ScenarioConfig(protocol=protocol, mean_speed_kmh=36.0, **SMALL)
        )
        in_flight = report.generated - report.delivered - report.total_drops
        assert in_flight >= 0
        # At 8 s x 5 flows x 10 pkt/s, in-flight at the end is a sliver.
        assert in_flight < report.generated * 0.25

    def test_no_duplicate_deliveries(self):
        scenario = build_scenario(
            ScenarioConfig(protocol="rica", mean_speed_kmh=36.0, **SMALL)
        )
        scenario.run()
        assert scenario.metrics.duplicates == 0

    def test_hops_of_delivered_packets_reasonable(self):
        report = run_scenario(ScenarioConfig(protocol="aodv", mean_speed_kmh=0.0, **SMALL))
        assert 1.0 <= report.avg_hops <= 10.0

    def test_link_throughput_within_class_bounds(self):
        report = run_scenario(ScenarioConfig(protocol="rica", mean_speed_kmh=0.0, **SMALL))
        assert 50.0 <= report.avg_link_throughput_kbps <= 250.0


class TestChannelAdaptationAdvantage:
    def test_rica_link_quality_beats_aodv(self):
        """The core paper claim at unit scale: channel-adaptive routing
        selects higher-throughput links than channel-oblivious AODV."""
        base = dict(n_nodes=30, n_flows=6, duration_s=10.0, field_size_m=800.0)
        rica_tp = []
        aodv_tp = []
        for seed in (3, 4, 5):
            rica = run_scenario(
                ScenarioConfig(protocol="rica", mean_speed_kmh=36.0, seed=seed, **base)
            )
            aodv = run_scenario(
                ScenarioConfig(protocol="aodv", mean_speed_kmh=36.0, seed=seed, **base)
            )
            rica_tp.append(rica.avg_link_throughput_kbps)
            aodv_tp.append(aodv.avg_link_throughput_kbps)
        assert sum(rica_tp) / 3 > sum(aodv_tp) / 3

    def test_rica_overhead_exceeds_aodv(self):
        """The price of adaptivity (paper Figure 4): CSI checking costs."""
        base = dict(n_nodes=30, n_flows=6, duration_s=10.0, field_size_m=800.0, seed=3)
        rica = run_scenario(ScenarioConfig(protocol="rica", mean_speed_kmh=36.0, **base))
        aodv = run_scenario(ScenarioConfig(protocol="aodv", mean_speed_kmh=36.0, **base))
        assert rica.overhead_kbps > aodv.overhead_kbps
        assert rica.control_tx_count.get("csi_check", 0) > 0

    def test_link_state_overhead_dwarfs_on_demand(self):
        base = dict(n_nodes=30, n_flows=6, duration_s=8.0, field_size_m=800.0, seed=3)
        ls = run_scenario(ScenarioConfig(protocol="link_state", mean_speed_kmh=36.0, **base))
        aodv = run_scenario(ScenarioConfig(protocol="aodv", mean_speed_kmh=36.0, **base))
        assert ls.overhead_kbps > 3 * aodv.overhead_kbps
