"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "rica"
        assert args.mean_speed == 36.0

    def test_run_flags(self):
        args = build_parser().parse_args(
            ["run", "--protocol", "aodv", "--mean-speed", "72", "--rate", "20"]
        )
        assert args.protocol == "aodv"
        assert args.mean_speed == 72.0
        assert args.rate == 20.0

    def test_run_rreq_aggregation_flag(self):
        args = build_parser().parse_args(["run", "--rreq-aggregation", "0.04"])
        assert args.rreq_aggregation == 0.04
        assert build_parser().parse_args(["run"]).rreq_aggregation == 0.0

    def test_figure_requires_valid_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.jobs == 1
        assert args.protocols is None
        assert args.speeds == [0.0, 36.0, 72.0]

    def test_campaign_jobs_flag(self):
        args = build_parser().parse_args(
            ["campaign", "--jobs", "4", "--protocols", "rica", "aodv"]
        )
        assert args.jobs == 4
        assert args.protocols == ["rica", "aodv"]

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "rica" in out and "link_state" in out
        assert "fig2a" in out and "fig6b" in out

    def test_run_tiny(self, capsys):
        rc = main(
            [
                "run",
                "--protocol",
                "aodv",
                "--nodes",
                "12",
                "--flows",
                "3",
                "--duration",
                "4",
                "--seed",
                "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "delivery (%)" in out
        assert "aodv" in out

    def test_figure_tiny(self, capsys):
        rc = main(
            [
                "figure",
                "fig5a",
                "--duration",
                "4",
                "--trials",
                "1",
                "--protocols",
                "aodv",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig5a" in out
        assert "paper expectation" in out

    def test_campaign_tiny_parallel(self, capsys, tmp_path):
        out_path = tmp_path / "campaign.json"
        rc = main(
            [
                "campaign",
                "--protocols", "aodv",
                "--speeds", "0",
                "--rates", "10",
                "--duration", "2",
                "--nodes", "8",
                "--flows", "2",
                "--jobs", "2",
                "--out", str(out_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "aodv/0/10" in out
        assert out_path.exists()
