"""Unit and property tests for the Dijkstra implementation."""

import math
import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing.dijkstra import next_hops, path_to, shortest_paths


SIMPLE = {
    "a": {"b": 1.0, "c": 4.0},
    "b": {"c": 2.0, "d": 5.0},
    "c": {"d": 1.0},
    "d": {},
}


class TestShortestPaths:
    def test_distances(self):
        dist, _ = shortest_paths(SIMPLE, "a")
        assert dist == {"a": 0.0, "b": 1.0, "c": 3.0, "d": 4.0}

    def test_parents_form_tree(self):
        _, parent = shortest_paths(SIMPLE, "a")
        assert parent["d"] == "c"
        assert parent["c"] == "b"
        assert parent["b"] == "a"

    def test_unreachable_absent(self):
        graph = {"a": {"b": 1.0}, "b": {}, "z": {"a": 1.0}}
        dist, _ = shortest_paths(graph, "a")
        assert "z" not in dist

    def test_infinite_cost_edges_skipped(self):
        graph = {"a": {"b": math.inf, "c": 1.0}, "c": {"b": 1.0}, "b": {}}
        dist, _ = shortest_paths(graph, "a")
        assert dist["b"] == 2.0

    def test_negative_cost_edges_skipped(self):
        graph = {"a": {"b": -1.0, "c": 2.0}, "b": {}, "c": {}}
        dist, _ = shortest_paths(graph, "a")
        assert "b" not in dist


class TestNextHops:
    def test_first_hop_resolution(self):
        hops = next_hops(SIMPLE, "a")
        assert hops["b"] == "b"
        assert hops["c"] == "b"  # a-b-c is shorter than a-c
        assert hops["d"] == "b"

    def test_empty_graph(self):
        assert next_hops({}, "a") == {}


class TestPathTo:
    def test_full_path(self):
        assert path_to(SIMPLE, "a", "d") == ["a", "b", "c", "d"]

    def test_unreachable_returns_none(self):
        assert path_to({"a": {}}, "a", "zzz") is None

    def test_path_to_self(self):
        assert path_to(SIMPLE, "a", "a") == ["a"]


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    edges = {}
    for u in range(n):
        edges[u] = {}
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    count = draw(st.integers(min_value=0, max_value=len(possible)))
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**32 - 1)))
    chosen = rng.sample(possible, count)
    for u, v in chosen:
        edges[u][v] = rng.uniform(0.1, 10.0)
    return edges


class TestAgainstNetworkx:
    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_distances_match_networkx(self, graph):
        g = nx.DiGraph()
        g.add_nodes_from(graph)
        for u, nbrs in graph.items():
            for v, w in nbrs.items():
                g.add_edge(u, v, weight=w)
        expected = nx.single_source_dijkstra_path_length(g, 0, weight="weight")
        dist, _ = shortest_paths(graph, 0)
        assert set(dist) == set(expected)
        for node, d in expected.items():
            assert dist[node] == pytest.approx(d)

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_next_hop_lies_on_shortest_path(self, graph):
        dist, _ = shortest_paths(graph, 0)
        hops = next_hops(graph, 0)
        for dest, hop in hops.items():
            if dest == 0:
                continue
            # The edge 0->hop plus the remaining distance equals dist[dest].
            assert hop in graph[0]
            remaining, _ = shortest_paths(graph, hop)
            assert graph[0][hop] + remaining[dest] == pytest.approx(dist[dest])
