"""Additional per-protocol detail tests: cooldowns, notification chains,
candidate freshness."""

import pytest

from repro.core.rica import RicaConfig
from repro.routing.bgca import BgcaConfig
from repro.routing.packets import RouteNotification

from tests.helpers import attach_protocols, build_static_network, send_app_packet


class TestBgcaDetails:
    def test_lq_cooldown_limits_queries(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (150, 0)])
        config = BgcaConfig(lq_cooldown_s=10.0)
        proto = attach_protocols(network, metrics, "bgca", config)[0]
        proto.table.set_route(1, next_hop=1, now=sim.now)
        proto._maybe_start_local_query(1, reason="deep_fade")
        # Clear the in-flight marker as if the first LQ concluded...
        timer, _ = proto._local_queries.pop(1)
        timer.cancel()
        # ...a second attempt within the cooldown must not launch.
        proto._maybe_start_local_query(1, reason="deep_fade")
        assert 1 not in proto._local_queries

    def test_fade_counter_resets_on_good_sample(self, sim, streams):
        # 0 -> 1 at class A: guard of a 10 pkt/s flow is satisfied, so the
        # fade counter stays at zero while forwarding.
        network, metrics = build_static_network(sim, streams, [(0, 0), (80, 0)])
        config = BgcaConfig()
        config.flow_rates_bps[(0, 1)] = 41_000.0
        attach_protocols(network, metrics, "bgca", config)
        for seq in range(1, 6):
            send_app_packet(network, metrics, 0, 1, seq=seq)
        sim.run(until=2.0)
        proto = network.node(0).routing
        assert proto._fade_counts.get(1, 0) == 0
        assert metrics.delivered == 5

    def test_guard_counts_consecutive_fades(self, sim, streams):
        # 0 -> 1 at class C (210 m, 75 kbps) with a 100 kbps-required flow:
        # every transmission samples below guard, so the counter climbs and
        # an LQ launches after fade_trigger_count samples.
        network, metrics = build_static_network(sim, streams, [(0, 0), (210, 0)])
        config = BgcaConfig(fade_trigger_count=2)
        config.flow_rates_bps[(0, 1)] = 100_000.0  # guard = 150 kbps
        attach_protocols(network, metrics, "bgca", config)
        for seq in range(1, 4):
            send_app_packet(network, metrics, 0, 1, seq=seq)
        sim.run(until=2.0)
        lq_events = sum(
            v for k, v in metrics.events.items() if k.startswith("bgca_lq_deep_fade")
        )
        assert lq_events >= 1


class TestAbrDetails:
    def test_rn_chain_reaches_source_and_triggers_discovery(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (150, 0), (300, 0), (450, 0)]
        )
        protos = attach_protocols(network, metrics, "abr")
        send_app_packet(network, metrics, 0, 3)
        sim.run(until=3.0)
        assert metrics.delivered == 1
        discoveries_before = metrics.events.get("discovery_started", 0)
        # Node 2 reports the flow broken to node 1; the chain must reach 0.
        rn = RouteNotification(sim.now, flow_src=0, flow_dst=3, reporter=2, unicast_to=1)
        protos[1].on_rn(rn, from_id=2)
        sim.run(until=6.0)
        assert metrics.events.get("abr_rn_reached_source", 0) == 1
        assert metrics.events.get("discovery_started", 0) > discoveries_before

    def test_beacon_jitter_desynchronises(self, sim, streams):
        """Beacon start delays are drawn per node: no thundering herd."""
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (50, 0), (100, 0), (150, 0)]
        )
        protos = attach_protocols(network, metrics, "abr")
        delays = {p._beacon_timer._start_delay for p in protos}
        assert len(delays) == len(protos)


class TestRicaDetails:
    def test_candidate_staleness_forces_discovery(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (150, 0), (300, 0)]
        )
        config = RicaConfig(candidate_fresh_s=0.5)
        attach_protocols(network, metrics, "rica", config)
        source = network.node(0).routing
        send_app_packet(network, metrics, 0, 2)
        sim.run(until=1.5)  # a checking broadcast has been collected
        assert 2 in source._fresh_candidate
        # Age the stored candidate beyond freshness (live checking would
        # keep refreshing it, so backdate the record), then break the route.
        neighbor, bcast, csi, at = source._fresh_candidate[2]
        source._fresh_candidate[2] = (neighbor, bcast, csi, at - 10.0)
        source.on_route_broken(2)
        assert metrics.events.get("rica_reer_rediscovery", 0) == 1

    def test_checking_ttl_limits_corridor(self, sim, streams):
        """A node far off the route (beyond TTL hops from the destination)
        never sees the checking packet."""
        # Route 0-1-2 (2 hops).  Node 3 sits 3 hops from the destination.
        network, metrics = build_static_network(
            sim,
            streams,
            [(0, 0), (150, 0), (300, 0), (-150, 0), (-300, 0)],
        )
        config = RicaConfig(ttl_slack=0)
        attach_protocols(network, metrics, "rica", config)
        send_app_packet(network, metrics, 0, 2)
        sim.run(until=2.5)
        assert metrics.events.get("rica_check_broadcast", 0) >= 1
        far_node = network.node(4).routing
        # Node 4 (4 plain hops from the destination) holds no pointer.
        assert far_node._salvage_pointer(2, exclude=-1) is None
