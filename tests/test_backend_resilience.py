"""Fault-tolerant campaign execution: retries, timeouts, crashed workers.

The three real-world campaign killers, staged for real against the
process-pool backend: a cell that raises (retried with backoff), a worker
that dies mid-cell (``SIGKILL``, surfacing as ``BrokenProcessPool``), and
a cell that hangs (bounded by ``cell_timeout_s``).  Plus the regression
test for the historical executor leak: abandoning ``map``/``map_outcomes``
mid-iteration — or having a worker die — must never strand live worker
processes.

Work functions live at module level so the pool can pickle them; cross-
process attempt counters are files under ``tmp_path``.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.experiments.backend import (
    CellFailure,
    CellOutcome,
    ExecutionBackend,
    ProcessPoolBackend,
    RetryPolicy,
    SerialBackend,
)
from repro.experiments.campaign import (
    CampaignSpec,
    load_results,
    run_campaign,
    save_results,
)
from repro.experiments.scenario import ScenarioConfig

FAST = dict(backoff_base_s=0.0)


def _square(x):
    return x * x


def _kill_on(item):
    """Kill the worker for item 1; square everything else."""
    if item == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return item * item


def _hang_on(item):
    """Hang forever on item 1; square everything else."""
    if item == 1:
        time.sleep(300)
    return item * item


def _kill_once(item):
    """Kill the worker on the first attempt at item 1, succeed after."""
    path, x = item
    if x == 1 and not os.path.exists(path):
        open(path, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


def _flaky(item):
    """Raise on the first two attempts, then succeed (file = counter)."""
    path, x = item
    with open(path, "a") as fh:
        fh.write("!")
    if os.path.getsize(path) < 3:
        raise RuntimeError(f"flaky attempt {os.path.getsize(path)}")
    return x * x


def _chaos(item):
    """One of everything: a crasher, a hanger, and honest cells."""
    if item == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    if item == 3:
        time.sleep(300)
    return item * item


def _assert_workers_reaped():
    """No worker process outlives its backend (the leak regression bar)."""
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        children = multiprocessing.active_children()  # also reaps zombies
        if not children:
            return
        time.sleep(0.05)
    raise AssertionError(f"leaked worker processes: {children}")


class TestRetryPolicyValidation:
    def test_rejects_negative_retries(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)

    def test_rejects_negative_backoff_base(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base_s=-0.1)

    def test_rejects_sub_unit_backoff_factor(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(cell_timeout_s=0.0)

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_base_s=0.25, backoff_factor=2.0)
        assert [policy.backoff_s(a) for a in range(3)] == [0.25, 0.5, 1.0]


class TestCellFailure:
    def test_as_dict_is_json_friendly(self):
        failure = CellFailure(3, "timeout", "TimeoutError()", 2)
        assert failure.as_dict() == {
            "kind": "timeout",
            "error": "TimeoutError()",
            "attempts": 2,
        }

    def test_to_exception_returns_original_for_fn_errors(self):
        original = ValueError("boom")
        failure = CellFailure(0, "exception", repr(original), 1, original)
        assert failure.to_exception() is original

    def test_to_exception_wraps_incidents(self):
        failure = CellFailure(0, "worker_crash", "BrokenProcessPool", 2)
        exc = failure.to_exception()
        assert isinstance(exc, ExecutionError)
        assert exc.failure is failure


class TestSerialRetries:
    def test_flaky_cell_succeeds_after_retries(self, tmp_path):
        counter = str(tmp_path / "attempts")
        backend = SerialBackend(RetryPolicy(max_retries=2, **FAST))
        outcomes = list(backend.map_outcomes(_flaky, [(counter, 7)]))
        assert [o.value for o in outcomes] == [49]
        assert os.path.getsize(counter) == 3  # two failures + the success

    def test_exhausted_retries_yield_structured_failure(self, tmp_path):
        counter = str(tmp_path / "attempts")
        backend = SerialBackend(RetryPolicy(max_retries=1, **FAST))
        (outcome,) = backend.map_outcomes(_flaky, [(counter, 7)])
        assert not outcome.ok
        assert outcome.failure.kind == "exception"
        assert outcome.failure.attempts == 2

    def test_strict_map_raises_the_original_exception(self, tmp_path):
        counter = str(tmp_path / "attempts")
        backend = SerialBackend(RetryPolicy(max_retries=0, **FAST))
        with pytest.raises(RuntimeError, match="flaky"):
            list(backend.map(_flaky, [(counter, 7)]))


class TestPoolResilience:
    def test_worker_crash_is_survived_and_attributed(self):
        backend = ProcessPoolBackend(jobs=2, policy=RetryPolicy(max_retries=0, **FAST))
        outcomes = list(backend.map_outcomes(_kill_on, [0, 1, 2, 3]))
        assert [o.index for o in outcomes] == [0, 1, 2, 3]
        assert outcomes[1].failure is not None
        assert outcomes[1].failure.kind == "worker_crash"
        # The innocent bystanders all completed despite the poisoned pool.
        assert [o.value for o in outcomes if o.ok] == [0, 4, 9]
        _assert_workers_reaped()

    def test_worker_crash_retried_to_success(self, tmp_path):
        flag = str(tmp_path / "crashed-once")
        backend = ProcessPoolBackend(jobs=2, policy=RetryPolicy(max_retries=1, **FAST))
        items = [(flag, x) for x in range(4)]
        outcomes = list(backend.map_outcomes(_kill_once, items))
        assert all(o.ok for o in outcomes)
        assert [o.value for o in outcomes] == [0, 1, 4, 9]
        assert os.path.exists(flag)  # the crash really happened
        _assert_workers_reaped()

    def test_hung_cell_is_killed_and_reported(self):
        backend = ProcessPoolBackend(
            jobs=2, policy=RetryPolicy(max_retries=0, cell_timeout_s=0.5, **FAST)
        )
        start = time.monotonic()
        outcomes = list(backend.map_outcomes(_hang_on, [0, 1, 2]))
        wall = time.monotonic() - start
        assert outcomes[1].failure.kind == "timeout"
        assert [o.value for o in outcomes if o.ok] == [0, 4]
        # The hung worker was terminated, not waited out.
        assert wall < 60
        _assert_workers_reaped()

    def test_crash_plus_hang_completes_with_partial_results(self):
        """The acceptance scenario: one crasher, one hanger, retries on —
        the run completes, honest cells resolve, both incidents land as
        structured failures with their attempt counts."""
        backend = ProcessPoolBackend(
            jobs=2, policy=RetryPolicy(max_retries=1, cell_timeout_s=0.5, **FAST)
        )
        outcomes = list(backend.map_outcomes(_chaos, [0, 1, 2, 3, 4]))
        by_index = {o.index: o for o in outcomes}
        assert by_index[1].failure.kind == "worker_crash"
        assert by_index[3].failure.kind == "timeout"
        assert by_index[1].failure.attempts == 2
        assert by_index[3].failure.attempts == 2
        assert [by_index[i].value for i in (0, 2, 4)] == [0, 4, 16]
        _assert_workers_reaped()

    def test_flaky_exception_retried_in_pool(self, tmp_path):
        counter = str(tmp_path / "attempts")
        backend = ProcessPoolBackend(jobs=2, policy=RetryPolicy(max_retries=2, **FAST))
        outcomes = list(backend.map_outcomes(_flaky, [(counter, 5), (counter + "b", 6)]))
        # (counter, 5) fails twice then succeeds; retries happen in place
        # without poisoning the pool.
        assert not outcomes[0].ok or outcomes[0].value == 25
        assert os.path.getsize(counter) >= 1

    def test_single_job_stays_in_process(self):
        # jobs=1 with no timeout never pays pickling: a closure works.
        backend = ProcessPoolBackend(jobs=1)
        assert [o.value for o in backend.map_outcomes(lambda x: x + 1, [1, 2])] == [2, 3]

    def test_retried_cell_matches_serial_result(self, tmp_path):
        """Per-attempt determinism: a cell's value is a function of its
        item alone (campaign trial seeds derive from the cell config,
        never the attempt number), so a crash-then-retry run must equal
        the serial run bit for bit."""
        flag = str(tmp_path / "crashed-once")
        items = [(flag, x) for x in range(4)]
        pool = ProcessPoolBackend(jobs=2, policy=RetryPolicy(max_retries=1, **FAST))
        retried = [o.value for o in pool.map_outcomes(_kill_once, items)]
        # Serial reference over the same items, no crash (flag exists now).
        serial = [o.value for o in SerialBackend().map_outcomes(_kill_once, items)]
        assert retried == serial


class TestExecutorLeakRegression:
    def test_abandoned_iteration_reaps_workers(self):
        """The historical leak: a consumer walking away from the outcome
        stream mid-iteration stranded the executor and its workers."""
        backend = ProcessPoolBackend(jobs=2, policy=RetryPolicy(max_retries=1, **FAST))
        gen = backend.map_outcomes(_kill_on, [0, 1, 2, 3])
        first = next(gen)
        assert first.index == 0
        gen.close()  # GeneratorExit must run the teardown path
        _assert_workers_reaped()

    def test_strict_map_failure_reaps_workers(self):
        backend = ProcessPoolBackend(jobs=2, policy=RetryPolicy(max_retries=0, **FAST))
        with pytest.raises(ExecutionError):
            list(backend.map(_kill_on, [0, 1, 2, 3]))
        _assert_workers_reaped()


class _ScriptedBackend(ExecutionBackend):
    """Deterministic stand-in: scripted failures at chosen indices."""

    def __init__(self, fail_indices, policy):
        self.fail_indices = fail_indices
        self.policy = policy

    def map_outcomes(self, fn, items):
        for idx, item in enumerate(items):
            if idx in self.fail_indices:
                yield CellOutcome(
                    idx, failure=CellFailure(idx, "worker_crash", "scripted", 2)
                )
            else:
                yield CellOutcome(idx, value=fn(item))


def _tiny_spec():
    return CampaignSpec(
        name="resilience",
        base=ScenarioConfig(duration_s=2.0, n_nodes=8, n_flows=2, seed=5),
        protocols=["aodv"],
        mean_speeds_kmh=[0.0, 36.0, 72.0],
        rates_pps=[10.0],
        trials=1,
    )


class TestCampaignDegradation:
    def test_tolerant_campaign_returns_partial_results(self, tmp_path):
        spec = _tiny_spec()
        backend = _ScriptedBackend({1}, RetryPolicy(max_retries=1, **FAST))
        seen = []
        result = run_campaign(spec, progress=seen.append, backend=backend)
        keys = [key for key, _ in spec.cell_configs()]
        assert seen == keys  # progress still reports every cell
        assert not result.complete
        assert sorted(result.cells) == sorted([keys[0], keys[2]])
        assert result.failures == {
            keys[1]: {"kind": "worker_crash", "error": "scripted", "attempts": 2}
        }
        # The failure report survives the JSON round-trip.
        path = str(tmp_path / "partial.json")
        save_results(result, path)
        loaded = load_results(path)
        assert loaded.failures == result.failures
        assert sorted(loaded.cells) == sorted(result.cells)

    def test_default_policy_stays_fail_fast(self):
        backend = _ScriptedBackend({1}, RetryPolicy())
        with pytest.raises(ExecutionError):
            run_campaign(_tiny_spec(), backend=backend)

    def test_clean_run_json_has_no_failures_key(self, tmp_path):
        import json

        spec = _tiny_spec()
        backend = _ScriptedBackend(set(), RetryPolicy(max_retries=1, **FAST))
        result = run_campaign(spec, backend=backend)
        assert result.complete
        path = str(tmp_path / "clean.json")
        save_results(result, path)
        assert "failures" not in json.load(open(path))
