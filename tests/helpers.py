"""Shared test helpers: deterministic channels and tiny static networks.

The key trick for protocol tests: a :class:`ChannelConfig` with zero
fading sigma makes the CSI class a *deterministic* function of distance
(snr = 36 - 30*log10(d/25) with the default path loss):

====================  =========
distance              class
====================  =========
d <= ~99.5 m          A
~99.5 < d <= ~158 m   B
~158 < d <= 250 m     C
beyond 250 m          out of range
====================  =========

so tests can stage exact channel qualities by node placement.
"""

from __future__ import annotations

from repro.channel.model import ChannelConfig
from repro.geometry.field import Field
from repro.geometry.vector import Vec2
from repro.mac.csma import MacConfig
from repro.metrics.collector import MetricsCollector
from repro.mobility.static import StaticPosition
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

__all__ = [
    "make_deterministic_channel_config",
    "build_static_network",
    "attach_protocols",
    "send_app_packet",
]


def make_deterministic_channel_config() -> ChannelConfig:
    """Channel with no fading: CSI class is a pure function of distance."""
    return ChannelConfig(shadow_sigma_db=0.0, fast_sigma_db=0.0)


def build_static_network(
    sim: Simulator,
    streams: RandomStreams,
    positions,
    duration: float = 100.0,
    channel_config: ChannelConfig = None,
    mac_config: MacConfig = None,
    mac_backend: str = "scalar",
):
    """A network of static nodes at explicit positions.

    Returns ``(network, metrics)``.
    """
    metrics = MetricsCollector(duration)
    field = Field(5000.0, 5000.0)
    network = Network(
        sim,
        field,
        streams,
        metrics,
        channel_config=channel_config or make_deterministic_channel_config(),
        mac_config=mac_config,
        mac_backend=mac_backend,
    )
    for pos in positions:
        network.add_node(StaticPosition(Vec2(*pos)))
    return network, metrics


def attach_protocols(network, metrics, name, config=None):
    """Attach (and start) one protocol instance per node.  Returns them."""
    from repro.routing.registry import create_protocol

    protocols = [
        create_protocol(name, node, network, metrics, config) for node in network.nodes()
    ]
    for proto in protocols:
        proto.start()
    return protocols


def send_app_packet(network, metrics, src, dst, seq=1):
    """Generate one application packet at ``src`` addressed to ``dst``."""
    from repro.net.packet import DataPacket

    pkt = DataPacket(src=src, dst=dst, seq=seq, created_at=network.sim.now)
    metrics.record_generated(pkt)
    network.node(src).routing.handle_app_packet(pkt)
    return pkt
