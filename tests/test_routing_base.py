"""Edge-case tests for the shared on-demand machinery in routing.base."""

import pytest

from repro.metrics.collector import DropReason
from repro.net.packet import DataPacket
from repro.routing.base import ProtocolConfig
from repro.routing.packets import RouteReply, RouteRequest

from tests.helpers import attach_protocols, build_static_network, send_app_packet


class TestDiscoveryRetries:
    def test_retries_then_gives_up(self, sim, streams):
        """Unreachable destination: retries then drops pending data."""
        config = ProtocolConfig(discovery_timeout_s=0.2, max_discovery_retries=2)
        network, metrics = build_static_network(sim, streams, [(0, 0), (4000, 4000)])
        attach_protocols(network, metrics, "aodv", config)
        send_app_packet(network, metrics, 0, 1)
        sim.run(until=5.0)
        # initial + 2 retries = 3 floods from the source
        assert metrics.events["discovery_started"] == 3
        assert metrics.events["discovery_failed"] == 1
        assert metrics.drops.get(DropReason.NO_ROUTE, 0) == 1

    def test_no_duplicate_discovery_for_same_dest(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (4000, 4000)])
        attach_protocols(network, metrics, "aodv")
        send_app_packet(network, metrics, 0, 1, seq=1)
        send_app_packet(network, metrics, 0, 1, seq=2)  # second packet, same dest
        sim.run(until=0.1)
        assert metrics.events["discovery_started"] == 1

    def test_bcast_ids_increment(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (100, 0)])
        proto = attach_protocols(network, metrics, "aodv")[0]
        assert proto.next_bcast_id() == 1
        assert proto.next_bcast_id() == 2


class TestDataPlaneGuards:
    def test_hop_limit_drops(self, sim, streams):
        config = ProtocolConfig(data_hop_limit=2)
        network, metrics = build_static_network(
            sim, streams, [(i * 150.0, 0.0) for i in range(5)]
        )
        attach_protocols(network, metrics, "aodv", config)
        send_app_packet(network, metrics, 0, 4)  # needs 4 hops > limit 2
        sim.run(until=3.0)
        assert metrics.delivered == 0
        assert metrics.drops.get(DropReason.HOP_LIMIT, 0) == 1

    def test_transit_no_route_sends_reer(self, sim, streams):
        """An intermediate with no route drops the packet and reports."""
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (150, 0), (300, 0)]
        )
        protos = attach_protocols(network, metrics, "aodv")
        send_app_packet(network, metrics, 0, 2)
        sim.run(until=2.0)
        assert metrics.delivered == 1
        # Sabotage the relay's table, then send another packet.
        protos[1].table.invalidate(2)
        send_app_packet(network, metrics, 0, 2, seq=2)
        sim.run(until=2.5)
        assert metrics.drops.get(DropReason.NO_ROUTE, 0) == 1
        assert metrics.control_tx_count.get("reer", 0) >= 1


class TestReplyPlumbing:
    def test_rrep_without_reverse_pointer_is_dropped(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (100, 0)])
        proto = attach_protocols(network, metrics, "aodv")[1]
        rrep = RouteReply(sim.now, origin=42, target=7, bcast_id=5, unicast_to=1)
        proto.on_rrep(rrep, from_id=0)
        assert metrics.events["rrep_lost_no_reverse"] == 1

    def test_rrep_hop_guard(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (100, 0)])
        proto = attach_protocols(network, metrics, "aodv")[1]
        rrep = RouteReply(sim.now, origin=42, target=7, bcast_id=5, unicast_to=1)
        rrep.hops = proto.MAX_REPLY_HOPS
        proto.on_rrep(rrep, from_id=0)
        assert metrics.events["rrep_hop_guard"] == 1

    def test_unicast_control_ignored_by_bystanders(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (100, 0), (100, 100)]
        )
        protos = attach_protocols(network, metrics, "aodv")
        overheard = []
        protos[2].overhear = lambda pkt, frm: overheard.append(pkt)
        rrep = RouteReply(sim.now, origin=0, target=1, bcast_id=1, unicast_to=1)
        protos[2].handle_control(rrep, from_id=0)
        assert overheard  # routed to the overhear hook, not processed
        assert 1 not in protos[2].table

    def test_own_rreq_echo_ignored(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (100, 0)])
        proto = attach_protocols(network, metrics, "aodv")[0]
        rreq = RouteRequest(sim.now, origin=0, target=1, bcast_id=1)
        before = len(proto._reverse)
        proto.on_rreq(rreq, from_id=1)  # our own flood echoed back
        assert len(proto._reverse) == before


class TestRreqTtl:
    def test_ttl_limits_flood_scope(self, sim, streams):
        """A TTL-2 query cannot reach a destination 3 hops away."""
        network, metrics = build_static_network(
            sim, streams, [(i * 150.0, 0.0) for i in range(4)]
        )
        protos = attach_protocols(network, metrics, "aodv")
        lq = RouteRequest(sim.now, origin=0, target=3, bcast_id=77, ttl=2)
        protos[0].flood_cache.check_and_add(lq.flood_key)
        protos[0].broadcast_control(lq)
        sim.run(until=1.0)
        # Node 3 never replies: no route appears at the origin.
        assert protos[0].table.get_valid(3, sim.now) is None

    def test_sufficient_ttl_reaches(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(i * 150.0, 0.0) for i in range(4)]
        )
        protos = attach_protocols(network, metrics, "aodv")
        lq = RouteRequest(sim.now, origin=0, target=3, bcast_id=77, ttl=3)
        protos[0].flood_cache.check_and_add(lq.flood_key)
        protos[0].broadcast_control(lq)
        sim.run(until=1.0)
        entry = protos[0].table.get_valid(3, sim.now)
        assert entry is not None and entry.next_hop == 1


class TestRreqAggregation:
    """The jitter-window relay: delay, coalesce, suppress."""

    WINDOW = 0.05

    def _config(self, **overrides):
        return ProtocolConfig(rreq_aggregation_s=self.WINDOW, **overrides)

    def test_relay_held_for_jitter_window(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (150, 0), (300, 0)]
        )
        protos = attach_protocols(network, metrics, "aodv", self._config())
        rreq = RouteRequest(0.0, origin=0, target=99, bcast_id=1)
        protos[1].on_rreq(rreq, from_id=0)
        assert len(protos[1]._pending_relays) == 1
        sim.run(until=1.0)
        # Node 1 relayed once (after its jitter); node 2 heard that relay
        # and relayed once itself; node 0 ignores its own flood's echo.
        assert metrics.control_tx_count["rreq"] == 2
        assert not protos[1]._pending_relays

    def test_duplicates_coalesce_to_best_metric(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (150, 0), (300, 0)]
        )
        protos = attach_protocols(network, metrics, "aodv", self._config())
        received = []
        network.node(2).receive_control = lambda pkt, frm: received.append(pkt)
        worse = RouteRequest(0.0, origin=0, target=99, bcast_id=1)
        worse.hops = 3  # arrives first, via a long path
        better = RouteRequest(0.0, origin=0, target=99, bcast_id=1)
        protos[1].on_rreq(worse, from_id=0)
        protos[1].on_rreq(better, from_id=0)  # duplicate, strictly better
        sim.run(until=1.0)
        # One coalesced relay went out carrying the better accumulators.
        assert len(received) == 1
        assert received[0].hops == 1
        assert metrics.events["rreq_coalesced"] == 1
        assert metrics.control_tx_count["rreq"] == 1

    def test_enough_duplicates_suppress_the_relay(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (150, 0), (300, 0)]
        )
        config = self._config(rreq_suppress_copies=2)
        protos = attach_protocols(network, metrics, "aodv", config)
        for _ in range(3):  # first copy + 2 duplicates
            copy = RouteRequest(0.0, origin=0, target=99, bcast_id=1)
            protos[1].on_rreq(copy, from_id=0)
        sim.run(until=1.0)
        assert metrics.events["rreq_suppressed"] == 1
        assert metrics.control_tx_count.get("rreq", 0) == 0

    def test_duplicate_after_flush_is_discarded(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (150, 0), (300, 0)]
        )
        protos = attach_protocols(network, metrics, "aodv", self._config())
        protos[1].on_rreq(RouteRequest(0.0, origin=0, target=99, bcast_id=1), from_id=0)
        sim.run(until=1.0)  # the window closed and the relay went out
        sent = metrics.control_tx_count["rreq"]
        protos[1].on_rreq(RouteRequest(0.0, origin=0, target=99, bcast_id=1), from_id=0)
        sim.run(until=2.0)
        assert metrics.control_tx_count["rreq"] == sent  # plain duplicate: dropped

    def test_discovery_still_succeeds_with_aggregation(self, sim, streams):
        from tests.helpers import send_app_packet

        network, metrics = build_static_network(
            sim, streams, [(i * 150.0, 0.0) for i in range(4)]
        )
        attach_protocols(network, metrics, "aodv", self._config())
        send_app_packet(network, metrics, 0, 3)
        sim.run(until=3.0)
        assert metrics.delivered == 1

    def test_window_zero_relays_immediately(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (150, 0), (300, 0)]
        )
        protos = attach_protocols(network, metrics, "aodv")  # default config
        protos[1].on_rreq(RouteRequest(0.0, origin=0, target=99, bcast_id=1), from_id=0)
        assert not protos[1]._pending_relays  # handed straight to the MAC
        sim.run(until=1.0)
        assert "rreq_coalesced" not in metrics.events
