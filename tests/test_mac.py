"""Unit tests for the common-channel medium and CSMA/CA MAC."""

import pytest

from repro.channel.model import ChannelConfig, ChannelModel
from repro.errors import ConfigurationError
from repro.geometry.vector import Vec2
from repro.mac.csma import MacConfig
from repro.mac.medium import CommonChannelMedium, Transmission
from repro.net.packet import Packet
from repro.routing.packets import Beacon
from repro.sim.rng import RandomStreams

from tests.helpers import build_static_network


class TestMacConfigValidation:
    def test_defaults_valid(self):
        MacConfig()  # no exception

    def test_negative_initial_defer_rejected(self):
        with pytest.raises(ConfigurationError):
            MacConfig(initial_defer_max_s=-0.001)

    def test_zero_initial_defer_allowed(self):
        assert MacConfig(initial_defer_max_s=0.0).initial_defer_max_s == 0.0

    @pytest.mark.parametrize("factor", [0.0, -2.0])
    def test_nonpositive_cs_range_factor_rejected(self, factor):
        with pytest.raises(ConfigurationError):
            MacConfig(cs_range_factor=factor)

    @pytest.mark.parametrize("residence", [0.0, -0.5])
    def test_nonpositive_queue_residence_rejected(self, residence):
        with pytest.raises(ConfigurationError):
            MacConfig(queue_residence_s=residence)

    def test_none_queue_residence_disables_staleness(self):
        assert MacConfig(queue_residence_s=None).queue_residence_s is None


def make_medium(positions):
    config = ChannelConfig(shadow_sigma_db=0.0, fast_sigma_db=0.0)
    channel = ChannelModel(config, RandomStreams(5), lambda nid, t: positions[nid])
    return CommonChannelMedium(channel), channel


class TestTransmission:
    def test_overlap(self):
        pkt = Packet(10, 0.0)
        a = Transmission(0, 0.0, 1.0, pkt)
        b = Transmission(1, 0.5, 1.5, pkt)
        c = Transmission(2, 1.0, 2.0, pkt)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)  # touching intervals do not overlap

    def test_active_at(self):
        tx = Transmission(0, 1.0, 2.0, Packet(10, 0.0))
        assert not tx.active_at(0.99)
        assert tx.active_at(1.0)
        assert not tx.active_at(2.0)


class TestMedium:
    def test_busy_within_cs_range(self):
        # cs range defaults to 2x tx range = 500 m
        medium, _ = make_medium({0: Vec2(0, 0), 1: Vec2(400, 0), 2: Vec2(900, 0)})
        medium.begin(0, 0.0, 0.001, Packet(10, 0.0))
        assert medium.busy_for(1, 0.0005)  # 400 m < 500 m: sensed
        assert not medium.busy_for(2, 0.0005)  # 900 m: spatial reuse

    def test_sender_senses_own_transmission(self):
        medium, _ = make_medium({0: Vec2(0, 0)})
        medium.begin(0, 0.0, 0.001, Packet(10, 0.0))
        assert medium.busy_for(0, 0.0005)

    def test_idle_after_end(self):
        medium, _ = make_medium({0: Vec2(0, 0), 1: Vec2(100, 0)})
        medium.begin(0, 0.0, 0.001, Packet(10, 0.0))
        assert not medium.busy_for(1, 0.002)

    def test_collision_from_overlapping_in_range_sender(self):
        medium, _ = make_medium({0: Vec2(0, 0), 1: Vec2(200, 0), 2: Vec2(400, 0)})
        tx = medium.begin(0, 0.0, 0.001, Packet(10, 0.0))
        medium.begin(2, 0.0005, 0.0015, Packet(10, 0.0))  # hidden terminal for 0
        assert medium.collided(tx, 1)  # node 1 hears both

    def test_no_collision_when_interferer_far(self):
        medium, _ = make_medium({0: Vec2(0, 0), 1: Vec2(100, 0), 2: Vec2(2000, 0)})
        tx = medium.begin(0, 0.0, 0.001, Packet(10, 0.0))
        medium.begin(2, 0.0, 0.001, Packet(10, 0.0))
        assert not medium.collided(tx, 1)

    def test_half_duplex_receiver(self):
        medium, _ = make_medium({0: Vec2(0, 0), 1: Vec2(100, 0)})
        tx = medium.begin(0, 0.0, 0.001, Packet(10, 0.0))
        medium.begin(1, 0.0005, 0.0015, Packet(10, 0.0))  # receiver transmits too
        assert medium.collided(tx, 1)

    def test_no_collision_sequential(self):
        medium, _ = make_medium({0: Vec2(0, 0), 1: Vec2(100, 0), 2: Vec2(150, 0)})
        tx = medium.begin(0, 0.0, 0.001, Packet(10, 0.0))
        medium.begin(2, 0.001, 0.002, Packet(10, 0.0))  # starts exactly at end
        assert not medium.collided(tx, 1)

    def test_prune_keeps_recent(self):
        medium, _ = make_medium({0: Vec2(0, 0)})
        for i in range(100):
            medium.begin(0, i * 0.001, i * 0.001 + 0.0005, Packet(10, 0.0))
        assert medium.total_transmissions == 100
        assert len(medium._transmissions) < 100  # old entries pruned

    def test_prune_horizon_stretches_to_longest_airtime(self):
        """An oversized packet keeps its overlap history alive."""
        medium, _ = make_medium({0: Vec2(0, 0), 1: Vec2(100, 0), 2: Vec2(150, 0)})
        tx = medium.begin(0, 0.0, 1.0, Packet(10, 0.0))  # 1 s airtime
        medium.begin(2, 0.5, 1.5, Packet(10, 0.0))
        assert tx in medium._transmissions
        assert medium.collided(tx, 1)

    def test_lost_receivers_matches_collided(self):
        positions = {i: Vec2(i * 60.0, 0.0) for i in range(30)}
        medium, _ = make_medium(positions)
        tx = medium.begin(0, 0.0, 0.001, Packet(10, 0.0))
        # Several overlapping interferers at varying ranges plus one
        # receiver that transmits itself (half-duplex case).
        medium.begin(20, 0.0002, 0.0012, Packet(10, 0.0))
        medium.begin(29, 0.0004, 0.0014, Packet(10, 0.0))
        medium.begin(5, 0.0006, 0.0016, Packet(10, 0.0))
        receivers = list(range(1, 30))
        lost = medium.lost_receivers(tx, receivers)
        assert lost == {r for r in receivers if medium.collided(tx, r)}

    def test_lost_receivers_no_interference(self):
        medium, _ = make_medium({0: Vec2(0, 0), 1: Vec2(100, 0)})
        tx = medium.begin(0, 0.0, 0.001, Packet(10, 0.0))
        assert medium.lost_receivers(tx, [1]) == set()

    def test_lost_receivers_matrix_path_matches_collided(self):
        """With a topology attached (static nodes), the batched
        senders-by-receivers matrix agrees with per-pair collided()."""
        from repro.geometry.field import Field
        from repro.mobility.static import StaticPosition
        from repro.topology import TopologyIndex

        positions = {i: Vec2((i * 97) % 2000, (i * 53) % 1500) for i in range(40)}
        config = ChannelConfig(shadow_sigma_db=0.0, fast_sigma_db=0.0)
        channel = ChannelModel(config, RandomStreams(5), lambda nid, t: positions[nid])
        topo = TopologyIndex(Field(2000, 2000), radius=250.0)
        for nid, pos in positions.items():
            topo.add(nid, StaticPosition(pos).position)
        medium = CommonChannelMedium(channel, topology=topo)
        tx = medium.begin(0, 0.0, 0.001, Packet(10, 0.0))
        for i, sender in enumerate((30, 35, 39, 12, 25)):
            medium.begin(sender, 0.0001 * (i + 1), 0.0001 * (i + 1) + 0.001, Packet(10, 0.0))
        receivers = list(range(1, 40))
        lost = medium.lost_receivers(tx, receivers)
        assert lost == {r for r in receivers if medium.collided(tx, r)}


class TestCsmaMac:
    def test_broadcast_reaches_all_neighbours(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (100, 0), (200, 0), (600, 0)]
        )
        received = []
        for node in network.nodes():
            node.receive_control = (
                lambda pkt, frm, nid=node.id: received.append((nid, frm))
            )
        network.node(0).mac.send(Beacon(0.0, origin=0))
        sim.run(until=1.0)
        # nodes 1 (100 m) and 2 (200 m) are in decode range of 0; 3 is not
        assert sorted(received) == [(1, 0), (2, 0)]

    def test_overhead_counted_per_transmission(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (100, 0)])
        network.node(0).mac.send(Beacon(0.0, origin=0))
        sim.run(until=1.0)
        assert metrics.control_tx_count["beacon"] == 1
        assert metrics.control_bits["beacon"] == 12 * 8

    def test_queue_overflow_drops(self, sim, streams):
        network, metrics = build_static_network(
            sim,
            streams,
            [(0, 0), (100, 0)],
            mac_config=MacConfig(queue_capacity=2),
        )
        mac = network.node(0).mac
        for _ in range(10):
            mac.send(Beacon(sim.now, origin=0))
        sim.run(until=1.0)
        assert mac.dropped > 0
        assert metrics.events["mac_queue_drop"] == mac.dropped

    def test_queue_drains_in_order(self, sim, streams):
        network, _ = build_static_network(sim, streams, [(0, 0), (100, 0)])
        seen = []
        network.node(1).receive_control = lambda pkt, frm: seen.append(pkt.uid)
        beacons = [Beacon(0.0, origin=0) for _ in range(5)]
        for b in beacons:
            network.node(0).mac.send(b)
        sim.run(until=1.0)
        assert seen == [b.uid for b in beacons]

    def test_concurrent_hidden_senders_collide_in_middle(self, sim, streams):
        # 0 and 2 are 1200 m apart (out of cs range of each other) but both
        # reach 1 at 600m?? No: decode range is 250. Use 240 m spacing.
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (240, 0), (480, 0), (2000, 0)]
        )
        received = []
        network.node(1).receive_control = lambda pkt, frm: received.append(frm)
        # Disable initial defer randomness by sending many packets; with
        # both senders saturating, collisions must occur at node 1.
        for i in range(20):
            network.node(0).mac.send(Beacon(0.0, origin=0))
            network.node(2).mac.send(Beacon(0.0, origin=2))
        sim.run(until=2.0)
        # 0 and 2 are 480 m apart: within 500 m cs range, so they mostly
        # avoid each other; some receptions still occur.
        assert received, "expected some receptions"

    def test_cs_range_factor_configurable(self, sim, streams):
        network, _ = build_static_network(
            sim, streams, [(0, 0), (100, 0)], mac_config=MacConfig(cs_range_factor=3.0)
        )
        assert network.medium.cs_range_m == pytest.approx(750.0)


class TestCollisionCounters:
    """The medium separates per-receiver losses from per-tx collisions."""

    def _saturate(self, sim, streams):
        # Hidden-terminal layout: 0 and 2 are 600 m apart (beyond the
        # 500 m cs range, so they transmit concurrently) while node 2 sits
        # 360 m from receiver 1 — inside interference range.  Saturating
        # both senders forces corrupted receptions at node 1.
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (240, 0), (600, 0), (840, 0)]
        )
        for _ in range(30):
            network.node(0).mac.send(Beacon(0.0, origin=0))
            network.node(2).mac.send(Beacon(0.0, origin=2))
        sim.run(until=2.0)
        return network.medium, metrics

    def test_lost_receptions_match_collision_events(self, sim, streams):
        medium, metrics = self._saturate(sim, streams)
        assert medium.lost_receptions > 0
        assert medium.lost_receptions == metrics.events["mac_collision"]

    def test_collided_transmissions_bounded(self, sim, streams):
        medium, metrics = self._saturate(sim, streams)
        # Every collided transmission lost at least one receiver, and
        # cannot outnumber the per-receiver loss tally or the tx total.
        assert 0 < medium.collided_transmissions <= medium.lost_receptions
        assert medium.collided_transmissions <= medium.total_transmissions

    def test_total_collisions_alias(self, sim, streams):
        medium, _ = self._saturate(sim, streams)
        assert medium.total_collisions == medium.lost_receptions

    def test_record_losses_zero_is_noop(self):
        medium, _ = make_medium({0: Vec2(0, 0)})
        medium.record_losses(0)
        assert medium.lost_receptions == 0
        assert medium.collided_transmissions == 0
