"""Unit tests for metrics collection and report derivation."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.collector import DropReason, MetricsCollector
from repro.metrics.report import MetricsReport
from repro.net.packet import DataPacket


def pkt(created=0.0, src=0, dst=1):
    return DataPacket(src=src, dst=dst, seq=1, created_at=created)


class TestCollector:
    def test_delivery_and_delay(self):
        c = MetricsCollector(duration=100.0)
        p = pkt(created=1.0)
        p.record_hop(250_000.0)
        c.record_generated(p)
        c.record_delivered(p, now=1.25)
        report = c.report()
        assert report.delivered == 1
        assert report.avg_delay_ms == pytest.approx(250.0)
        assert report.delivery_pct == 100.0

    def test_duplicate_delivery_counted_once(self):
        c = MetricsCollector(100.0)
        p = pkt()
        c.record_generated(p)
        c.record_delivered(p, 1.0)
        c.record_delivered(p, 2.0)
        assert c.delivered == 1
        assert c.duplicates == 1

    def test_drop_reasons(self):
        c = MetricsCollector(100.0)
        for _ in range(3):
            c.record_dropped(pkt(), DropReason.QUEUE_FULL)
        c.record_dropped(pkt(), DropReason.NO_ROUTE)
        report = c.report()
        assert report.drops["queue_full"] == 3
        assert report.drops["no_route"] == 1
        assert report.total_drops == 4

    def test_overhead_includes_control_and_acks(self):
        c = MetricsCollector(duration=10.0)
        c.record_control_tx("rreq", 192)  # 24 B
        c.record_control_tx("rreq", 192)
        c.record_ack(160)
        report = c.report()
        assert report.overhead_kbps == pytest.approx((192 + 192 + 160) / 10.0 / 1000.0)
        assert report.control_tx_count["rreq"] == 2
        assert report.ack_bits == 160

    def test_link_throughput_and_hops(self):
        c = MetricsCollector(100.0)
        p = pkt()
        p.record_hop(250_000.0)
        p.record_hop(50_000.0)
        c.record_generated(p)
        c.record_delivered(p, 1.0)
        report = c.report()
        assert report.avg_hops == 2.0
        assert report.avg_link_throughput_kbps == pytest.approx((250 + 50) / 2.0)

    def test_throughput_series_bins(self):
        c = MetricsCollector(duration=20.0, throughput_bin_s=4.0)
        for t in (1.0, 2.0, 9.0):
            p = pkt()
            c.record_generated(p)
            c.record_delivered(p, now=t)
        report = c.report()
        assert len(report.throughput_series_kbps) == 5
        # bin 0 holds two 4096-bit packets over 4 s.
        assert report.throughput_series_kbps[0] == pytest.approx(2 * 4096 / 4.0 / 1000.0)
        assert report.throughput_series_kbps[1] == 0.0
        assert report.throughput_series_kbps[2] == pytest.approx(4096 / 4.0 / 1000.0)

    def test_events(self):
        c = MetricsCollector(10.0)
        c.record_event("x")
        c.record_event("x", 2)
        assert c.report().events["x"] == 3

    def test_empty_report_is_sane(self):
        report = MetricsCollector(10.0).report()
        assert report.avg_delay_ms == 0.0
        assert report.delivery_pct == 0.0
        assert report.avg_hops == 0.0
        assert report.avg_link_throughput_kbps == 0.0

    def test_invalid_duration(self):
        with pytest.raises(ConfigurationError):
            MetricsCollector(0.0)

    def test_summary_renders(self):
        c = MetricsCollector(10.0)
        p = pkt()
        c.record_generated(p)
        c.record_delivered(p, 0.5)
        text = c.report().summary()
        assert "delivery percentage" in text
        assert "100.0" in text


class TestPerFlowBreakdown:
    def test_flow_delivery_and_delay(self):
        c = MetricsCollector(100.0)
        a1 = DataPacket(0, 1, 1, created_at=0.0, flow_id=0)
        a2 = DataPacket(0, 1, 2, created_at=0.0, flow_id=0)
        b1 = DataPacket(2, 3, 1, created_at=0.0, flow_id=1)
        for p in (a1, a2, b1):
            c.record_generated(p)
        c.record_delivered(a1, now=0.1)
        c.record_delivered(b1, now=0.3)
        report = c.report()
        assert report.flow_delivery_pct[0] == pytest.approx(50.0)
        assert report.flow_delivery_pct[1] == pytest.approx(100.0)
        assert report.flow_avg_delay_ms[0] == pytest.approx(100.0)
        assert report.flow_avg_delay_ms[1] == pytest.approx(300.0)

    def test_flows_visible_in_scenario_run(self):
        from repro.experiments.scenario import ScenarioConfig, run_scenario

        report = run_scenario(
            ScenarioConfig(
                protocol="aodv",
                n_nodes=12,
                n_flows=3,
                duration_s=4.0,
                field_size_m=500.0,
                seed=3,
            )
        )
        assert set(report.flow_delivery_pct) <= {0, 1, 2}
        assert len(report.flow_delivery_pct) >= 1
