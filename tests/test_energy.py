"""Tests for radio energy accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.collector import MetricsCollector
from repro.metrics.energy import EnergyModel
from repro.experiments.scenario import ScenarioConfig, run_scenario


class TestEnergyModel:
    def test_per_bit_costs(self):
        model = EnergyModel(tx_nj_per_bit=700.0, rx_nj_per_bit=500.0)
        assert model.tx_joules(1_000_000) == pytest.approx(0.7)
        assert model.rx_joules(1_000_000) == pytest.approx(0.5)
        assert model.total_joules(1_000_000, 1_000_000) == pytest.approx(1.2)

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(tx_nj_per_bit=-1.0)


class TestRadioAccounting:
    def test_record_radio_accumulates(self):
        c = MetricsCollector(10.0)
        c.record_radio(tx_bits=100, rx_bits=50)
        c.record_radio(tx_bits=10)
        assert c.radio_tx_bits == 110
        assert c.radio_rx_bits == 50

    def test_warmup_gating(self):
        c = MetricsCollector(10.0, warmup_s=5.0)
        c.record_radio(tx_bits=100, now=1.0)
        c.record_radio(tx_bits=100, now=6.0)
        assert c.radio_tx_bits == 100

    def test_report_derives_energy(self):
        c = MetricsCollector(10.0)
        c.record_radio(tx_bits=1_000_000, rx_bits=1_000_000)
        report = c.report()
        assert report.energy_j == pytest.approx(1.2)
        assert report.radio_tx_bits == 1_000_000

    def test_scenario_counts_data_control_and_acks(self):
        report = run_scenario(
            ScenarioConfig(
                protocol="aodv",
                n_nodes=12,
                n_flows=3,
                duration_s=5.0,
                field_size_m=500.0,
                seed=3,
            )
        )
        assert report.radio_tx_bits > 0
        assert report.radio_rx_bits > 0
        assert report.energy_j > 0
        assert report.energy_mj_per_delivered_kbit > 0

    def test_link_state_burns_more_energy_than_aodv(self):
        """The paper's point: flooding wastes battery (Section III-D)."""
        base = dict(
            n_nodes=20, n_flows=4, duration_s=6.0, field_size_m=600.0, seed=3,
            mean_speed_kmh=36.0,
        )
        ls = run_scenario(ScenarioConfig(protocol="link_state", **base))
        aodv = run_scenario(ScenarioConfig(protocol="aodv", **base))
        assert ls.energy_j > aodv.energy_j
