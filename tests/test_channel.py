"""Unit tests for the channel subsystem: CSI, ABICM, propagation, fading."""

import math
import random

import pytest

from repro.channel.abicm import AbicmScheme, CLASS_THROUGHPUT_BPS
from repro.channel.csi import ChannelClass, CsiThresholds, HOP_DISTANCE, hop_distance
from repro.channel.fading import CompositeFadingProcess, GaussMarkovProcess
from repro.channel.propagation import PathLossModel
from repro.errors import ConfigurationError, SimulationError


class TestCsi:
    def test_classes_ordered_best_to_worst(self):
        assert ChannelClass.A < ChannelClass.B < ChannelClass.C < ChannelClass.D

    def test_hop_distances_match_paper(self):
        assert hop_distance(ChannelClass.A) == 1.0
        assert hop_distance(ChannelClass.B) == pytest.approx(5.0 / 3.0)
        assert hop_distance(ChannelClass.C) == pytest.approx(10.0 / 3.0)
        assert hop_distance(ChannelClass.D) == 5.0

    def test_hop_distance_is_rate_ratio(self):
        for cls in ChannelClass:
            expected = CLASS_THROUGHPUT_BPS[ChannelClass.A] / CLASS_THROUGHPUT_BPS[cls]
            assert HOP_DISTANCE[cls] == pytest.approx(expected)

    def test_classify_thresholds(self):
        th = CsiThresholds(a_db=18, b_db=12, c_db=6)
        assert th.classify(25.0) is ChannelClass.A
        assert th.classify(18.0) is ChannelClass.A
        assert th.classify(17.99) is ChannelClass.B
        assert th.classify(12.0) is ChannelClass.B
        assert th.classify(6.0) is ChannelClass.C
        assert th.classify(5.99) is ChannelClass.D
        assert th.classify(-50.0) is ChannelClass.D

    def test_classify_monotone_in_snr(self):
        th = CsiThresholds()
        snrs = [x * 0.5 for x in range(-20, 70)]
        classes = [th.classify(s) for s in snrs]
        assert classes == sorted(classes, reverse=True)

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            CsiThresholds(a_db=10, b_db=12, c_db=6)


class TestAbicm:
    def test_paper_throughputs(self):
        scheme = AbicmScheme()
        assert scheme.throughput(ChannelClass.A) == 250_000
        assert scheme.throughput(ChannelClass.B) == 150_000
        assert scheme.throughput(ChannelClass.C) == 75_000
        assert scheme.throughput(ChannelClass.D) == 50_000

    def test_transmission_time(self):
        scheme = AbicmScheme()
        # 512-byte packet on a class-A link: 4096 bits / 250 kbps
        assert scheme.transmission_time(ChannelClass.A, 4096) == pytest.approx(0.016384)
        assert scheme.transmission_time(ChannelClass.D, 4096) == pytest.approx(0.08192)

    def test_hop_distance_consistent_with_csi(self):
        scheme = AbicmScheme()
        for cls in ChannelClass:
            assert scheme.hop_distance(cls) == pytest.approx(HOP_DISTANCE[cls])

    def test_rejects_incomplete_table(self):
        with pytest.raises(ConfigurationError):
            AbicmScheme(throughput_bps={ChannelClass.A: 250000.0})

    def test_rejects_non_monotone_table(self):
        bad = dict(CLASS_THROUGHPUT_BPS)
        bad[ChannelClass.D] = 500_000.0
        with pytest.raises(ConfigurationError):
            AbicmScheme(throughput_bps=bad)

    def test_rejects_negative_bits(self):
        with pytest.raises(ConfigurationError):
            AbicmScheme().transmission_time(ChannelClass.A, -1)


class TestPathLoss:
    def test_mean_snr_decreases_with_distance(self):
        pl = PathLossModel()
        snrs = [pl.mean_snr_db(d) for d in (30, 60, 120, 240)]
        assert snrs == sorted(snrs, reverse=True)
        assert snrs[0] > snrs[-1]

    def test_plateau_below_reference(self):
        pl = PathLossModel()
        assert pl.mean_snr_db(1.0) == pl.mean_snr_db(pl.d_ref)

    def test_in_range_boundary(self):
        pl = PathLossModel(tx_range=250.0)
        assert pl.in_range(250.0)
        assert not pl.in_range(250.001)

    def test_default_calibration_class_bands(self):
        """With zero fading, distance bands map to classes A/B/C (conftest)."""
        pl = PathLossModel()
        th = CsiThresholds()
        assert th.classify(pl.mean_snr_db(80.0)) is ChannelClass.A
        assert th.classify(pl.mean_snr_db(130.0)) is ChannelClass.B
        assert th.classify(pl.mean_snr_db(200.0)) is ChannelClass.C

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            PathLossModel(d_ref=0)
        with pytest.raises(ConfigurationError):
            PathLossModel(alpha=-1)
        with pytest.raises(ConfigurationError):
            PathLossModel(tx_range=0)


class TestGaussMarkov:
    def test_stationary_statistics(self):
        rng = random.Random(42)
        proc = GaussMarkovProcess(sigma_db=4.0, tau_s=1.0, rng=rng)
        samples = [proc.sample(t * 5.0) for t in range(1, 3000)]  # decorrelated
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert abs(mean) < 0.5
        assert math.sqrt(var) == pytest.approx(4.0, rel=0.15)

    def test_correlation_decays_with_lag(self):
        rng = random.Random(7)
        proc = GaussMarkovProcess(sigma_db=4.0, tau_s=1.0, rng=rng)
        # Short-lag samples should be closer than long-lag samples on average.
        short_diffs, long_diffs = [], []
        t = 0.0
        prev = proc.sample(t)
        for _ in range(500):
            t += 0.05
            cur = proc.sample(t)
            short_diffs.append(abs(cur - prev))
            prev = cur
        proc2 = GaussMarkovProcess(sigma_db=4.0, tau_s=1.0, rng=random.Random(8))
        t = 0.0
        prev = proc2.sample(t)
        for _ in range(500):
            t += 5.0
            cur = proc2.sample(t)
            long_diffs.append(abs(cur - prev))
            prev = cur
        assert sum(short_diffs) / len(short_diffs) < sum(long_diffs) / len(long_diffs)

    def test_same_time_sample_is_cached(self):
        proc = GaussMarkovProcess(4.0, 1.0, random.Random(1))
        a = proc.sample(2.0)
        b = proc.sample(2.0)
        assert a == b

    def test_backwards_sampling_rejected(self):
        proc = GaussMarkovProcess(4.0, 1.0, random.Random(1))
        proc.sample(5.0)
        with pytest.raises(SimulationError):
            proc.sample(1.0)

    def test_zero_sigma_is_constant_zero(self):
        proc = GaussMarkovProcess(0.0, 1.0, random.Random(1))
        assert proc.sample(0.0) == 0.0
        assert proc.sample(100.0) == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            GaussMarkovProcess(-1.0, 1.0, random.Random(1))
        with pytest.raises(ConfigurationError):
            GaussMarkovProcess(1.0, 0.0, random.Random(1))


class TestCompositeFading:
    def test_total_sigma(self):
        proc = CompositeFadingProcess(
            random.Random(1), shadow_sigma_db=3.0, fast_sigma_db=4.0
        )
        assert proc.total_sigma_db == pytest.approx(5.0)

    def test_sample_is_sum_of_components(self):
        # With one component zeroed, the composite equals the other.
        rng = random.Random(3)
        proc = CompositeFadingProcess(
            rng, shadow_sigma_db=0.0, fast_sigma_db=4.0, fast_tau_s=1.0
        )
        values = [proc.sample(t * 1.0) for t in range(100)]
        assert any(v != 0.0 for v in values)
