"""Reports and aggregates must serialise cleanly (campaign persistence)."""

import dataclasses
import json

import pytest

from repro.analysis.stats import aggregate_reports
from repro.experiments.scenario import ScenarioConfig, run_scenario

TINY = dict(n_nodes=12, n_flows=3, duration_s=4.0, field_size_m=500.0, seed=3)


class TestReportSerialization:
    def test_report_is_json_serialisable(self):
        report = run_scenario(ScenarioConfig(protocol="rica", **TINY))
        payload = dataclasses.asdict(report)
        text = json.dumps(payload)
        restored = json.loads(text)
        assert restored["generated"] == report.generated
        assert restored["avg_delay_ms"] == report.avg_delay_ms

    def test_aggregate_is_json_serialisable(self):
        reports = [
            run_scenario(ScenarioConfig(protocol="aodv", **{**TINY, "seed": s}))
            for s in (1, 2)
        ]
        agg = aggregate_reports(reports)
        payload = dataclasses.asdict(agg)
        restored = json.loads(json.dumps(payload))
        assert restored["trials"] == 2

    def test_report_immutable(self):
        report = run_scenario(ScenarioConfig(protocol="aodv", **TINY))
        with pytest.raises(dataclasses.FrozenInstanceError):
            report.delivered = 99

    def test_flow_keys_are_ints(self):
        """Per-flow maps key by integer flow id (JSON round-trips as str —
        the campaign layer documents this; here we pin the in-memory type)."""
        report = run_scenario(ScenarioConfig(protocol="aodv", **TINY))
        assert all(isinstance(k, int) for k in report.flow_delivery_pct)
