"""Property-based tests (hypothesis) for core invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.channel.csi import ChannelClass, CsiThresholds, hop_distance
from repro.geometry.field import Field
from repro.mobility.waypoint import RandomWaypoint
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams, derive_seed


class TestEngineProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_events_always_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda t=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_cancellation_removes_exactly_the_cancelled(self, n_keep, n_cancel):
        sim = Simulator()
        fired = []
        for i in range(n_keep):
            sim.schedule(1.0 + i, fired.append, ("keep", i))
        handles = [
            sim.schedule(1.5 + i, fired.append, ("cancel", i)) for i in range(n_cancel)
        ]
        for h in handles:
            h.cancel()
        sim.run()
        assert len(fired) == n_keep
        assert all(tag == "keep" for tag, _ in fired)


class TestQueueProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["push", "pop"]), st.integers(0, 100)),
            max_size=200,
        ),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_exceeds_capacity_and_preserves_fifo(self, ops, capacity):
        q = DropTailQueue(capacity)
        now = 0.0
        model = []
        for op, value in ops:
            now += 0.001
            if op == "push":
                accepted = q.push(value, now)
                if accepted:
                    model.append(value)
                assert accepted == (len(model) <= capacity) or True
            else:
                got = q.pop(now)
                expected = model.pop(0) if model else None
                assert got == expected
            assert len(q) <= capacity
            assert len(q) == len(model)

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_drop_counts_balance(self, capacity, pushes):
        q = DropTailQueue(capacity)
        accepted = sum(1 for i in range(pushes) if q.push(i, 0.0))
        assert accepted + q.drops_full == pushes
        assert accepted == min(pushes, capacity)


class TestWaypointProperties:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
        st.lists(st.floats(min_value=0.0, max_value=600.0, allow_nan=False), max_size=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_position_always_inside_field(self, seed, max_speed, times):
        field = Field(1000, 1000)
        model = RandomWaypoint(field, random.Random(seed), max_speed)
        for t in times:
            assert field.contains(model.position(t))

    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.lists(
            st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
            min_size=2,
            max_size=10,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_queries_order_independent(self, seed, times):
        field = Field(1000, 1000)
        forward = RandomWaypoint(field, random.Random(seed), 15.0)
        shuffled = RandomWaypoint(field, random.Random(seed), 15.0)
        expected = {t: forward.position(t) for t in sorted(times)}
        for t in times:
            assert shuffled.position(t) == expected[t]


class TestCsiProperties:
    @given(st.floats(min_value=-40.0, max_value=60.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_every_snr_maps_to_a_class(self, snr):
        cls = CsiThresholds().classify(snr)
        assert cls in ChannelClass

    @given(
        st.floats(min_value=-40.0, max_value=60.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_better_snr_never_worse_class(self, snr, boost):
        th = CsiThresholds()
        assert th.classify(snr + boost) <= th.classify(snr)

    @given(st.sampled_from(list(ChannelClass)))
    @settings(max_examples=20, deadline=None)
    def test_hop_distance_at_least_one(self, cls):
        assert hop_distance(cls) >= 1.0


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1), st.text(max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_derive_seed_stable_and_bounded(self, seed, name):
        a = derive_seed(seed, name)
        assert a == derive_seed(seed, name)
        assert 0 <= a < 2**64

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_streams_isolated(self, seed):
        streams = RandomStreams(seed)
        a = streams.stream("a")
        before = a.random()
        streams.stream("b").random()  # consuming b must not affect a
        streams2 = RandomStreams(seed)
        a2 = streams2.stream("a")
        assert a2.random() == before
