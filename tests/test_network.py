"""Unit tests for the Node and Network containers."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.geometry.vector import Vec2
from repro.mobility.static import StaticPosition
from repro.net.node import Node
from repro.net.packet import DataPacket
from repro.routing.packets import Beacon

from tests.helpers import build_static_network


class TestNode:
    def test_position_delegates_to_mobility(self):
        node = Node(3, StaticPosition(Vec2(10, 20)))
        assert node.position(5.0) == Vec2(10, 20)

    def test_send_without_mac_raises(self):
        node = Node(0, StaticPosition(Vec2(0, 0)))
        with pytest.raises(ConfigurationError):
            node.send_control(Beacon(0.0, origin=0))
        with pytest.raises(ConfigurationError):
            node.send_data(DataPacket(0, 1, 1, 0.0), 1)

    def test_receive_without_routing_is_noop(self):
        node = Node(0, StaticPosition(Vec2(0, 0)))
        node.receive_control(Beacon(0.0, origin=1), from_id=1)  # no exception
        node.receive_data(DataPacket(1, 0, 1, 0.0), from_id=1)

    def test_attach_routing(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (100, 0)])
        from tests.helpers import attach_protocols

        protos = attach_protocols(network, metrics, "aodv")
        assert network.node(0).routing is protos[0]


class TestNetwork:
    def test_node_ids_sequential(self, sim, streams):
        network, _ = build_static_network(sim, streams, [(0, 0), (100, 0), (200, 0)])
        assert network.node_ids == [0, 1, 2]
        assert network.node_count == 3

    def test_duplicate_node_id_rejected(self, sim, streams):
        network, _ = build_static_network(sim, streams, [(0, 0)])
        with pytest.raises(TopologyError):
            network.add_node(StaticPosition(Vec2(1, 1)), node_id=0)

    def test_unknown_node_rejected(self, sim, streams):
        network, _ = build_static_network(sim, streams, [(0, 0)])
        with pytest.raises(TopologyError):
            network.node(99)

    def test_neighbors_respect_range(self, sim, streams):
        network, _ = build_static_network(
            sim, streams, [(0, 0), (100, 0), (240, 0), (600, 0)]
        )
        assert sorted(network.neighbors(0, 0.0)) == [1, 2]
        assert sorted(network.neighbors(1, 0.0)) == [0, 2]
        assert sorted(network.neighbors(3, 0.0)) == []

    def test_neighbors_exclude_self(self, sim, streams):
        network, _ = build_static_network(sim, streams, [(0, 0), (100, 0)])
        assert 0 not in network.neighbors(0, 0.0)

    def test_adjacency_consistent_with_neighbors(self, sim, streams):
        network, _ = build_static_network(
            sim, streams, [(0, 0), (100, 0), (240, 0), (600, 0)]
        )
        adjacency = network.adjacency(0.0)
        for nid in network.node_ids:
            assert adjacency[nid] == network.neighbors(nid, 0.0)

    def test_adjacency_symmetric(self, sim, streams):
        network, _ = build_static_network(
            sim, streams, [(0, 0), (100, 0), (240, 0), (600, 0)]
        )
        adjacency = network.adjacency(0.0)
        for u, nbrs in adjacency.items():
            for v in nbrs:
                assert u in adjacency[v]

    def test_nodes_returns_all(self, sim, streams):
        network, _ = build_static_network(sim, streams, [(0, 0), (100, 0)])
        assert [n.id for n in network.nodes()] == [0, 1]

    def test_position_query(self, sim, streams):
        network, _ = build_static_network(sim, streams, [(5, 7)])
        assert network.position(0, 0.0) == Vec2(5, 7)


class TestBatchDispatch:
    """deliver_control_batch and its precomputed handler table."""

    def test_batch_skips_lost_receivers(self, sim, streams):
        from repro.mac.csma import ReceptionBatch

        network, _ = build_static_network(sim, streams, [(0, 0), (100, 0), (200, 0)])
        received = []
        for node in network.nodes():
            node.receive_control = lambda pkt, frm, nid=node.id: received.append(nid)
        pkt = Beacon(0.0, origin=0)
        network.deliver_control_batch(ReceptionBatch(pkt, 0, [1, 2], {2}, 0.0))
        assert received == [1]

    def test_batch_without_losses_reaches_all(self, sim, streams):
        from repro.mac.csma import ReceptionBatch

        network, _ = build_static_network(sim, streams, [(0, 0), (100, 0), (200, 0)])
        received = []
        for node in network.nodes():
            node.receive_control = lambda pkt, frm, nid=node.id: received.append((nid, frm))
        batch = ReceptionBatch(Beacon(0.0, origin=0), 0, [1, 2], set(), 0.0)
        network.deliver_control_batch(batch)
        assert received == [(1, 0), (2, 0)]
        assert batch.delivered_count == 2

    def test_handler_table_rebuilds_after_invalidate(self, sim, streams):
        from repro.mac.csma import ReceptionBatch

        network, _ = build_static_network(sim, streams, [(0, 0), (100, 0)])
        pkt = Beacon(0.0, origin=0)
        network.deliver_control_batch(ReceptionBatch(pkt, 0, [1], set(), 0.0))
        # The table snapshotted the default handler; a late stub needs an
        # explicit invalidation to be seen.
        received = []
        network.node(1).receive_control = lambda p, frm: received.append(p)
        network.invalidate_dispatch()
        network.deliver_control_batch(ReceptionBatch(pkt, 0, [1], set(), 0.0))
        assert received == [pkt]

    def test_add_node_invalidates_handler_table(self, sim, streams):
        from repro.mac.csma import ReceptionBatch
        from repro.mobility.static import StaticPosition

        network, _ = build_static_network(sim, streams, [(0, 0), (100, 0)])
        pkt = Beacon(0.0, origin=0)
        network.deliver_control_batch(ReceptionBatch(pkt, 0, [1], set(), 0.0))
        node = network.add_node(StaticPosition(Vec2(50, 0)))
        received = []
        node.receive_control = lambda p, frm: received.append(p)
        network.deliver_control_batch(ReceptionBatch(pkt, 0, [node.id], set(), 0.0))
        assert received == [pkt]
