"""The public API surface: everything advertised in __all__ importable
and the README quickstart working verbatim."""

import repro


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version_matches_pyproject(self):
        import re
        from pathlib import Path

        pyproject = Path(repro.__file__).parents[2] / "pyproject.toml"
        if not pyproject.exists():  # installed without the source tree
            return
        text = pyproject.read_text()
        match = re.search(r'^version = "([^"]+)"', text, re.MULTILINE)
        assert match is not None
        assert repro.__version__ == match.group(1)

    def test_readme_quickstart(self):
        """The exact snippet from README.md (shortened duration)."""
        from repro import ScenarioConfig, run_scenario

        report = run_scenario(
            ScenarioConfig(
                protocol="rica",
                n_nodes=50,
                mean_speed_kmh=36.0,
                rate_pps=10.0,
                duration_s=5.0,
                seed=7,
            )
        )
        text = report.summary()
        assert "delivery percentage" in text

    def test_figure_api_quickstart(self):
        from repro import run_figure

        result = run_figure(
            "fig5a", duration_s=3.0, trials=1, protocols=["aodv"], n_nodes=12
        )
        assert "fig5a" in result.format_table()

    def test_protocol_listing_stable(self):
        assert repro.available_protocols() == [
            "rica",
            "bgca",
            "abr",
            "aodv",
            "link_state",
        ]

    def test_figure_listing_stable(self):
        assert len(repro.list_figures()) == 10
