"""Unit tests for the drop-tail queue with residence timeout."""

import pytest

from repro.errors import ConfigurationError
from repro.net.queue import DropTailQueue, QueueDrop


class TestCapacity:
    def test_push_pop_fifo(self):
        q = DropTailQueue(5)
        for i in range(3):
            assert q.push(i, now=float(i))
        assert [q.pop(10.0) for _ in range(3)] == [0, 1, 2]
        assert q.pop(10.0) is None

    def test_drop_when_full(self):
        drops = []
        q = DropTailQueue(2, on_drop=lambda item, r: drops.append((item, r)))
        assert q.push("a", 0.0)
        assert q.push("b", 0.0)
        assert not q.push("c", 0.0)
        assert drops == [("c", QueueDrop.FULL)]
        assert q.drops_full == 1
        assert len(q) == 2

    def test_is_full(self):
        q = DropTailQueue(1)
        assert not q.is_full
        q.push("a", 0.0)
        assert q.is_full

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            DropTailQueue(0)


class TestResidence:
    def test_expired_items_dropped_on_pop(self):
        drops = []
        q = DropTailQueue(10, max_residence=3.0, on_drop=lambda i, r: drops.append((i, r)))
        q.push("old", 0.0)
        q.push("fresh", 2.5)
        assert q.pop(4.0) == "fresh"  # "old" exceeded 3 s
        assert drops == [("old", QueueDrop.EXPIRED)]
        assert q.drops_expired == 1

    def test_expire_returns_count(self):
        q = DropTailQueue(10, max_residence=1.0)
        q.push("a", 0.0)
        q.push("b", 0.5)
        assert q.expire(2.0) == 2

    def test_push_expires_first_making_room(self):
        q = DropTailQueue(1, max_residence=1.0)
        q.push("old", 0.0)
        assert q.push("new", 5.0)  # old expired, so there is room
        assert q.pop(5.0) == "new"

    def test_exact_boundary_not_expired(self):
        q = DropTailQueue(10, max_residence=3.0)
        q.push("a", 1.0)
        assert q.pop(4.0) == "a"  # residence == 3.0 exactly: still valid

    def test_invalid_residence(self):
        with pytest.raises(ConfigurationError):
            DropTailQueue(1, max_residence=0.0)


class TestAuxiliary:
    def test_peek_does_not_remove(self):
        q = DropTailQueue(5)
        q.push("a", 0.0)
        assert q.peek(0.0) == "a"
        assert len(q) == 1

    def test_requeue_front_preserves_age(self):
        drops = []
        q = DropTailQueue(5, max_residence=3.0, on_drop=lambda i, r: drops.append(i))
        q.push("a", 0.0)
        item = q.pop(1.0)
        q.requeue_front(item, 0.0)  # keep original age
        assert q.pop(4.0) is None  # expired based on the original arrival
        assert drops == ["a"]

    def test_flush_returns_all_without_drop_callbacks(self):
        drops = []
        q = DropTailQueue(5, on_drop=lambda i, r: drops.append(i))
        q.push("a", 0.0)
        q.push("b", 0.0)
        assert q.flush() == ["a", "b"]
        assert drops == []
        assert len(q) == 0

    def test_drain_returns_timestamps(self):
        q = DropTailQueue(5)
        q.push("a", 1.0)
        q.push("b", 2.0)
        assert q.drain() == [(1.0, "a"), (2.0, "b")]

    def test_entries_snapshot(self):
        q = DropTailQueue(5)
        q.push("a", 1.0)
        assert q.entries() == [(1.0, "a")]
        assert len(q) == 1

    def test_oldest_enqueue_time(self):
        q = DropTailQueue(5)
        assert q.oldest_enqueue_time is None
        q.push("a", 2.5)
        assert q.oldest_enqueue_time == 2.5

    def test_bool(self):
        q = DropTailQueue(5)
        assert not q
        q.push("a", 0.0)
        assert q
