"""Tests for the shape-check utilities."""

import math

import pytest

from repro.analysis.shapes import (
    ShapeCheck,
    crossover_point,
    evaluate_checks,
    is_decreasing,
    is_increasing,
    ordering_holds,
    ratio,
    trend_slope,
)
from repro.errors import ConfigurationError


class TestOrdering:
    def test_strict_ordering(self):
        values = {"abr": 10.0, "aodv": 20.0, "rica": 50.0}
        assert ordering_holds(values, ["abr", "aodv", "rica"])
        assert not ordering_holds(values, ["rica", "aodv", "abr"])

    def test_tolerance_allows_near_ties(self):
        values = {"a": 10.5, "b": 10.0}
        assert not ordering_holds(values, ["a", "b"])
        assert ordering_holds(values, ["a", "b"], tolerance=0.10)

    def test_equal_values_pass(self):
        assert ordering_holds({"a": 5.0, "b": 5.0}, ["a", "b"])


class TestTrends:
    def test_slope_of_line(self):
        xs = [0.0, 1.0, 2.0, 3.0]
        ys = [1.0, 3.0, 5.0, 7.0]
        assert trend_slope(xs, ys) == pytest.approx(2.0)

    def test_increasing_decreasing(self):
        xs = [0, 10, 20, 30]
        assert is_increasing(xs, [1, 2, 2.5, 4])
        assert is_decreasing(xs, [4, 3, 2.5, 1])
        assert not is_increasing(xs, [4, 3, 2, 1])

    def test_flat_series_slope_zero(self):
        assert trend_slope([0, 1, 2], [5, 5, 5]) == 0.0

    def test_degenerate_xs(self):
        assert trend_slope([1, 1, 1], [1, 2, 3]) == 0.0

    def test_invalid_input(self):
        with pytest.raises(ConfigurationError):
            trend_slope([1], [1])
        with pytest.raises(ConfigurationError):
            trend_slope([1, 2], [1, 2, 3])


class TestCrossover:
    def test_finds_crossover(self):
        xs = [0.0, 10.0, 20.0]
        abr = [5.0, 15.0, 25.0]  # grows fast (ABR delay)
        aodv = [10.0, 15.0, 20.0]
        x = crossover_point(xs, abr, aodv)
        assert x == pytest.approx(10.0)

    def test_interpolates_between_points(self):
        xs = [0.0, 10.0]
        a = [0.0, 10.0]
        b = [5.0, 5.0]
        assert crossover_point(xs, a, b) == pytest.approx(5.0)

    def test_no_crossover_is_nan(self):
        xs = [0.0, 10.0]
        assert math.isnan(crossover_point(xs, [1.0, 2.0], [5.0, 6.0]))


class TestHelpers:
    def test_ratio(self):
        assert ratio(10.0, 2.0) == 5.0
        assert ratio(1.0, 0.0) == float("inf")

    def test_evaluate_checks(self):
        checks = [ShapeCheck("a", True, "ok"), ShapeCheck("b", False)]
        passed, total, lines = evaluate_checks(checks)
        assert (passed, total) == (1, 2)
        assert lines[0].startswith("[PASS] a")
        assert lines[1].startswith("[FAIL] b")
