"""Behavioural tests for RICA (the paper's protocol) on staged topologies."""

import pytest

from repro.core.rica import RicaConfig
from repro.geometry.field import Field
from repro.geometry.vector import Vec2
from repro.metrics.collector import MetricsCollector
from repro.mobility.path import WaypointPath
from repro.mobility.static import StaticPosition
from repro.net.network import Network

from tests.helpers import (
    attach_protocols,
    build_static_network,
    make_deterministic_channel_config,
    send_app_packet,
)


class TestDiscovery:
    def test_multihop_delivery(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(i * 150.0, 0.0) for i in range(4)]
        )
        attach_protocols(network, metrics, "rica")
        send_app_packet(network, metrics, 0, 3)
        sim.run(until=3.0)
        assert metrics.delivered == 1

    def test_discovery_prefers_high_throughput_route(self, sim, streams):
        """Two 2-hop routes 0->2: via node 1 (class A links, CSI distance 2)
        or via node 3 (class C links, CSI distance 6.67).  RICA must pick
        the class-A route even though both have 2 plain hops."""
        positions = [
            (0, 0),      # 0 source
            (95, 0),     # 1 relay with class-A links (95 m and 95 m)
            (190, 0),    # 2 destination
            (95, -180),  # 3 relay with class-C links (~204 m legs)
        ]
        network, metrics = build_static_network(sim, streams, positions)
        attach_protocols(network, metrics, "rica")
        send_app_packet(network, metrics, 0, 2)
        sim.run(until=3.0)
        assert metrics.delivered == 1
        # The delivered packet crossed two 250 kbps links.
        assert metrics.link_rate_sum_bps == pytest.approx(2 * 250_000.0)

    def test_destination_starts_csi_checking(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(i * 150.0, 0.0) for i in range(3)]
        )
        attach_protocols(network, metrics, "rica")
        send_app_packet(network, metrics, 0, 2)
        sim.run(until=4.5)
        assert metrics.events.get("rica_check_broadcast", 0) >= 3  # ~1/s
        assert metrics.control_tx_count.get("csi_check", 0) > 0

    def test_checking_stops_when_flow_dries_up(self, sim, streams):
        config = RicaConfig(dest_inactivity_s=2.0)
        network, metrics = build_static_network(
            sim, streams, [(i * 150.0, 0.0) for i in range(3)]
        )
        attach_protocols(network, metrics, "rica", config)
        send_app_packet(network, metrics, 0, 2)
        sim.run(until=10.0)
        assert metrics.events.get("rica_check_stopped", 0) == 1
        broadcasts_at_stop = metrics.events.get("rica_check_broadcast", 0)
        sim.run(until=15.0)
        assert metrics.events.get("rica_check_broadcast", 0) == broadcasts_at_stop


class TestRouteSwitching:
    def _two_route_network(self, sim, streams):
        """0 -> 2 via relay 1 (short route) and relay 3.  Relay 1 starts
        close (class A legs) then drifts to class-C leg distance, while
        relay 3 stays class A; RICA should switch to relay 3."""
        metrics = MetricsCollector(100.0)
        network = Network(
            sim,
            Field(5000, 5000),
            streams,
            metrics,
            channel_config=make_deterministic_channel_config(),
        )
        network.add_node(StaticPosition(Vec2(0, 0)))       # 0 source
        network.add_node(                                   # 1 degrading relay
            WaypointPath(
                [
                    (0.0, Vec2(95, 0)),
                    (2.0, Vec2(95, 0)),
                    (4.0, Vec2(95, 160)),  # legs become ~186 m: class C
                ]
            )
        )
        network.add_node(StaticPosition(Vec2(190, 0)))      # 2 destination
        # Legs 0-3 and 3-2 are ~98.2 m: class A, CSI distance 2.0 total —
        # strictly better than the 190 m direct class-C link (10/3).
        network.add_node(StaticPosition(Vec2(95, -25)))     # 3 steady class-A relay
        return network, metrics

    def test_switches_to_better_route_on_csi_change(self, sim, streams):
        network, metrics = self._two_route_network(sim, streams)
        attach_protocols(network, metrics, "rica")
        # Keep the flow alive so the destination keeps checking.
        seq = [0]

        def periodic_send():
            seq[0] += 1
            send_app_packet(network, metrics, 0, 2, seq=seq[0])

        from repro.sim.timers import PeriodicTimer

        PeriodicTimer(sim, 0.2, periodic_send, start_delay=0.0).start()
        sim.run(until=10.0)
        assert metrics.events.get("rica_route_switch", 0) >= 1
        assert metrics.control_tx_count.get("rupd", 0) >= 1
        # After the switch the source's next hop is relay 3.
        entry = network.node(0).routing.table.get_valid(2, sim.now, max_idle=None)
        assert entry is not None and entry.next_hop == 3
        # Deliveries continued throughout.
        assert metrics.delivered >= 40

    def test_old_route_expires_after_idle_timeout(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (150, 0), (300, 0)]
        )
        attach_protocols(network, metrics, "rica")
        send_app_packet(network, metrics, 0, 2)
        sim.run(until=1.0)
        assert metrics.delivered == 1
        relay = network.node(1).routing
        assert relay.table.entry(2) is not None
        # After >1 s without data the relay's entry is lazily invalid.
        sim.run(until=5.0)
        assert relay.table.get_valid(2, sim.now, max_idle=1.0) is None


class TestMaintenance:
    def test_reer_falls_back_to_discovery_without_fresh_candidates(
        self, sim, streams
    ):
        """Break the only route: the source must re-flood an RREQ."""
        metrics = MetricsCollector(100.0)
        network = Network(
            sim,
            Field(5000, 5000),
            streams,
            metrics,
            channel_config=make_deterministic_channel_config(),
        )
        network.add_node(StaticPosition(Vec2(0, 0)))
        network.add_node(
            WaypointPath([(0.0, Vec2(150, 0)), (1.5, Vec2(150, 0)), (1.8, Vec2(150, 3000))])
        )
        network.add_node(StaticPosition(Vec2(300, 0)))
        network.add_node(StaticPosition(Vec2(150, 140)))  # alternative relay
        attach_protocols(network, metrics, "rica")
        send_app_packet(network, metrics, 0, 2, seq=1)
        sim.run(until=1.0)
        assert metrics.delivered == 1
        sim.run(until=4.0)  # node 1 gone
        send_app_packet(network, metrics, 0, 2, seq=2)
        sim.run(until=9.0)
        assert metrics.delivered == 2  # recovered via node 3

    def test_update_flag_set_on_route_change_only(self, sim, streams):
        """The first data packet after a route *change* carries the update
        flag (paper Section II-C); re-selections of the same next hop do
        not set it."""
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (95, 25), (190, 0), (95, -25)]
        )
        attach_protocols(network, metrics, "rica")
        source = network.node(0).routing
        send_app_packet(network, metrics, 0, 2, seq=1)
        sim.run(until=0.5)
        first_hop = source.table.get_valid(2, sim.now).next_hop
        # Re-selecting the same neighbour does not mark an update...
        source._switch_route(2, first_hop, bcast_id=99, csi=2.0)
        assert not source._pending_update_flag.get(2, False)
        # ...but switching to the other relay does.
        other = 3 if first_hop == 1 else 1
        source._switch_route(2, other, bcast_id=100, csi=2.0)
        assert source._pending_update_flag.get(2, False)
        # The first packet dispatched after the change carries the flag and
        # consumes it; the next one is clean.
        first = send_app_packet(network, metrics, 0, 2, seq=2)
        second = send_app_packet(network, metrics, 0, 2, seq=3)
        assert first.update_flag is True
        assert second.update_flag is False
        assert not source._pending_update_flag.get(2, False)


class TestReerWithFreshCandidate:
    def test_reer_recovers_from_fresh_csi_candidate(self, sim, streams):
        """Section II-D rule 1: a source holding fresh checking-packet
        candidates answers a REER with a route switch, not a re-flood."""
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (95, 25), (190, 0), (95, -25)]
        )
        attach_protocols(network, metrics, "rica")
        source = network.node(0).routing
        send_app_packet(network, metrics, 0, 2, seq=1)
        sim.run(until=1.5)  # discovery done, first checking broadcast seen
        assert 2 in source._fresh_candidate
        floods_before = metrics.events.get("discovery_started", 0)
        # Simulate a REER reaching the source from its current downstream.
        current_hop = source.table.get_valid(2, sim.now, max_idle=None).next_hop
        from repro.routing.packets import RouteError

        reer = RouteError(sim.now, flow_src=0, flow_dst=2, reporter=current_hop,
                          unicast_to=0)
        source.on_reer(reer, from_id=current_hop)
        assert metrics.events.get("rica_reer_csi_recovery", 0) == 1
        assert metrics.events.get("discovery_started", 0) == floods_before
        # The route was re-established immediately from the candidate.
        assert source.table.get_valid(2, sim.now, max_idle=None) is not None
        send_app_packet(network, metrics, 0, 2, seq=2)
        sim.run(until=3.0)
        assert metrics.delivered == 2

    def test_salvage_uses_fresh_downstream_pointer(self, sim, streams):
        """A relay losing its link re-routes transit data through the
        checking corridor instead of dropping it."""
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (95, 25), (190, 0), (95, -25)]
        )
        attach_protocols(network, metrics, "rica")
        send_app_packet(network, metrics, 0, 2, seq=1)
        sim.run(until=1.5)
        relay = network.node(1).routing
        # The relay heard the checking broadcast: pointer toward node 2.
        assert relay._salvage_pointer(2, exclude=-1) is not None
