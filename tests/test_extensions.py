"""Tests for the extension features: warmup metrics, random-direction
mobility, channel statistics helpers."""

import random

import pytest

from repro.channel.model import ChannelConfig
from repro.channel.csi import ChannelClass
from repro.channel.stats import class_distribution, mean_dwell_time_s, sample_classes
from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.geometry.field import Field
from repro.metrics.collector import DropReason, MetricsCollector
from repro.mobility.direction import RandomDirection
from repro.net.packet import DataPacket


class TestWarmupMetrics:
    def _pkt(self, created):
        return DataPacket(src=0, dst=1, seq=1, created_at=created)

    def test_warmup_packets_excluded(self):
        c = MetricsCollector(duration=20.0, warmup_s=5.0)
        early = self._pkt(2.0)
        late = self._pkt(6.0)
        for p in (early, late):
            c.record_generated(p)
            c.record_delivered(p, p.created_at + 0.1)
        assert c.generated == 1
        assert c.delivered == 1

    def test_warmup_drops_excluded(self):
        c = MetricsCollector(duration=20.0, warmup_s=5.0)
        c.record_dropped(self._pkt(1.0), DropReason.NO_ROUTE)
        c.record_dropped(self._pkt(7.0), DropReason.NO_ROUTE)
        assert sum(c.drops.values()) == 1

    def test_warmup_control_gated_by_now(self):
        c = MetricsCollector(duration=20.0, warmup_s=5.0)
        c.record_control_tx("rreq", 192, now=1.0)
        c.record_control_tx("rreq", 192, now=6.0)
        c.record_ack(160, now=1.0)
        c.record_ack(160, now=7.0)
        assert c.control_bits["rreq"] == 192
        assert c.ack_bits == 160

    def test_overhead_uses_measured_duration(self):
        c = MetricsCollector(duration=20.0, warmup_s=10.0)
        c.record_control_tx("rreq", 10_000, now=15.0)
        assert c.report().overhead_kbps == pytest.approx(10_000 / 10.0 / 1000.0)

    def test_invalid_warmup_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsCollector(duration=10.0, warmup_s=10.0)
        with pytest.raises(ConfigurationError):
            MetricsCollector(duration=10.0, warmup_s=-1.0)

    def test_scenario_with_warmup_runs(self):
        report = run_scenario(
            ScenarioConfig(
                protocol="aodv",
                n_nodes=12,
                n_flows=3,
                duration_s=6.0,
                warmup_s=2.0,
                field_size_m=500.0,
                seed=3,
            )
        )
        assert report.generated > 0

    def test_scenario_invalid_warmup_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(duration_s=5.0, warmup_s=5.0)


class TestRandomDirection:
    def _model(self, seed=1, max_speed=10.0):
        return RandomDirection(Field(1000, 1000), random.Random(seed), max_speed)

    def test_positions_stay_in_field(self):
        field = Field(1000, 1000)
        m = self._model()
        for t in range(0, 400, 5):
            assert field.contains(m.position(float(t)))

    def test_travels_to_boundary(self):
        """Between pauses the terminal ends segments on the field edge."""
        m = self._model(seed=3)
        m.position(500.0)  # force segment generation
        boundary_hits = 0
        for seg in m._segments:
            if seg.is_pause and seg.t_start > 0:
                p = seg.a
                on_edge = (
                    p.x < 1e-6 or p.y < 1e-6 or p.x > 1000 - 1e-6 or p.y > 1000 - 1e-6
                )
                boundary_hits += on_edge
        assert boundary_hits >= 1

    def test_zero_speed_static(self):
        m = self._model(max_speed=0.0)
        assert m.position(0.0) == m.position(500.0)

    def test_speed_bounds(self):
        m = self._model(max_speed=12.0)
        for t in range(0, 300, 7):
            assert 0.0 <= m.speed_at(float(t)) <= 12.0 + 1e-9

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            RandomDirection(Field(100, 100), random.Random(1), -1.0)

    def test_scenario_with_direction_model(self):
        report = run_scenario(
            ScenarioConfig(
                protocol="aodv",
                n_nodes=12,
                n_flows=3,
                duration_s=5.0,
                field_size_m=500.0,
                mobility_model="direction",
                mean_speed_kmh=36.0,
                seed=3,
            )
        )
        assert report.generated > 0

    def test_unknown_mobility_model_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(mobility_model="teleport")


class TestChannelStats:
    def test_distribution_sums_to_one(self):
        dist = class_distribution(150.0, duration_s=60.0, seed=1)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_short_links_mostly_class_a(self):
        dist = class_distribution(40.0, duration_s=120.0, seed=1)
        assert dist[ChannelClass.A] > 0.6

    def test_edge_links_mostly_cd(self):
        dist = class_distribution(240.0, duration_s=120.0, seed=1)
        assert dist[ChannelClass.C] + dist[ChannelClass.D] > 0.6

    def test_deterministic_channel_single_class(self):
        config = ChannelConfig(shadow_sigma_db=0.0, fast_sigma_db=0.0)
        dist = class_distribution(80.0, duration_s=10.0, config=config)
        assert dist[ChannelClass.A] == 1.0

    def test_dwell_time_in_checking_regime(self):
        """The paper picks a 1 s CSI-checking period because classes dwell
        on that order; our calibration must land in a sensible band."""
        dwell = mean_dwell_time_s(150.0, duration_s=120.0, seed=2)
        assert 0.1 <= dwell <= 5.0

    def test_sample_classes_length(self):
        samples = sample_classes(100.0, duration_s=10.0, step_s=0.1)
        assert len(samples) == 100
