"""Behavioural tests for AODV on deterministic topologies."""

import pytest

from repro.geometry.vector import Vec2
from repro.metrics.collector import MetricsCollector
from repro.mobility.path import WaypointPath
from repro.mobility.static import StaticPosition
from repro.net.network import Network
from repro.geometry.field import Field

from tests.helpers import (
    attach_protocols,
    build_static_network,
    make_deterministic_channel_config,
    send_app_packet,
)


class TestDiscoveryAndDelivery:
    def test_multihop_delivery(self, sim, streams):
        # 0-1-2-3 line, 150 m spacing: only adjacent nodes in range.
        network, metrics = build_static_network(
            sim, streams, [(i * 150.0, 0.0) for i in range(4)]
        )
        attach_protocols(network, metrics, "aodv")
        send_app_packet(network, metrics, src=0, dst=3)
        sim.run(until=3.0)
        assert metrics.delivered == 1
        assert metrics.generated == 1

    def test_direct_neighbour_delivery(self, sim, streams):
        network, metrics = build_static_network(sim, streams, [(0, 0), (120, 0)])
        attach_protocols(network, metrics, "aodv")
        send_app_packet(network, metrics, 0, 1)
        sim.run(until=2.0)
        assert metrics.delivered == 1

    def test_route_cached_for_subsequent_packets(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(i * 150.0, 0.0) for i in range(4)]
        )
        attach_protocols(network, metrics, "aodv")
        send_app_packet(network, metrics, 0, 3, seq=1)
        sim.run(until=3.0)
        floods_before = metrics.control_tx_count["rreq"]
        send_app_packet(network, metrics, 0, 3, seq=2)
        sim.run(until=6.0)
        assert metrics.delivered == 2
        # No second flood: the route was cached.
        assert metrics.control_tx_count["rreq"] == floods_before

    def test_unreachable_destination_drops_pending(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(0, 0), (150, 0), (5000, 4000)]
        )
        attach_protocols(network, metrics, "aodv")
        send_app_packet(network, metrics, 0, 2)
        sim.run(until=5.0)
        assert metrics.delivered == 0
        assert sum(metrics.drops.values()) == 1
        assert metrics.events["discovery_failed"] >= 1

    def test_hop_count_recorded(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(i * 150.0, 0.0) for i in range(4)]
        )
        attach_protocols(network, metrics, "aodv")
        send_app_packet(network, metrics, 0, 3)
        sim.run(until=3.0)
        assert metrics.hops_sum == 3  # 0-1-2-3

    def test_bidirectional_flows(self, sim, streams):
        network, metrics = build_static_network(
            sim, streams, [(i * 150.0, 0.0) for i in range(3)]
        )
        attach_protocols(network, metrics, "aodv")
        send_app_packet(network, metrics, 0, 2, seq=1)
        send_app_packet(network, metrics, 2, 0, seq=1)
        sim.run(until=3.0)
        assert metrics.delivered == 2


class TestRouteRepair:
    def _break_network(self, sim, streams):
        """0-1-2 line where node 1 departs at t=2 s; node 3 offers an
        alternative path 0-3-2."""
        metrics = MetricsCollector(100.0)
        network = Network(
            sim,
            Field(5000, 5000),
            streams,
            metrics,
            channel_config=make_deterministic_channel_config(),
        )
        network.add_node(StaticPosition(Vec2(0, 0)))  # 0 source
        network.add_node(  # 1: relay that leaves
            WaypointPath([(0.0, Vec2(150, 0)), (2.0, Vec2(150, 0)), (2.3, Vec2(150, 3000))])
        )
        network.add_node(StaticPosition(Vec2(300, 0)))  # 2 destination
        network.add_node(StaticPosition(Vec2(150, 120)))  # 3 alternative relay
        return network, metrics

    def test_reroute_after_link_break(self, sim, streams):
        network, metrics = self._break_network(sim, streams)
        attach_protocols(network, metrics, "aodv")
        send_app_packet(network, metrics, 0, 2, seq=1)
        sim.run(until=1.5)
        assert metrics.delivered == 1
        # Node 1 leaves; the source harvests the break and rediscovers 0-3-2.
        sim.run(until=4.0)
        send_app_packet(network, metrics, 0, 2, seq=2)
        sim.run(until=8.0)
        assert metrics.delivered == 2
        assert metrics.events.get("link_break_detected", 0) >= 1

    def test_reer_ignored_from_non_downstream(self, sim, streams):
        """The paper's staleness rule: REER from a stranger is ignored."""
        from repro.routing.packets import RouteError

        network, metrics = build_static_network(
            sim, streams, [(0, 0), (150, 0), (300, 0)]
        )
        attach_protocols(network, metrics, "aodv")
        send_app_packet(network, metrics, 0, 2)
        sim.run(until=2.0)
        assert metrics.delivered == 1
        # Node 2 (not node 0's downstream, which is 1) claims a break.
        reer = RouteError(sim.now, flow_src=0, flow_dst=2, reporter=2, unicast_to=0)
        network.node(0).routing.on_reer(reer, from_id=2)
        assert metrics.events["reer_ignored_stale"] == 1
        # Route still valid: next packet needs no new flood.
        floods = metrics.control_tx_count["rreq"]
        send_app_packet(network, metrics, 0, 2, seq=2)
        sim.run(until=4.0)
        assert metrics.delivered == 2
        assert metrics.control_tx_count["rreq"] == floods
