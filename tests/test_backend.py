"""Execution backends: serial/parallel equivalence and determinism.

The acceptance bar: a campaign run with ``jobs=4`` must produce
*byte-identical* result JSON to the serial run under the same seeds.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.backend import (
    ProcessPoolBackend,
    SerialBackend,
    resolve_backend,
)
from repro.experiments.campaign import CampaignSpec, run_campaign, save_results
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweep import run_speed_sweep


def _square(x):
    return x * x


class TestBackends:
    def test_serial_map_preserves_order(self):
        assert list(SerialBackend().map(_square, [3, 1, 2])) == [9, 1, 4]

    def test_serial_map_is_lazy(self):
        seen = []

        def record(x):
            seen.append(x)
            return x

        results = SerialBackend().map(record, [1, 2, 3])
        assert seen == []  # nothing ran yet
        assert next(results) == 1
        assert seen == [1]  # streamed one at a time

    def test_process_pool_map_preserves_order(self):
        assert list(ProcessPoolBackend(jobs=3).map(_square, list(range(10)))) == [
            x * x for x in range(10)
        ]

    def test_process_pool_empty_items(self):
        assert list(ProcessPoolBackend(jobs=2).map(_square, [])) == []

    def test_process_pool_rejects_bad_jobs(self):
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(jobs=0)

    def test_resolve_backend_rules(self):
        assert isinstance(resolve_backend(), SerialBackend)
        assert isinstance(resolve_backend(jobs=1), SerialBackend)
        pool = resolve_backend(jobs=4)
        assert isinstance(pool, ProcessPoolBackend) and pool.jobs == 4
        explicit = SerialBackend()
        assert resolve_backend(backend=explicit) is explicit
        with pytest.raises(ConfigurationError):
            resolve_backend(backend=explicit, jobs=2)


def _tiny_spec():
    return CampaignSpec(
        name="determinism",
        base=ScenarioConfig(duration_s=2.0, n_nodes=8, n_flows=2, seed=5),
        protocols=["aodv"],
        mean_speeds_kmh=[0.0, 36.0],
        rates_pps=[10.0],
        trials=1,
    )


class TestCampaignDeterminism:
    def test_parallel_campaign_json_byte_identical_to_serial(self, tmp_path):
        spec = _tiny_spec()
        serial = run_campaign(spec)
        parallel = run_campaign(spec, jobs=4)
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        save_results(serial, str(serial_path))
        save_results(parallel, str(parallel_path))
        assert serial_path.read_bytes() == parallel_path.read_bytes()
        # And the payload is non-trivial: every cell materialised.
        payload = json.loads(serial_path.read_text())
        assert sorted(payload["cells"]) == ["aodv/0/10", "aodv/36/10"]

    def test_progress_order_is_canonical_under_parallelism(self):
        spec = _tiny_spec()
        seen = []
        run_campaign(spec, progress=seen.append, jobs=2)
        assert seen == [key for key, _ in spec.cell_configs()]

    def test_speed_sweep_parallel_matches_serial(self):
        base = ScenarioConfig(duration_s=2.0, n_nodes=8, n_flows=2, seed=5)
        serial = run_speed_sweep(base, ["aodv"], [0.0, 36.0], trials=1)
        parallel = run_speed_sweep(base, ["aodv"], [0.0, 36.0], trials=1, jobs=2)
        assert serial == parallel
