"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(1.5, fired.append, "middle")
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_same_time_events_fire_in_scheduling_order(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(3.25, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.25]

    def test_zero_delay_event_runs_after_current_instant_events(self, sim):
        fired = []

        def outer():
            sim.schedule(0.0, fired.append, "inner")
            fired.append("outer")

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == ["outer", "inner"]

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(5.0, fired.append, "x")
        sim.run()
        assert fired == ["x"] and sim.now == 5.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_nan_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), lambda: None)

    def test_past_absolute_time_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        assert handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        assert handle.cancel() is True
        assert handle.cancel() is False

    def test_cancel_after_fire_returns_false(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        assert handle.fired
        assert handle.cancel() is False

    def test_handle_states(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        assert handle.pending and not handle.fired and not handle.cancelled
        sim.run()
        assert handle.fired and not handle.pending


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0

    def test_run_until_then_resume(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        sim.run()
        assert fired == ["a", "b"]

    def test_stop_halts_processing(self, sim):
        fired = []
        sim.schedule(1.0, sim.stop)
        sim.schedule(2.0, fired.append, "never")
        sim.run()
        assert fired == []

    def test_step_fires_exactly_one(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step()
        assert fired == [1]
        assert sim.step()
        assert fired == [1, 2]
        assert not sim.step()

    def test_max_events_guard(self, sim):
        def reschedule():
            sim.schedule(0.001, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run(until=10.0, max_events=100)

    def test_max_events_checked_before_firing(self, sim):
        """Regression: event ``max_events + 1`` must never fire."""
        fired = []
        for i in range(6):
            sim.schedule(float(i + 1), fired.append, i)
        with pytest.raises(SimulationError):
            sim.run(max_events=5)
        assert fired == [0, 1, 2, 3, 4]
        assert sim.events_processed == 5

    def test_exactly_max_events_is_allowed(self, sim):
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=5)  # queue drains exactly at the cap: no error
        assert fired == [0, 1, 2, 3, 4]

    def test_step_respects_stop(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "x")
        sim.stop()
        assert sim.step() is False
        assert fired == []
        sim.run()  # run() clears the stop flag and drains the queue
        assert fired == ["x"]

    def test_step_skips_cancelled_head_like_peek_time(self, sim):
        fired = []
        h1 = sim.schedule(1.0, fired.append, "cancelled")
        sim.schedule(2.0, fired.append, "live")
        h1.cancel()
        assert sim.peek_time() == 2.0
        assert sim.step() is True
        assert fired == ["live"] and sim.now == 2.0

    def test_step_on_all_cancelled_queue_returns_false(self, sim):
        h = sim.schedule(1.0, lambda: None)
        h.cancel()
        assert sim.step() is False
        assert sim.events_processed == 0

    def test_run_not_reentrant(self, sim):
        def nested():
            sim.run()

        sim.schedule(0.1, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_peek_time_skips_cancelled(self, sim):
        h1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h1.cancel()
        assert sim.peek_time() == 2.0

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_empty_run_advances_to_until(self, sim):
        sim.run(until=7.0)
        assert sim.now == 7.0


class TestBatchSemantics:
    """The same-timestamp batch sweep must be invisible to callers."""

    def test_event_cancels_same_time_sibling(self, sim):
        fired = []
        handles = {}

        def canceller():
            fired.append("a")
            handles["b"].cancel()

        sim.schedule(1.0, canceller)
        handles["b"] = sim.schedule(1.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "c")
        sim.run()
        assert fired == ["a", "c"]
        assert sim.events_processed == 2  # the cancelled sibling never counts

    def test_consecutive_cancelled_siblings_skipped(self, sim):
        fired = []
        handles = {}

        def canceller():
            fired.append("a")
            handles["b"].cancel()
            handles["c"].cancel()

        sim.schedule(1.0, canceller)
        handles["b"] = sim.schedule(1.0, fired.append, "b")
        handles["c"] = sim.schedule(1.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "d")
        sim.run()
        assert fired == ["a", "d"]

    def test_stop_mid_batch_leaves_remainder_queued(self, sim):
        fired = []

        def stopper():
            fired.append("a")
            sim.stop()

        sim.schedule(1.0, stopper)
        sim.schedule(1.0, fired.append, "b")
        sim.run()
        assert fired == ["a"]
        sim.run()  # run() clears the stop flag; the sibling still fires
        assert fired == ["a", "b"]

    def test_max_events_mid_batch_preserves_remainder(self, sim):
        fired = []
        for i in range(3):
            sim.schedule(1.0, fired.append, i)
        with pytest.raises(SimulationError):
            sim.run(max_events=2)
        assert fired == [0, 1]
        sim.run()
        assert fired == [0, 1, 2]

    def test_max_events_at_batch_boundary_leaves_clock_on_fired_event(self, sim):
        """Regression: the guardrail must not advance now to an unfired
        batch's timestamp."""
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.run(max_events=1)
        assert sim.now == 1.0  # the t=2.0 event never fired
        assert sim.events_processed == 1

    def test_batch_member_scheduling_same_instant_runs_last(self, sim):
        fired = []

        def first():
            fired.append("first")
            sim.schedule(0.0, fired.append, "child")

        sim.schedule(1.0, first)
        sim.schedule(1.0, fired.append, "second")
        sim.run()
        assert fired == ["first", "second", "child"]


class TestEventKindCounts:
    def test_counts_by_callback_qualname(self, sim):
        fired = []
        for _ in range(3):
            sim.schedule(1.0, fired.append, "x")
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.event_kind_counts["list.append"] == 3
        assert sum(sim.event_kind_counts.values()) == sim.events_processed == 4

    def test_step_counts_too(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.step()
        assert sum(sim.event_kind_counts.values()) == 1

    def test_cancelled_events_not_counted(self, sim):
        h = sim.schedule(1.0, lambda: None)
        h.cancel()
        sim.run()
        assert sim.event_kind_counts == {}
