"""Differential tests for the vectorized MobilityBank.

The bank's contract is *exact* equality with the scalar models: a bank row
and a scalar model driven by :class:`repro.sim.rng.CounterRandom` on the
same ``(seed, row)`` key share every draw bit-for-bit, segment assembly
uses the same ``math.*`` calls, and evaluation uses the same anchor-form
lerp — so positions and speeds must match to the last ulp, for any query
order.  Hypothesis drives that across models, parameters and out-of-order
query times; further tests pin batched self-determinism, the dense-id
registration contract, proxy rows for unknown models, and the scenario
wiring (batched and scalar scenarios start from identical placements).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.geometry.field import Field
from repro.geometry.vector import Vec2
from repro.mobility import (
    BankTrajectory,
    MobilityBank,
    MobilityModel,
    RandomDirection,
    RandomWaypoint,
    StaticPosition,
    WaypointPath,
)
from repro.sim.rng import CounterRandom, derive_key

FIELD = Field(1000.0, 700.0)

# Query times deliberately include 0, exact small integers (often segment
# boundaries for scripted paths), sub-ulp neighbours and far-future points
# — in arbitrary order, because the bank must answer exactly regardless of
# how queries interleave with trajectory extension.
times_strategy = st.lists(
    st.one_of(
        st.floats(min_value=0.0, max_value=120.0, allow_nan=False, allow_infinity=False),
        st.sampled_from([0.0, 1.0, 3.0, 5.0, 9.0, 4.999999999999999, 5.000000000000001]),
    ),
    min_size=1,
    max_size=12,
)

speed_strategy = st.one_of(st.just(0.0), st.floats(min_value=0.05, max_value=30.0))
pause_strategy = st.one_of(st.just(0.0), st.floats(min_value=0.0, max_value=5.0))


def _assert_row_matches(bank, row, model, t):
    ref = model.position(t)
    got = bank.position_of(row, t)
    assert (got.x, got.y) == (ref.x, ref.y)
    coords = bank.coords_at(t)
    assert (coords[row, 0], coords[row, 1]) == (ref.x, ref.y)
    assert bank.speed_of(row, t) == model.speed_at(t)


class TestDifferentialEquality:
    @given(seed=st.integers(0, 2**32 - 1), max_speed=speed_strategy,
           pause=pause_strategy, times=times_strategy)
    @settings(max_examples=40, deadline=None)
    def test_waypoint_rows_match_scalar_exactly(self, seed, max_speed, pause, times):
        bank = MobilityBank(seed, FIELD)
        bank.add_waypoint(0, max_speed, pause)
        model = RandomWaypoint(FIELD, CounterRandom(derive_key(seed, 0)), max_speed, pause)
        for t in times:
            _assert_row_matches(bank, 0, model, t)

    @given(seed=st.integers(0, 2**32 - 1), max_speed=speed_strategy,
           pause=pause_strategy, times=times_strategy)
    @settings(max_examples=40, deadline=None)
    def test_direction_rows_match_scalar_exactly(self, seed, max_speed, pause, times):
        bank = MobilityBank(seed, FIELD)
        bank.add_direction(0, max_speed, pause)
        model = RandomDirection(FIELD, CounterRandom(derive_key(seed, 0)), max_speed, pause)
        for t in times:
            _assert_row_matches(bank, 0, model, t)

    @given(times=times_strategy)
    @settings(max_examples=25, deadline=None)
    def test_path_and_static_rows_match_scalar_exactly(self, times):
        anchors = [
            (2.0, Vec2(0.0, 0.0)),
            (5.0, Vec2(100.0, 50.0)),
            (9.0, Vec2(100.0, 200.0)),
        ]
        bank = MobilityBank(7, FIELD)
        bank.add_path(0, anchors)
        bank.add_static(1, Vec2(123.4, 56.7))
        models = [WaypointPath(anchors), StaticPosition(Vec2(123.4, 56.7))]
        # Anchor instants are the boundary cases strict selection exists
        # for: t == t1 must evaluate the earlier segment at frac = 1.0.
        for t in list(times) + [2.0, 5.0, 9.0]:
            for row, model in enumerate(models):
                _assert_row_matches(bank, row, model, t)

    @given(seed=st.integers(0, 2**32 - 1), times=times_strategy)
    @settings(max_examples=25, deadline=None)
    def test_mixed_bank_matches_scalar_population(self, seed, times):
        """One bank holding every model kind at once (the scenario shape)."""
        bank = MobilityBank(seed, FIELD)
        models = []
        for i in range(3):
            bank.add_waypoint(i, 12.0, 1.0)
            models.append(RandomWaypoint(FIELD, CounterRandom(derive_key(seed, i)), 12.0, 1.0))
        bank.add_direction(3, 6.0, 0.0)
        models.append(RandomDirection(FIELD, CounterRandom(derive_key(seed, 3)), 6.0, 0.0))
        bank.add_static(4, Vec2(9.0, 9.0))
        models.append(StaticPosition(Vec2(9.0, 9.0)))
        for t in times:
            coords = bank.coords_at(t)
            for row, model in enumerate(models):
                ref = model.position(t)
                assert (coords[row, 0], coords[row, 1]) == (ref.x, ref.y)

    def test_negative_times_clamp_to_zero(self):
        bank = MobilityBank(3, FIELD)
        bank.add_waypoint(0, 10.0, 1.0)
        model = RandomWaypoint(FIELD, CounterRandom(derive_key(3, 0)), 10.0, 1.0)
        assert bank.position_of(0, -5.0) == model.position(-5.0)
        coords = bank.coords_at(-5.0)
        assert (coords[0, 0], coords[0, 1]) == tuple(model.position(-5.0))


class TestSelfDeterminism:
    @given(seed=st.integers(0, 2**32 - 1),
           times_a=times_strategy, times_b=times_strategy)
    @settings(max_examples=25, deadline=None)
    def test_query_order_cannot_perturb_trajectories(self, seed, times_a, times_b):
        """Counter-based substreams: two banks on the same seed answer
        identically no matter how their query schedules differ."""
        bank_a = MobilityBank(seed, FIELD)
        bank_b = MobilityBank(seed, FIELD)
        for bank in (bank_a, bank_b):
            for i in range(4):
                bank.add_waypoint(i, 15.0, 0.5)
            bank.add_direction(4, 8.0, 2.0)
        for t in times_a:
            bank_a.coords_at(t)  # extend A along its own schedule
        for t in times_b:
            bank_b.coords_at(t)
        probe = sorted(set(times_a) | set(times_b) | {0.0, 50.0})
        for t in probe:
            assert (bank_a.coords_at(t) == bank_b.coords_at(t)).all()


class TestRegistrationContract:
    def test_rows_must_be_dense(self):
        bank = MobilityBank(1, FIELD)
        with pytest.raises(ConfigurationError):
            bank.add_waypoint(1, 10.0)  # row 0 not registered yet
        bank.add_waypoint(0, 10.0)
        with pytest.raises(ConfigurationError):
            bank.add_static(0, Vec2(0.0, 0.0))  # row 0 taken

    def test_unknown_row_queries_raise(self):
        bank = MobilityBank(1, FIELD)
        bank.add_static(0, Vec2(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            bank.position_of(1, 0.0)
        with pytest.raises(ConfigurationError):
            bank.speed_of(-1, 0.0)

    def test_invalid_parameters_raise(self):
        bank = MobilityBank(1, FIELD)
        with pytest.raises(ConfigurationError):
            bank.add_waypoint(0, -1.0)
        with pytest.raises(ConfigurationError):
            bank.add_direction(0, 5.0, pause_time=-0.1)
        with pytest.raises(ConfigurationError):
            bank.add_path(0, [])
        with pytest.raises(ConfigurationError):
            bank.add_path(0, [(1.0, Vec2(0, 0)), (1.0, Vec2(1, 1))])

    def test_adopt_returns_bank_views_and_proxies(self):
        class Orbit(MobilityModel):
            def position(self, t):
                return Vec2(100.0 + 10.0 * math.cos(t), 100.0 + 10.0 * math.sin(t))

        bank = MobilityBank(5, FIELD)
        wp = RandomWaypoint(FIELD, CounterRandom(derive_key(5, 0)), 10.0, 1.0)
        view = bank.adopt(0, wp)
        assert isinstance(view, BankTrajectory)
        assert view.position(0.0) == wp.origin
        orbit = Orbit()
        kept = bank.adopt(1, orbit)
        assert kept is orbit  # unknown models stay scalar, as proxy rows
        coords = bank.coords_at(2.5)
        ref = orbit.position(2.5)
        assert (coords[1, 0], coords[1, 1]) == (ref.x, ref.y)
        assert bank.position_of(1, 2.5) == ref
        with pytest.raises(ConfigurationError):
            bank.adopt(2, view)  # already bank-backed


class TestScenarioWiring:
    def test_batched_scenario_starts_where_scalar_does(self):
        config = ScenarioConfig(n_nodes=15, duration_s=1.0, seed=11)
        scalar = build_scenario(config)
        batched = build_scenario(config.with_(mobility_backend="batched"))
        assert batched.network.mobility_bank is not None
        for nid in scalar.network.node_ids:
            assert scalar.network.position(nid, 0.0) == batched.network.position(nid, 0.0)

    def test_batched_snapshots_come_from_the_bank(self):
        config = ScenarioConfig(
            n_nodes=15, duration_s=1.0, seed=11, mobility_backend="batched"
        )
        scenario = build_scenario(config)
        topo = scenario.network.topology
        coords, slot_of = topo.coords_view(0.5)
        assert slot_of is None and coords.shape == (15, 2)
        bank = scenario.network.mobility_bank
        assert (coords == bank.coords_at(0.5)).all()
        # Residual scalar queries ride the same arrays.
        for nid in (0, 7, 14):
            p = topo.position(nid, 0.5)
            assert (p.x, p.y) == (coords[nid, 0], coords[nid, 1])
