"""Tests for the structured tracing subsystem."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.trace import TraceEvent, Tracer


class TestTracer:
    def test_emit_and_len(self):
        tracer = Tracer()
        tracer.emit(1.0, "discovery", 0, dest=5)
        tracer.emit(2.0, "route_established", 0, dest=5)
        assert len(tracer) == 2
        assert tracer.counts["discovery"] == 1

    def test_query_filters(self):
        tracer = Tracer()
        tracer.emit(1.0, "a", 0)
        tracer.emit(2.0, "b", 1)
        tracer.emit(3.0, "a", 1)
        assert [e.time for e in tracer.query(category="a")] == [1.0, 3.0]
        assert [e.time for e in tracer.query(node=1)] == [2.0, 3.0]
        assert [e.time for e in tracer.query(since=2.5)] == [3.0]
        assert [e.time for e in tracer.query(until=1.5)] == [1.0]

    def test_last(self):
        tracer = Tracer()
        assert tracer.last() is None
        tracer.emit(1.0, "a", 0)
        tracer.emit(2.0, "b", 0)
        assert tracer.last().category == "b"
        assert tracer.last("a").time == 1.0

    def test_ring_buffer_bounded(self):
        tracer = Tracer(capacity=10)
        for i in range(100):
            tracer.emit(float(i), "x", 0)
        assert len(tracer) == 10
        assert tracer.last().time == 99.0
        assert tracer.counts["x"] == 100  # counts survive eviction

    def test_subscription(self):
        tracer = Tracer()
        seen = []
        unsubscribe = tracer.subscribe(seen.append)
        tracer.emit(1.0, "a", 0)
        unsubscribe()
        tracer.emit(2.0, "a", 0)
        assert len(seen) == 1

    def test_summary_and_str(self):
        tracer = Tracer()
        tracer.emit(1.0, "a", 3, dest=7)
        assert "a" in tracer.summary()
        text = str(tracer.last())
        assert "node=  3" in text and "dest=7" in text

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1.0, "a", 0)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.summary() == "(no events)"

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            Tracer(capacity=0)


class TestScenarioTracing:
    def test_disabled_by_default(self):
        scenario = build_scenario(
            ScenarioConfig(n_nodes=12, n_flows=3, duration_s=4.0, field_size_m=500.0)
        )
        assert scenario.tracer is None
        assert all(p.tracer is None for p in scenario.protocols)

    def test_records_protocol_lifecycle(self):
        scenario = build_scenario(
            ScenarioConfig(
                protocol="rica",
                n_nodes=12,
                n_flows=3,
                duration_s=6.0,
                field_size_m=500.0,
                mean_speed_kmh=36.0,
                seed=3,
                enable_trace=True,
            )
        )
        scenario.run()
        tracer = scenario.tracer
        assert tracer is not None
        assert tracer.counts["discovery"] >= 1
        assert tracer.counts["route_established"] >= 1
        # Events are well-formed TraceEvents in time order.
        times = [e.time for e in tracer.query()]
        assert times == sorted(times)
        for event in tracer.query(category="route_established"):
            assert isinstance(event, TraceEvent)
            assert "dest" in event.fields
