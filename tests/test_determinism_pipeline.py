"""Differential determinism tests for the batched reception pipeline.

The engine's same-timestamp batch sweep, the MAC's ``ReceptionBatch``
dispatch and the network's precomputed handler table are all meant to be
*invisible*: for a fixed seed the metrics report must be byte-identical
to what a one-event-at-a-time reference execution produces.  These tests
pin that down end-to-end (full RICA/AODV scenarios through
``json.dumps``), plus hypothesis property tests for the ``(time, seq)``
same-time ordering contract the batch sweep must preserve.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.sim.engine import Simulator

BASE = ScenarioConfig(protocol="rica", n_nodes=20, duration_s=3.0, seed=5)


@pytest.fixture
def base(mac_backend, mobility_backend):
    """The base scenario on the backends selected by ``--mac-backend`` /
    ``--mobility-backend``.

    The run-vs-step differential below must hold for *every* backend
    combination: the batched MAC scheduler only coalesces events, and the
    mobility bank only changes how positions are evaluated — neither may
    reorder events relative to the ``(time, seq)`` contract.  CI runs
    this module again with ``--mac-backend batched`` and with
    ``--mobility-backend batched``.
    """
    return BASE.with_(mac_backend=mac_backend, mobility_backend=mobility_backend)


def _report_json(report) -> str:
    return json.dumps(dataclasses.asdict(report), sort_keys=True)


def _run_batched(config: ScenarioConfig) -> str:
    """The production path: Scenario.run -> Simulator.run batch sweep."""
    return _report_json(build_scenario(config).run())


def _run_stepped(config: ScenarioConfig) -> str:
    """Reference execution: one Simulator.step() per event, no batching."""
    scenario = build_scenario(config)
    # Scenario.start() arms the same population run() does — including the
    # fault schedule when config.faults is set.
    scenario.start()
    sim = scenario.sim
    while True:
        t = sim.peek_time()
        if t is None or t > config.duration_s:
            break
        sim.step()
    for proto in scenario.protocols:
        proto.stop()
    return _report_json(scenario.metrics.report())


class TestPipelineDeterminism:
    def test_batched_run_matches_stepped_reference_rica(self, base):
        assert _run_batched(base) == _run_stepped(base)

    def test_batched_run_matches_stepped_reference_aodv(self, base):
        config = base.with_(protocol="aodv")
        assert _run_batched(config) == _run_stepped(config)

    def test_repeated_runs_byte_identical(self, base):
        assert _run_batched(base) == _run_batched(base)

    def test_aggregation_on_is_deterministic(self, base):
        config = base.with_(protocol="aodv", rreq_aggregation_s=0.02)
        assert _run_batched(config) == _run_stepped(config) == _run_batched(config)

    def test_slot_aligned_rounds_match_stepped_reference(self, base):
        """Slot alignment changes *when* attempts fire, never the engine
        contract: run-vs-step equality must survive a coarse 2 ms grid."""
        from repro.mac.csma import MacConfig

        config = base.with_(
            protocol="aodv", mac_backend="batched", mac=MacConfig(slot_align_s=0.002)
        )
        assert _run_batched(config) == _run_stepped(config)

    def test_churn_run_matches_stepped_reference(self, base):
        """Fault events drain through the same (time, seq) queue as
        traffic: run-vs-step equality must survive node churn on every
        backend combination."""
        from repro.faults import FaultConfig, NodeChurnConfig

        config = base.with_(
            protocol="aodv",
            faults=FaultConfig(
                churn=NodeChurnConfig(crash_rate_per_s=0.1, mean_downtime_s=1.0)
            ),
        )
        assert _run_batched(config) == _run_stepped(config) == _run_batched(config)

    def test_aggregation_off_vs_on_differ(self, base):
        """Sanity check the knob is actually wired through build_scenario."""
        config = base.with_(protocol="aodv", mean_speed_kmh=72.0)
        off = json.loads(_run_batched(config))
        on = json.loads(_run_batched(config.with_(rreq_aggregation_s=0.04)))
        assert "rreq_suppressed" in on["events"] or "rreq_coalesced" in on["events"]
        assert "rreq_suppressed" not in off["events"]


class TestSameTimeOrderingProperties:
    @given(times=st.lists(st.sampled_from([0.5, 1.0, 1.5, 2.0]), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_fire_order_is_time_then_schedule_order(self, times):
        sim = Simulator()
        fired = []
        for i, t in enumerate(times):
            sim.schedule(t, fired.append, (t, i))
        sim.run()
        assert fired == sorted(fired)

    @given(
        times=st.lists(st.sampled_from([1.0, 1.0, 2.0]), min_size=1, max_size=30),
        cancel_mask=st.lists(st.booleans(), min_size=30, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_cancellations_do_not_perturb_survivor_order(self, times, cancel_mask):
        sim = Simulator()
        fired = []
        handles = [sim.schedule(t, fired.append, (t, i)) for i, t in enumerate(times)]
        survivors = []
        for i, handle in enumerate(handles):
            if cancel_mask[i]:
                handle.cancel()
            else:
                survivors.append((times[i], i))
        sim.run()
        assert fired == sorted(survivors)
        assert sim.events_processed == len(survivors)

    @given(n_chained=st.integers(min_value=0, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_zero_delay_chains_fire_after_existing_batch(self, n_chained):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(f"chain{depth}")
            if depth < n_chained:
                sim.schedule(0.0, chain, depth + 1)

        sim.schedule(1.0, chain, 0)
        sim.schedule(1.0, fired.append, "sibling")
        sim.run()
        assert fired == ["chain0", "sibling"] + [f"chain{d}" for d in range(1, n_chained + 1)]
