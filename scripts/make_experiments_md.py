#!/usr/bin/env python3
"""Generate EXPERIMENTS.md from the measured results (results.json).

Records paper-vs-measured for every figure and evaluates the codified
shape checks from ``repro.analysis.shapes``.
"""

import argparse
import json

from repro.analysis.shapes import (
    ShapeCheck,
    evaluate_checks,
    is_increasing,
    ordering_holds,
    ratio,
    trend_slope,
)

PROTOS = ["rica", "bgca", "abr", "aodv", "link_state"]
LABEL = {
    "rica": "RICA",
    "bgca": "BGCA",
    "abr": "ABR",
    "aodv": "AODV",
    "link_state": "LS",
}


def sweep_table(data, rate, metric, unit):
    speeds = data["speeds_kmh"]
    sweep = data["sweeps"][str(rate)]
    lines = [
        "| speed (km/h) | " + " | ".join(LABEL[p] for p in PROTOS) + " |",
        "|---" * (len(PROTOS) + 1) + "|",
    ]
    for i, speed in enumerate(speeds):
        cells = [f"{sweep[p][i][metric]:.1f}" for p in PROTOS]
        lines.append(f"| {speed:.0f} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def series(data, rate, proto, metric):
    return [cell[metric] for cell in data["sweeps"][str(rate)][proto]]


def checks_block(checks):
    passed, total, lines = evaluate_checks(checks)
    body = "\n".join(f"* `{line}`" for line in lines)
    return f"**Shape checks: {passed}/{total} pass**\n\n{body}"


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--results", default="results.json")
    parser.add_argument("--out", default="EXPERIMENTS.md")
    args = parser.parse_args()
    with open(args.results) as fh:
        data = json.load(fh)

    speeds = data["speeds_kmh"]
    hi = int(speeds[-1])
    dur = data["duration_s"]
    trials = data["trials"]
    out = []
    w = out.append

    w("# EXPERIMENTS — paper vs. measured\n")
    w(
        f"Measured at a laptop scale of **{dur:.0f} s x {trials} trials x "
        f"{len(speeds)} speeds** (the paper uses 500 s x 25 trials; "
        "`python -m repro figure <id> --paper-scale` reruns any panel at full "
        "scale).  Absolute values depend on constants the paper does not "
        "publish (header sizes, backoff windows, fading parameters); the "
        "reproduction targets are the paper's *shape* claims, each of which "
        "is evaluated below with the codified checks from "
        "`repro.analysis.shapes` (the same checks the benchmark harness "
        "asserts).\n"
    )
    w("Regenerate: `python scripts/collect_results.py && python scripts/make_experiments_md.py`\n")

    # ------------------------------------------------------------- fig 2
    for rate, fig in ((10, "2(a)"), (20, "2(b)")):
        w(f"## Figure {fig} — average end-to-end delay (ms), {rate} pkt/s\n")
        w(sweep_table(data, rate, "delay_ms", "ms") + "\n")
        delay = {p: series(data, rate, p, "delay_ms") for p in PROTOS}
        at_hi = {p: delay[p][-1] for p in PROTOS}
        checks = [
            ShapeCheck(
                "RICA delay below ABR and AODV at every speed",
                all(
                    delay["rica"][i] < min(delay["abr"][i], delay["aodv"][i])
                    for i in range(len(speeds))
                ),
            ),
            ShapeCheck(
                f"channel-adaptive (RICA/BGCA) below channel-oblivious at {hi} km/h",
                min(at_hi["rica"], at_hi["bgca"]) < min(at_hi["abr"], at_hi["aodv"]),
            ),
            ShapeCheck(
                "RICA/BGCA delay falls (or stays flat) as speed rises",
                trend_slope(speeds, delay["rica"]) < 0.5
                and trend_slope(speeds, delay["bgca"]) < 0.5,
                f"slopes rica={trend_slope(speeds, delay['rica']):.2f}, "
                f"bgca={trend_slope(speeds, delay['bgca']):.2f} ms per km/h",
            ),
            ShapeCheck(
                "ABR delay among the highest at high mobility (LQ queueing)",
                at_hi["abr"] >= max(at_hi["rica"], at_hi["bgca"]),
            ),
        ]
        w(checks_block(checks) + "\n")
        w(
            "*Paper*: RICA lowest (~100-250 ms), BGCA close; ABR grows with "
            "speed; link state lowest when static but rises sharply with "
            "mobility.  *Deviation*: our link-state delay stays moderate "
            "because looping packets mostly die by buffer overflow (counted "
            "as loss in Figure 3) rather than surviving with huge delays.\n"
        )

    # ------------------------------------------------------------- fig 3
    for rate, fig in ((10, "3(a)"), (20, "3(b)")):
        w(f"## Figure {fig} — successful delivery percentage, {rate} pkt/s\n")
        w(sweep_table(data, rate, "delivery_pct", "%") + "\n")
        deliv = {p: series(data, rate, p, "delivery_pct") for p in PROTOS}
        at_hi = {p: deliv[p][-1] for p in PROTOS}
        ls_drop = deliv["link_state"][0] - deliv["link_state"][-1]
        rica_drop = deliv["rica"][0] - deliv["rica"][-1]
        checks = [
            ShapeCheck(
                f"adaptive protocols top AODV at {hi} km/h",
                max(at_hi["rica"], at_hi["bgca"]) > at_hi["aodv"],
            ),
            ShapeCheck(
                f"ABR above AODV at {hi} km/h (paper Section III-C)",
                at_hi["abr"] > at_hi["aodv"],
            ),
            ShapeCheck(
                "link-state delivery degrades faster with speed than RICA's",
                ls_drop > rica_drop,
                f"ls_drop={ls_drop:.1f} vs rica_drop={rica_drop:.1f} points",
            ),
            ShapeCheck(
                "every on-demand protocol loses delivery as speed rises",
                all(
                    deliv[p][0] >= deliv[p][-1] - 2.0
                    for p in ("rica", "bgca", "abr", "aodv")
                ),
            ),
        ]
        w(checks_block(checks) + "\n")
        w(
            "*Paper*: RICA highest (~95 down to ~80), then BGCA, ABR, AODV; "
            "link state collapses fastest (to ~62%).  *Deviation at "
            "20 pkt/s*: our static (0 km/h) network is more congested than "
            "the paper's, so several protocols *gain* delivery as mobility "
            "breaks up persistent queues — the mechanism the paper itself "
            "invokes to explain falling delay; at 10 pkt/s the paper's "
            "monotone decline reproduces.\n"
        )

    # ------------------------------------------------------------- fig 4
    for rate, fig in ((10, "4(a)"), (20, "4(b)")):
        w(f"## Figure {fig} — routing overhead (kbps), {rate} pkt/s\n")
        w(sweep_table(data, rate, "overhead_kbps", "kbps") + "\n")
        ovh = {p: series(data, rate, p, "overhead_kbps") for p in PROTOS}
        mid = len(speeds) // 2
        checks = [
            ShapeCheck(
                "link state dwarfs the channel-oblivious protocols (>2.5x)",
                all(
                    ovh["link_state"][i] > 2.5 * max(ovh["abr"][i], ovh["aodv"][i])
                    for i in range(len(speeds))
                ),
            ),
            ShapeCheck(
                "link state above every on-demand protocol at every speed",
                all(
                    ovh["link_state"][i]
                    > max(ovh[p][i] for p in ("rica", "bgca", "abr", "aodv"))
                    for i in range(len(speeds))
                ),
            ),
            ShapeCheck(
                "RICA pays more than AODV (CSI checking traffic)",
                all(ovh["rica"][i] > ovh["aodv"][i] for i in range(len(speeds))),
                f"ratio at {speeds[mid]:.0f} km/h: "
                f"{ratio(ovh['rica'][mid], ovh['aodv'][mid]):.1f}x (paper ~4x)",
            ),
            ShapeCheck(
                "BGCA above AODV (local queries)",
                ovh["bgca"][mid] > ovh["aodv"][mid],
                f"ratio {ratio(ovh['bgca'][mid], ovh['aodv'][mid]):.1f}x (paper ~1.5x)",
            ),
            ShapeCheck(
                "on-demand overhead grows with mobility",
                is_increasing(speeds, ovh["aodv"]),
            ),
        ]
        w(checks_block(checks) + "\n")
        w(
            "*Paper*: ABR < AODV < BGCA (~1.5x AODV) < RICA (~4x AODV) << "
            "link state (~500-600 kbps).  *Deviations*: our link-state "
            "overhead lands right on the paper's ~550 kbps; our RICA/AODV "
            "ratio is ~1.5-2x rather than ~4x (our AODV breaks routes more "
            "often than theirs, inflating the baseline); ABR sits near AODV "
            "rather than clearly below it because its beacons and localized "
            "queries roughly offset the floods it avoids at this scale; at "
            "20 pkt/s our BGCA overtakes RICA in overhead because its "
            "bandwidth guard (1.5x headroom) rejects class-B links at that "
            "load and repairs aggressively — the paper's guard level is "
            "unpublished, and a lower `bw_guard_factor` reproduces the "
            "paper's BGCA < RICA ordering (see "
            "benchmarks/test_ablation_bgca.py).\n"
        )

    # ------------------------------------------------------------- fig 5
    w("## Figure 5(a) — average link throughput (kbps) at 72 km/h\n")
    sweep10 = data["sweeps"]["10"]
    link_tp = {p: sweep10[p][-1]["link_kbps"] for p in PROTOS}
    w("| protocol | " + " | ".join(LABEL[p] for p in PROTOS) + " |")
    w("|---" * (len(PROTOS) + 1) + "|")
    w("| measured | " + " | ".join(f"{link_tp[p]:.1f}" for p in PROTOS) + " |")
    w("| paper (approx.) | ~190 | ~180 | ~140 | ~145 | ~210 |\n")
    checks = [
        ShapeCheck(
            "adaptive protocols pick faster links than oblivious ones",
            min(link_tp["rica"], link_tp["bgca"]) > max(link_tp["abr"], link_tp["aodv"]),
        ),
        ShapeCheck(
            "link state at the top (Dijkstra over CSI costs)",
            link_tp["link_state"] >= 0.95 * max(link_tp.values()),
        ),
    ]
    w(checks_block(checks) + "\n")

    w("## Figure 5(b) — average hop count at 72 km/h\n")
    hops = {p: sweep10[p][-1]["hops"] for p in PROTOS}
    w("| protocol | " + " | ".join(LABEL[p] for p in PROTOS) + " |")
    w("|---" * (len(PROTOS) + 1) + "|")
    w("| measured | " + " | ".join(f"{hops[p]:.2f}" for p in PROTOS) + " |")
    w("| paper (approx.) | ~4 | ~5 | ~6 | ~5 | ~16 |\n")
    checks = [
        ShapeCheck(
            "link state traverses the most hops (routing loops)",
            hops["link_state"] >= max(hops[p] for p in ("rica", "bgca", "abr", "aodv")) - 0.3,
        ),
        ShapeCheck("RICA among the shortest routes", hops["rica"] <= hops["bgca"] + 0.5),
    ]
    w(checks_block(checks) + "\n")
    w(
        "*Deviation*: the paper's link-state hop count (~16) implies loops "
        "lasting many hops per packet; our loops are shorter-lived because "
        "per-packet buffer losses bound them, so link state shows the "
        "highest hop count by a smaller margin.\n"
    )

    # ------------------------------------------------------------- fig 6
    for rate, fig in ((20, "6(a)"), (60, "6(b)")):
        w(f"## Figure {fig} — aggregate network throughput (kbps per 4 s bin), {rate} pkt/s, 36 km/h\n")
        cells = data["fig6"][str(rate)]
        w("| protocol | mean (kbps) | series |")
        w("|---|---|---|")
        means = {}
        for p in PROTOS:
            s = cells[p]["series_kbps"]
            means[p] = sum(s) / len(s) if s else 0.0
            shown = " ".join(f"{v:.0f}" for v in s[:10])
            w(f"| {LABEL[p]} | {means[p]:.0f} | {shown} ... |")
        w("")
        checks = [
            ShapeCheck(
                "RICA/BGCA carry the most aggregate traffic",
                max(means["rica"], means["bgca"])
                >= 0.95 * max(means[p] for p in ("abr", "aodv")),
            ),
        ]
        w(checks_block(checks) + "\n")
    w(
        "*Paper*: BGCA and RICA consistently on top at both loads; at "
        "60 pkt/s the network saturates and the adaptive protocols' "
        "advantage widens.\n"
    )

    # ------------------------------------------------------------- summary
    w("## Summary\n")
    w(
        "The reproduction recovers the paper's qualitative results: "
        "channel-adaptive routing (RICA, BGCA) wins on delay, delivery, link "
        "quality and aggregate throughput; the price is control overhead "
        "(RICA > BGCA > AODV); proactive link-state flooding saturates the "
        "shared control channel and degrades with mobility while being "
        "excellent in static networks.  Known deviations (documented above "
        "and in DESIGN.md): link-state's failure at high mobility shows up "
        "more as loss and less as delay than in the paper; the RICA:AODV "
        "overhead ratio is ~2x vs the paper's ~4x; ABR's overhead advantage "
        "over AODV does not reproduce at benchmark scale.\n"
    )

    with open(args.out, "w") as fh:
        fh.write("\n".join(out))
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
