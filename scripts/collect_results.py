#!/usr/bin/env python3
"""Collect the measured data behind EXPERIMENTS.md.

Runs the speed sweeps at both paper loads plus the Figure 6 time-series
runs, and dumps everything to JSON.  One sweep yields delay, delivery and
overhead simultaneously (Figures 2, 3 and 4 share runs), and the 72 km/h
points double as Figure 5.

Usage::

    python scripts/collect_results.py [--duration 30] [--trials 2] [--out results.json] [--jobs 4]
"""

import argparse
import json
import time

from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweep import run_speed_sweep, run_trials
from repro.routing.registry import available_protocols

SPEEDS = [0.0, 18.0, 36.0, 54.0, 72.0]


def agg_to_dict(agg):
    return {
        "delay_ms": round(agg.avg_delay_ms, 1),
        "delivery_pct": round(agg.delivery_pct, 1),
        "overhead_kbps": round(agg.overhead_kbps, 1),
        "link_kbps": round(agg.avg_link_throughput_kbps, 1),
        "hops": round(agg.avg_hops, 2),
        "series_kbps": [round(v, 1) for v in agg.throughput_series_kbps],
    }


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--duration", type=float, default=30.0)
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default="results.json")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for sweep points (results identical to serial)",
    )
    args = parser.parse_args()

    t0 = time.time()
    results = {
        "duration_s": args.duration,
        "trials": args.trials,
        "speeds_kmh": SPEEDS,
        "sweeps": {},
        "fig6": {},
    }
    for rate in (10.0, 20.0):
        base = ScenarioConfig(duration_s=args.duration, rate_pps=rate, seed=args.seed)
        sweep = run_speed_sweep(
            base, available_protocols(), SPEEDS, trials=args.trials, jobs=args.jobs
        )
        results["sweeps"][str(int(rate))] = {
            proto: [agg_to_dict(agg) for agg in aggs] for proto, aggs in sweep.items()
        }
        print(f"[{time.time()-t0:6.0f}s] sweep at {rate:.0f} pkt/s done", flush=True)

    for rate in (20.0, 60.0):
        base = ScenarioConfig(
            duration_s=args.duration, rate_pps=rate, mean_speed_kmh=36.0, seed=args.seed
        )
        results["fig6"][str(int(rate))] = {
            proto: agg_to_dict(run_trials(base.with_(protocol=proto), args.trials))
            for proto in available_protocols()
        }
        print(f"[{time.time()-t0:6.0f}s] fig6 at {rate:.0f} pkt/s done", flush=True)

    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=1)
    print(f"[{time.time()-t0:6.0f}s] wrote {args.out}", flush=True)


if __name__ == "__main__":
    main()
