#!/usr/bin/env python
"""Stdlib link checker for the repo's markdown docs.

Validates every markdown link in ``docs/*.md``, ``README.md`` and
``ROADMAP.md`` (plus any extra files passed as arguments):

* relative links must point at files or directories that exist in the
  repo (resolved against the linking file's directory, ``#fragment``
  stripped);
* intra-repo ``#fragment`` anchors must match a heading in the target
  file, using GitHub's heading-slug convention;
* external ``http(s)``/``mailto`` links are counted but not fetched —
  CI must stay offline-deterministic.

Exit status 0 when every link resolves, 1 otherwise (with a report of
each broken link).  No third-party dependencies, so the CI docs job is
just ``python scripts/check_docs_links.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links/images: [text](target) — target up to the first
#: unescaped closing paren; titles ("...") after the URL are tolerated.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
_CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")


def default_files() -> List[Path]:
    files = [REPO_ROOT / "README.md", REPO_ROOT / "ROADMAP.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def heading_slugs(path: Path) -> set:
    """GitHub-style anchor slugs of every heading in ``path``."""
    slugs = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING_RE.match(line)
        if not m:
            continue
        text = re.sub(r"[`*_]", "", m.group(1)).strip().lower()
        slug = re.sub(r"[^\w\- ]", "", text).replace(" ", "-")
        slugs.add(slug)
    return slugs


def extract_links(path: Path) -> List[Tuple[int, str]]:
    """(line_number, target) for every markdown link outside code fences."""
    links = []
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in _LINK_RE.finditer(line):
            links.append((lineno, m.group(1)))
    return links


def check_file(path: Path) -> Tuple[List[str], int, int]:
    """Return (problems, n_checked, n_external) for one markdown file."""
    problems = []
    checked = external = 0
    for lineno, target in extract_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            external += 1
            continue
        checked += 1
        base, _, fragment = target.partition("#")
        if not base:  # pure intra-document anchor
            dest = path
        else:
            dest = (path.parent / base).resolve()
            if not dest.exists():
                problems.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: broken link -> {target}")
                continue
        if fragment and dest.suffix == ".md":
            if fragment.lower() not in heading_slugs(dest):
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                    f"missing anchor -> {target}"
                )
    return problems, checked, external


def main(argv: List[str]) -> int:
    files = [Path(a).resolve() for a in argv] if argv else default_files()
    all_problems = []
    total = ext_total = 0
    for path in files:
        if not path.exists():
            all_problems.append(f"{path}: file not found")
            continue
        problems, checked, external = check_file(path)
        all_problems.extend(problems)
        total += checked
        ext_total += external
    print(
        f"checked {total} relative link(s) across {len(files)} file(s) "
        f"({ext_total} external link(s) skipped)"
    )
    if all_problems:
        print("\n".join(all_problems), file=sys.stderr)
        return 1
    print("all links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
