#!/usr/bin/env python3
"""The paper's core experiment in miniature: all five protocols, low and
high mobility, all five metrics side by side.

Usage::

    python examples/protocol_shootout.py [--duration 20] [--trials 1]

    # Also sweep the RREQ-aggregation window (off vs 40 ms) on the
    # on-demand protocols and compare the flood-storm cost:
    python examples/protocol_shootout.py --rreq-aggregation 0.04

    # Also sweep deterministic node churn (crashes per node per second)
    # and compare delivery/repair behaviour under failures:
    python examples/protocol_shootout.py --churn-rates 0 0.01 0.03
"""

import argparse

from repro import FaultConfig, NodeChurnConfig, ScenarioConfig, run_scenario, run_trials
from repro.analysis.tables import format_table
from repro.routing.registry import available_protocols


def rreq_aggregation_sweep(base: ScenarioConfig, window_s: float) -> None:
    """Demonstrate the ``rreq_aggregation_s`` knob: off vs on, per protocol."""
    rows = []
    for protocol in ("rica", "aodv"):
        for window in (0.0, window_s):
            report = run_scenario(
                base.with_(
                    protocol=protocol, mean_speed_kmh=72.0, rreq_aggregation_s=window
                )
            )
            rows.append(
                [
                    protocol,
                    f"{window * 1e3:.0f} ms",
                    report.control_tx_count.get("rreq", 0),
                    report.events.get("rreq_suppressed", 0),
                    report.overhead_kbps,
                    report.delivery_pct,
                ]
            )
    print(
        format_table(
            ["protocol", "window", "rreq_tx", "suppressed", "overhead_kbps", "delivery_%"],
            rows,
            title="\n=== RREQ aggregation sweep (72 km/h) ===",
        )
    )


def churn_sweep(base: ScenarioConfig, rates: list) -> None:
    """Sweep the churn axis: how each protocol degrades and repairs.

    Faults are seed-derived and deterministic, so every protocol faces
    the *same* crash/recover timeline at each churn rate.
    """
    rows = []
    for protocol in available_protocols():
        for rate in rates:
            faults = (
                FaultConfig(churn=NodeChurnConfig(crash_rate_per_s=rate))
                if rate > 0
                else None
            )
            report = run_scenario(
                base.with_(protocol=protocol, mean_speed_kmh=36.0, faults=faults)
            )
            rows.append(
                [
                    protocol,
                    f"{rate:g}/s",
                    report.events.get("fault_node_crash", 0),
                    report.delivery_pct,
                    report.route_breaks,
                    report.route_repairs,
                    report.avg_repair_latency_ms,
                ]
            )
    print(
        format_table(
            [
                "protocol",
                "churn",
                "crashes",
                "delivery_%",
                "breaks",
                "repairs",
                "repair_ms",
            ],
            rows,
            title="\n=== node-churn sweep (36 km/h) ===",
        )
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=20.0)
    parser.add_argument("--trials", type=int, default=1)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--rreq-aggregation", type=float, default=0.0, metavar="SECONDS",
        help="if > 0, also sweep the on-demand protocols with the RREQ-"
        "aggregation window off vs on at this value",
    )
    parser.add_argument(
        "--churn-rates", type=float, nargs="*", default=None, metavar="RATE",
        help="if given, also sweep deterministic node churn at these "
        "per-node crash rates (crashes/s; 0 = fault-free baseline)",
    )
    args = parser.parse_args()

    base = ScenarioConfig(duration_s=args.duration, rate_pps=10.0, seed=args.seed)
    for speed in (0.0, 72.0):
        rows = []
        for protocol in available_protocols():
            agg = run_trials(
                base.with_(protocol=protocol, mean_speed_kmh=speed), args.trials
            )
            rows.append(
                [
                    protocol,
                    agg.avg_delay_ms,
                    agg.delivery_pct,
                    agg.overhead_kbps,
                    agg.avg_link_throughput_kbps,
                    agg.avg_hops,
                ]
            )
        print(
            format_table(
                ["protocol", "delay_ms", "delivery_%", "overhead_kbps", "link_kbps", "hops"],
                rows,
                title=f"\n=== mean speed {speed:.0f} km/h, 10 pkt/s, "
                f"{args.duration:.0f}s x {args.trials} trial(s) ===",
            )
        )
    if args.rreq_aggregation > 0:
        rreq_aggregation_sweep(base, args.rreq_aggregation)
    if args.churn_rates:
        churn_sweep(base, args.churn_rates)


if __name__ == "__main__":
    main()
