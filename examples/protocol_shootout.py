#!/usr/bin/env python3
"""The paper's core experiment in miniature: all five protocols, low and
high mobility, all five metrics side by side.

Usage::

    python examples/protocol_shootout.py [--duration 20] [--trials 1]

    # Also sweep the RREQ-aggregation window (off vs 40 ms) on the
    # on-demand protocols and compare the flood-storm cost:
    python examples/protocol_shootout.py --rreq-aggregation 0.04
"""

import argparse

from repro import ScenarioConfig, run_scenario, run_trials
from repro.analysis.tables import format_table
from repro.routing.registry import available_protocols


def rreq_aggregation_sweep(base: ScenarioConfig, window_s: float) -> None:
    """Demonstrate the ``rreq_aggregation_s`` knob: off vs on, per protocol."""
    rows = []
    for protocol in ("rica", "aodv"):
        for window in (0.0, window_s):
            report = run_scenario(
                base.with_(
                    protocol=protocol, mean_speed_kmh=72.0, rreq_aggregation_s=window
                )
            )
            rows.append(
                [
                    protocol,
                    f"{window * 1e3:.0f} ms",
                    report.control_tx_count.get("rreq", 0),
                    report.events.get("rreq_suppressed", 0),
                    report.overhead_kbps,
                    report.delivery_pct,
                ]
            )
    print(
        format_table(
            ["protocol", "window", "rreq_tx", "suppressed", "overhead_kbps", "delivery_%"],
            rows,
            title="\n=== RREQ aggregation sweep (72 km/h) ===",
        )
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=20.0)
    parser.add_argument("--trials", type=int, default=1)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--rreq-aggregation", type=float, default=0.0, metavar="SECONDS",
        help="if > 0, also sweep the on-demand protocols with the RREQ-"
        "aggregation window off vs on at this value",
    )
    args = parser.parse_args()

    base = ScenarioConfig(duration_s=args.duration, rate_pps=10.0, seed=args.seed)
    for speed in (0.0, 72.0):
        rows = []
        for protocol in available_protocols():
            agg = run_trials(
                base.with_(protocol=protocol, mean_speed_kmh=speed), args.trials
            )
            rows.append(
                [
                    protocol,
                    agg.avg_delay_ms,
                    agg.delivery_pct,
                    agg.overhead_kbps,
                    agg.avg_link_throughput_kbps,
                    agg.avg_hops,
                ]
            )
        print(
            format_table(
                ["protocol", "delay_ms", "delivery_%", "overhead_kbps", "link_kbps", "hops"],
                rows,
                title=f"\n=== mean speed {speed:.0f} km/h, 10 pkt/s, "
                f"{args.duration:.0f}s x {args.trials} trial(s) ===",
            )
        )
    if args.rreq_aggregation > 0:
        rreq_aggregation_sweep(base, args.rreq_aggregation)


if __name__ == "__main__":
    main()
