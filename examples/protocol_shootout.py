#!/usr/bin/env python3
"""The paper's core experiment in miniature: all five protocols, low and
high mobility, all five metrics side by side.

Usage::

    python examples/protocol_shootout.py [--duration 20] [--trials 1]
"""

import argparse

from repro import ScenarioConfig, run_trials
from repro.analysis.tables import format_table
from repro.routing.registry import available_protocols


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=20.0)
    parser.add_argument("--trials", type=int, default=1)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    base = ScenarioConfig(duration_s=args.duration, rate_pps=10.0, seed=args.seed)
    for speed in (0.0, 72.0):
        rows = []
        for protocol in available_protocols():
            agg = run_trials(
                base.with_(protocol=protocol, mean_speed_kmh=speed), args.trials
            )
            rows.append(
                [
                    protocol,
                    agg.avg_delay_ms,
                    agg.delivery_pct,
                    agg.overhead_kbps,
                    agg.avg_link_throughput_kbps,
                    agg.avg_hops,
                ]
            )
        print(
            format_table(
                ["protocol", "delay_ms", "delivery_%", "overhead_kbps", "link_kbps", "hops"],
                rows,
                title=f"\n=== mean speed {speed:.0f} km/h, 10 pkt/s, "
                f"{args.duration:.0f}s x {args.trials} trial(s) ===",
            )
        )


if __name__ == "__main__":
    main()
