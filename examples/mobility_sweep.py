#!/usr/bin/env python3
"""Figures 2 and 3 in miniature: sweep the mean terminal speed and compare
the channel-adaptive RICA against the channel-oblivious AODV on delay and
delivery.

Usage::

    python examples/mobility_sweep.py [--duration 15]
"""

import argparse

from repro import ScenarioConfig, run_speed_sweep
from repro.analysis.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=15.0)
    parser.add_argument("--trials", type=int, default=1)
    args = parser.parse_args()

    speeds = [0.0, 18.0, 36.0, 54.0, 72.0]
    base = ScenarioConfig(duration_s=args.duration, rate_pps=10.0, seed=5)
    results = run_speed_sweep(base, ["rica", "aodv"], speeds, trials=args.trials)

    rows = []
    for i, speed in enumerate(speeds):
        rica = results["rica"][i]
        aodv = results["aodv"][i]
        rows.append(
            [
                speed,
                rica.avg_delay_ms,
                aodv.avg_delay_ms,
                rica.delivery_pct,
                aodv.delivery_pct,
            ]
        )
    print(
        format_table(
            ["speed_kmh", "rica_delay_ms", "aodv_delay_ms", "rica_deliv_%", "aodv_deliv_%"],
            rows,
            title="Channel-adaptive vs channel-oblivious routing across mobility",
        )
    )
    print(
        "\nPaper shape: RICA holds lower delay and higher delivery at every "
        "speed;\nthe gap is the value of adapting routes to channel state."
    )


if __name__ == "__main__":
    main()
