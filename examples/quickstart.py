#!/usr/bin/env python3
"""Quickstart: run the RICA protocol on the paper's network and print the
five evaluation metrics.

Usage::

    python examples/quickstart.py
"""

from repro import ScenarioConfig, run_scenario


def main() -> None:
    config = ScenarioConfig(
        protocol="rica",       # the paper's receiver-initiated protocol
        n_nodes=50,            # paper Section III-A
        mean_speed_kmh=36.0,   # mid-range mobility
        rate_pps=10.0,         # 10 packets/s per flow
        n_flows=10,
        duration_s=30.0,       # scaled down from the paper's 500 s
        seed=7,
    )
    print(f"Running {config.protocol} for {config.duration_s:.0f} simulated seconds "
          f"({config.n_nodes} terminals, {config.n_flows} flows, "
          f"mean speed {config.mean_speed_kmh:.0f} km/h)...")
    report = run_scenario(config)
    print()
    print(report.summary())
    print()
    print("Aggregate throughput (kbps per 4 s bin):")
    print("  " + " ".join(f"{v:.0f}" for v in report.throughput_series_kbps))
    print()
    print("Next steps: sweep a whole grid in parallel with")
    print("  python -m repro campaign --protocols rica aodv --speeds 0 36 72 \\")
    print("      --rates 10 --duration 30 --jobs 4 --out campaign.json")
    print("(--jobs N fans grid cells over N processes; results are identical")
    print(" to a serial run under the same seeds.)")


if __name__ == "__main__":
    main()
