#!/usr/bin/env python3
"""The paper's motivating application: peer-to-peer file swapping among
PDAs, notebooks and phones that formed an ad hoc network (Section I).

A file transfer is a burst of back-to-back 512-byte packets.  This example
models a swap fair: a handful of peers exchange files of a few hundred
kilobytes while everybody strolls around, and measures per-file completion
times and goodput under RICA vs AODV.

Usage::

    python examples/file_swapping_workload.py [--files 6] [--size-kb 100]
"""

import argparse
from typing import Dict, List

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.analysis.tables import format_table
from repro.net.packet import DataPacket


class FileTransfer:
    """One file, chopped into 512-byte packets, injected back to back."""

    def __init__(self, scenario, src: int, dst: int, size_kb: float, start_s: float):
        self.scenario = scenario
        self.src = src
        self.dst = dst
        self.total_packets = max(1, int(size_kb * 1024 / 512))
        self.start_s = start_s
        self.received = 0
        self.completed_at = None
        self._seq = 0

    def start(self) -> None:
        sim = self.scenario.sim
        sim.schedule_at(self.start_s, self._inject_window)

    def _inject_window(self) -> None:
        """Inject packets in paced windows (4 packets every 150 ms, about
        110 kbps) so a transfer is sustainable on a class-B route and does
        not instantly overrun the paper's 10-packet buffers."""
        sim = self.scenario.sim
        node = self.scenario.network.node(self.src)
        for _ in range(4):
            if self._seq >= self.total_packets:
                return
            self._seq += 1
            pkt = DataPacket(self.src, self.dst, self._seq, sim.now)
            self.scenario.metrics.record_generated(pkt)
            node.routing.handle_app_packet(pkt)
        if self._seq < self.total_packets:
            sim.schedule(0.15, self._inject_window)

    def on_delivery(self, pkt: DataPacket) -> None:
        if pkt.src == self.src and pkt.dst == self.dst:
            self.received += 1
            if self.received >= self.total_packets and self.completed_at is None:
                self.completed_at = self.scenario.sim.now


def run(protocol: str, files: int, size_kb: float, seed: int) -> List[FileTransfer]:
    config = ScenarioConfig(
        protocol=protocol,
        n_nodes=50,
        n_flows=1,  # placeholder; real traffic comes from the transfers
        mean_speed_kmh=18.0,  # strolling pace
        duration_s=60.0,
        seed=seed,
    )
    scenario = build_scenario(config)
    scenario.sources.clear()  # replace Poisson flows with file transfers

    rng = scenario.network.streams.stream("files")
    transfers = []
    for i in range(files):
        src = rng.randrange(50)
        dst = rng.randrange(50)
        while dst == src:
            dst = rng.randrange(50)
        transfers.append(
            FileTransfer(scenario, src, dst, size_kb, start_s=1.0 + i * 2.0)
        )

    # Tap deliveries at every node.
    by_pair: Dict[tuple, FileTransfer] = {(t.src, t.dst): t for t in transfers}
    for node in scenario.network.nodes():
        original = node.routing.deliver_local

        def tapped(pkt, original=original):
            original(pkt)
            transfer = by_pair.get((pkt.src, pkt.dst))
            if transfer is not None:
                transfer.on_delivery(pkt)

        node.routing.deliver_local = tapped

    for proto in scenario.protocols:
        proto.start()
    for transfer in transfers:
        transfer.start()
    scenario.sim.run(until=config.duration_s)
    for proto in scenario.protocols:
        proto.stop()
    return transfers


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--files", type=int, default=6)
    parser.add_argument("--size-kb", type=float, default=100.0)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    for protocol in ("rica", "aodv"):
        transfers = run(protocol, args.files, args.size_kb, args.seed)
        rows = []
        total_received = 0
        for i, t in enumerate(transfers):
            total_received += t.received
            pct = 100.0 * t.received / t.total_packets
            if t.completed_at is not None:
                duration = t.completed_at - t.start_s
                goodput = t.total_packets * 512 * 8 / duration / 1000.0
                status = f"complete in {duration:.1f}s @ {goodput:.0f} kbps"
            else:
                status = f"{pct:.0f}% transferred"
            rows.append([i, f"{t.src}->{t.dst}", t.total_packets, status])
        print(
            format_table(
                ["file", "pair", "packets", "outcome"],
                rows,
                title=f"\n=== {protocol}: {args.files} files x {args.size_kb:.0f} kB ===",
            )
        )
        total = sum(t.total_packets for t in transfers)
        print(f"aggregate: {total_received}/{total} packets "
              f"({100.0 * total_received / total:.1f}%) swapped")


if __name__ == "__main__":
    main()
