#!/usr/bin/env python3
"""Watch RICA adapt: a staged four-terminal network where the active
relay's channel degrades and the receiver-initiated CSI checking moves the
route to a healthy relay — the mechanism of paper Section II-C, observable
packet by packet.

Topology (deterministic channel: class = f(distance)):

    source (0,0) ----- relay1 (95,0) ----- destination (190,0)
            \\---- relay2 (95,-25) ----//

Relay 1 starts with class-A legs, then drifts north until its legs are
class C; relay 2's legs stay class A.  RICA switches the whole route.

Usage::

    python examples/channel_adaptation_demo.py
"""

from repro.channel.model import ChannelConfig
from repro.geometry.field import Field
from repro.geometry.vector import Vec2
from repro.metrics.collector import MetricsCollector
from repro.mobility.path import WaypointPath
from repro.mobility.static import StaticPosition
from repro.net.network import Network
from repro.net.packet import DataPacket
from repro.routing.registry import create_protocol
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.timers import PeriodicTimer

DURATION = 12.0


def main() -> None:
    sim = Simulator()
    streams = RandomStreams(42)
    metrics = MetricsCollector(DURATION)
    network = Network(
        sim,
        Field(2000, 2000),
        streams,
        metrics,
        channel_config=ChannelConfig(shadow_sigma_db=0.0, fast_sigma_db=0.0),
    )
    network.add_node(StaticPosition(Vec2(0, 0)))  # 0: source
    network.add_node(  # 1: relay that drifts into bad channel geometry
        WaypointPath([(0.0, Vec2(95, 0)), (3.0, Vec2(95, 0)), (6.0, Vec2(95, 160))])
    )
    network.add_node(StaticPosition(Vec2(190, 0)))  # 2: destination
    network.add_node(StaticPosition(Vec2(95, -25)))  # 3: healthy relay

    protocols = [
        create_protocol("rica", node, network, metrics) for node in network.nodes()
    ]
    for proto in protocols:
        proto.start()
    source = protocols[0]

    seq = [0]

    def send_packet() -> None:
        seq[0] += 1
        pkt = DataPacket(src=0, dst=2, seq=seq[0], created_at=sim.now)
        metrics.record_generated(pkt)
        source.handle_app_packet(pkt)

    PeriodicTimer(sim, 0.2, send_packet, start_delay=0.1).start()

    def report_route() -> None:
        entry = source.table.get_valid(2, sim.now, max_idle=None)
        hop = entry.next_hop if entry else "-"
        names = {1: "relay1", 2: "direct", 3: "relay2"}
        switches = metrics.events.get("rica_route_switch", 0)
        print(
            f"t={sim.now:5.1f}s  next_hop={names.get(hop, hop):7}  "
            f"delivered={metrics.delivered:3d}  route_switches={switches}"
        )

    PeriodicTimer(sim, 1.0, report_route, start_delay=0.5).start()

    print("RICA channel-adaptation demo: relay1 degrades at t=3-6 s")
    print("-" * 60)
    sim.run(until=DURATION)
    print("-" * 60)
    print(metrics.report().summary())
    switches = metrics.events.get("rica_route_switch", 0)
    print(f"\nroute switches driven by CSI checking: {switches}")


if __name__ == "__main__":
    main()
